//! Minimal, dependency-free stand-in for the parts of the `rand` crate
//! (0.9 API) this workspace uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::{random, random_range}` over half-open integer ranges.
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically
//! sound for the simulation/testing workloads here.  It is **not** the
//! upstream ChaCha12-based `StdRng` and must not be used for anything
//! security-sensitive.  The container this repo builds in has no network
//! access to crates.io, so the workspace vendors this shim instead of the
//! real crate; swapping back is a one-line change in the workspace
//! manifest.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's full output
/// (the `StandardUniform` distribution of real `rand`).
pub trait StandardSample {
    /// Converts one raw 64-bit word into a sample.
    fn from_word(word: u64) -> Self;
}

impl StandardSample for f32 {
    #[inline]
    fn from_word(word: u64) -> Self {
        // 24 high bits -> [0, 1).
        (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    #[inline]
    fn from_word(word: u64) -> Self {
        // 53 high bits -> [0, 1).
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    #[inline]
    fn from_word(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl StandardSample for u64 {
    #[inline]
    fn from_word(word: u64) -> Self {
        word
    }
}

impl StandardSample for bool {
    #[inline]
    fn from_word(word: u64) -> Self {
        word >> 63 == 1
    }
}

/// Integer types samplable from a half-open `Range` (the subset of
/// `rand`'s `SampleUniform` the workspace needs).
pub trait RangeSample: Copy {
    /// Uniform sample in `[range.start, range.end)`; panics on empty ranges.
    fn sample_range(word: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            #[inline]
            fn sample_range(word: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (word % span) as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (floats in `[0, 1)`, integers full-range).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_word(self.next_u64())
    }

    /// Uniform sample from a half-open integer range.
    #[inline]
    fn random_range<T: RangeSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self.next_u64(), range)
    }
}

impl<R: RngCore> Rng for R {}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(state: u64) -> Self {
            // One warm-up step decorrelates small seeds.
            let mut rng = Self { state };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_are_respected_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values in range reachable");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5u32..5);
    }
}
