//! Minimal, dependency-free stand-in for the parts of `serde` this
//! workspace uses: the `Serialize`/`Deserialize` traits and their derive
//! macros.
//!
//! Unlike real serde's zero-copy visitor architecture, this shim routes
//! everything through an owned JSON-like [`Value`] tree — entirely
//! sufficient for the workspace's persistence bundles and report
//! artefacts, and simple enough to vendor.  The container this repo
//! builds in has no network access to crates.io; swapping the real serde
//! back in is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like document tree — the interchange format between the
/// `Serialize`/`Deserialize` traits and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, as serde_json does).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (everything the workspace serialises fits in f64).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialisation error: a human-readable path + expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Prefixes the error with a field/variant context.
    pub fn in_context(self, ctx: &str) -> Self {
        Self(format!("{ctx}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a document tree.
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_num()
                    .ok_or_else(|| DeError::new(concat!("expected number for ", stringify!($t))))?;
                Ok(n as $t)
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            // Widen exactly: every f32 is representable as f64, and the
            // shortest-decimal printer downstream round-trips it.
            Value::Num(f64::from(*self))
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let n = value.as_num().ok_or_else(|| DeError::new("expected number for f32"))?;
        Ok(n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value.as_str().map(str::to_owned).ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                let want = [$( stringify!($idx) ),+].len();
                if items.len() != want {
                    return Err(DeError::new(format!(
                        "expected {want}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
