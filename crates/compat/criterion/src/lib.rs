//! Minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace uses: `Criterion`, benchmark groups, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's full statistical machinery it runs a short
//! calibrated measurement per benchmark and prints mean ns/iteration —
//! enough for `cargo bench` to run every target end-to-end offline and
//! give a usable relative signal.  Swapping the real crate back in is a
//! one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimiser from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name plus a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{parameter}", function.into()) }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{parameter}") }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// The benchmark harness handle passed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20, measurement_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark (builder style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget (builder style).
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{id}", self.name), self.sample_size, self.measurement_time, f);
        self
    }

    /// Benchmarks `f` with an input value threaded through.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{id}", self.name), self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` (the measured region).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, mut f: F) {
    // Calibrate: find an iteration count that takes ≳ budget/samples.
    let mut iters: u64 = 1;
    let per_sample = budget.div_f64(samples as f64).max(Duration::from_micros(200));
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= per_sample || iters >= 1 << 24 {
            break;
        }
        // Aim directly for the budget from the observed rate.
        let scale = (per_sample.as_secs_f64() / b.elapsed.as_secs_f64().max(1e-9)).min(64.0);
        iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
    }
    // Measure.
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / iters as f64;
        best = best.min(ns);
        total += ns;
    }
    let mean = total / samples as f64;
    println!("{label:<48} {mean:>12.1} ns/iter (best {best:>10.1}, {iters} iters x {samples} samples)");
}

/// Declares a benchmark group: either `criterion_group!(name, target...)`
/// or the config form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 7)
        });
        group.finish();
    }
}
