//! Minimal, dependency-free stand-in for the parts of `serde_json` this
//! workspace uses: `to_string[_pretty]`, `to_writer`, `from_str`, and
//! `from_reader`, routed through the serde shim's owned [`serde::Value`]
//! tree.  Floats are printed with Rust's shortest round-trip formatter,
//! so `f32`/`f64` fields survive a save/load cycle bit-exactly.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::io::{Read, Write};

/// Serialisation / deserialisation error.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON text.
    Parse(String),
    /// Tree-to-type conversion failure.
    De(DeError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Parse(msg) => write!(f, "json parse error: {msg}"),
            Self::De(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::De(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..d {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(out, item, pretty, depth + 1);
            }
            if !items.is_empty() {
                pad(out, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, pretty, depth + 1);
            }
            if !fields.is_empty() {
                pad(out, depth);
            }
            out.push('}');
        }
    }
}

/// Renders `value` as compact JSON.
///
/// # Errors
/// Infallible for tree-backed values; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), false, 0);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
///
/// # Errors
/// Infallible for tree-backed values; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), true, 0);
    Ok(out)
}

/// Writes compact JSON to `writer`.
///
/// # Errors
/// Propagates I/O failures.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
/// Malformed JSON or tree/type mismatches.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::Parse(format!("trailing bytes at offset {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

/// Reads all of `reader` and parses a value of type `T`.
///
/// # Errors
/// I/O failures, malformed JSON, or tree/type mismatches.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::Parse(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::Parse(format!("bad keyword at offset {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::Parse("non-utf8 number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::Parse(format!("bad number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::Parse("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::Parse("short \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::Parse("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::Parse("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::Parse("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::Parse(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::Parse("non-utf8 string".into()))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::Parse(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::Parse(format!("bad object at offset {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-12", "3.25", "\"hi\\nthere\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn f32_survives_round_trip_bit_exactly() {
        let xs: Vec<f32> = (0..2000).map(|i| ((i as f32) * 0.7315).sin() / 3.0).collect();
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Num(1.0), Value::Null])),
            ("b".into(), Value::Str("x \"y\" z".into())),
            ("empty".into(), Value::Object(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        let from_compact: Value = from_str(&compact).unwrap();
        let from_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(v, from_compact);
        assert_eq!(v, from_pretty);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
