//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses: the `proptest!` macro, range / tuple / collection
//! strategies, `prop_map` / `prop_filter`, `any`, `Just`, `prop_oneof!`,
//! and the `prop_assert*` / `prop_assume!` family.
//!
//! Compared to real proptest it samples from a deterministic per-test
//! RNG and does **not shrink** failing cases — failures report the
//! sampled inputs via `Debug` instead.  The container this repo builds
//! in has no network access to crates.io; swapping the real crate back
//! in is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic SplitMix64 stream used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream (tests derive the seed from their name).
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x5DEECE66D }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be non-zero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a sampled case did not run to completion.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` / `prop_filter` rejected the inputs; redraw.
    Reject,
    /// A `prop_assert*!` failed; abort the test.
    Fail(String),
}

/// Body result type used by the `proptest!` runner.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random values of an associated type.
///
/// `sample` returns `None` when a filter rejected the draw; the runner
/// redraws the whole case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (redrawn by the runner).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.pred)(v))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty float range");
                let x = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                Some(x as $t)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                Some(self.start + (rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// A `Vec` of strategies samples one value from each element.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws a full-range value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy combinators that need dynamic dispatch.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Boxes a strategy for heterogeneous unions (`prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> Option<V> {
            (**self).sample(rng)
        }
    }

    /// Uniform choice between strategies of a common value type.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Wraps the boxed options; panics if empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> Option<V> {
            let i = rng.index(self.options.len());
            self.options[i].sample(rng)
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specifications accepted by [`vec()`].
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let len = if self.hi > self.lo + 1 {
                self.lo + rng.index(self.hi - self.lo)
            } else {
                self.lo
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with a fixed size or size range.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(hi > lo, "empty size range");
        VecStrategy { element, lo, hi }
    }
}

/// Everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::{
        any, collection, strategy, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Stable 64-bit FNV-1a over the test name, so each test gets its own
/// deterministic stream.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts inside a proptest body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), lhs, rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), format!($($fmt)+), lhs, rhs
            )));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` ({}:{})\n  both: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), lhs
            )));
        }
    }};
}

/// Rejects the current case (redrawn by the runner) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($option)),+])
    };
}

/// The proptest test-harness macro: runs each body over `cases` sampled
/// inputs, redrawing on `prop_assume!`/`prop_filter` rejections.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_proptest_case(
                    stringify!($name),
                    &$config,
                    |__rng| {
                        $(
                            let $arg = match $crate::Strategy::sample(&($strat), __rng) {
                                Some(v) => v,
                                None => return None,
                            };
                        )+
                        let __case_inputs = format!(
                            concat!($(concat!(stringify!($arg), " = {:?}\n")),+),
                            $(&$arg),+
                        );
                        let __result: $crate::TestCaseResult = (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                        Some((__result, __case_inputs))
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Runner behind `proptest!` — not public API.
#[doc(hidden)]
pub fn __run_proptest_case<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Option<(TestCaseResult, String)>,
{
    let mut rng = TestRng::new(fnv1a(name));
    let mut ran = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(64).max(1024);
    while ran < config.cases {
        match case(&mut rng) {
            None | Some((Err(TestCaseError::Reject), _)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest `{name}`: too many rejected cases ({rejected}) — \
                     loosen the filters or assumptions"
                );
            }
            Some((Err(TestCaseError::Fail(msg)), inputs)) => {
                panic!(
                    "proptest `{name}` failed after {ran} passing case(s):\n{msg}\n\
                     minimal failing input (no shrinking in the vendored shim):\n{inputs}"
                );
            }
            Some((Ok(()), _)) => ran += 1,
        }
    }
}
