//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! for the vendored serde shim — no `syn`/`quote`, just direct token
//! walking, which is enough for the shapes this workspace serialises:
//!
//! * structs with named fields (no generics),
//! * enums of unit variants and single-field tuple variants.
//!
//! The generated representation matches serde_json's externally-tagged
//! default: structs become objects, unit variants become strings, and
//! tuple variants become single-key objects `{"Variant": payload}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field or variant payload description.
struct Variant {
    name: String,
    /// Number of tuple-payload fields (0 = unit variant).
    arity: usize,
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the
/// cursor position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]`: the bracket group is the next tree.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses the struct/enum the derive was applied to.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: unexpected token {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other}"),
    };
    i += 1;
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive shim: only non-generic braced structs/enums are supported \
             (unexpected {other} in `{name}`)"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_struct_fields(body) },
        "enum" => Item::Enum { name, variants: parse_enum_variants(body) },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Named struct fields: `vis name: Type, ...` — commas inside angle
/// brackets and groups do not split fields.
fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other}"),
        };
        fields.push(field);
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:`, got {other}"),
        }
        // Consume the type: until a comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Enum variants: `Name`, `Name(Type)`, `Name(A, B)` — no struct variants.
fn parse_enum_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other}"),
        };
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                arity = count_top_level_fields(g.stream());
                i += 1;
            } else {
                panic!("serde_derive shim: struct variants are not supported ({name})");
            }
        }
        variants.push(Variant { name, arity });
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

/// Counts comma-separated entries at angle-bracket depth 0.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut saw_token_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        // Trailing comma.
        count -= 1;
    }
    count
}

/// Derives `serde::Serialize` via the shim's `Value` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match v.arity {
                        0 => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        1 => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(x0))]),"
                        ),
                        n => {
                            let binds: Vec<String> = (0..n).map(|k| format!("x{k}")).collect();
                            let elems: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Array(vec![{elems}]))]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` via the shim's `Value` tree.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get_field(\"{f}\")\
                             .ok_or_else(|| ::serde::DeError::new(\"missing field `{f}` in {name}\"))?)\
                             .map_err(|e| e.in_context(\"{name}.{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.arity == 0)
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|v| v.arity > 0)
                .map(|v| {
                    let vn = &v.name;
                    if v.arity == 1 {
                        format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)\
                                 .map_err(|e| e.in_context(\"{name}::{vn}\"))?)),"
                        )
                    } else {
                        let elems: Vec<String> = (0..v.arity)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_value(items.get({k})\
                                         .ok_or_else(|| ::serde::DeError::new(\"short tuple for {name}::{vn}\"))?)\
                                         .map_err(|e| e.in_context(\"{name}::{vn}.{k}\"))?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{vn}\" => {{\n\
                                 let items = payload.as_array().ok_or_else(|| ::serde::DeError::new(\"expected tuple payload for {name}::{vn}\"))?;\n\
                                 Ok({name}::{vn}({}))\n\
                             }},",
                            elems.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, payload) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {payload_arms}\n\
                                     other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::DeError::new(\"expected string or single-key object for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde_derive shim: generated invalid Deserialize impl")
}
