//! Property-based equivalence suite for the fused-row storage engine:
//! arbitrary corpora × weights × dimensionalities, asserting that the
//! fused path (one unscaled contiguous row per object, weights baked into
//! the query row) agrees with the reference per-modality path everywhere
//! the system relies on it — including the pruned-early cases, where the
//! Lemma-4 bound must never under-prune.

use must_vector::{
    kernels, FusedRows, JointDistance, MultiQuery, MultiVectorSet, PartialIpVerdict,
    VectorSetBuilder, Weights, FUSED_LANE,
};
use proptest::prelude::*;

/// A non-degenerate raw vector of dimension `dim`.
fn raw_vector(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-8.0f32..8.0, dim).prop_filter("non-zero", |v| {
        v.iter().map(|x| x * x).sum::<f32>() > 1e-3
    })
}

/// Corpora over deliberately awkward dims: none is a multiple of the SIMD
/// lane, so every segment exercises the zero-padding tail.
fn multi_set(n: usize, dims: &'static [usize]) -> impl Strategy<Value = MultiVectorSet> {
    let per_modality: Vec<_> = dims
        .iter()
        .map(|&d| proptest::collection::vec(raw_vector(d), n))
        .collect();
    per_modality.prop_map(move |mods| {
        let sets = mods
            .into_iter()
            .zip(dims)
            .map(|(rows, &d)| {
                let mut b = VectorSetBuilder::new(d, rows.len());
                for r in &rows {
                    b.push_normalized(r).expect("filtered non-zero");
                }
                b.finish()
            })
            .collect();
        MultiVectorSet::new(sets).expect("equal cardinality by construction")
    })
}

fn weights(m: usize) -> impl Strategy<Value = Weights> {
    proptest::collection::vec(0.01f32..2.0, m)
        .prop_map(|w| Weights::new(w).expect("positive finite"))
}

/// The reference per-modality Lemma-4 walk the old storage performed:
/// per-modality `l2_sq` against the raw slices, explicitly weighted.
fn reference_pruned(
    set: &MultiVectorSet,
    w: &Weights,
    query: &MultiQuery,
    id: u32,
    threshold: f32,
) -> PartialIpVerdict {
    let active: Vec<usize> = (0..set.num_modalities())
        .filter(|&k| query.slot(k).is_some() && w.sq(k) > 0.0)
        .collect();
    let mut bound: f32 = active.iter().map(|&k| w.sq(k)).sum();
    for (scanned, &k) in active.iter().enumerate() {
        let slot = query.slot(k).expect("active");
        bound -= 0.5 * w.sq(k) * set.modality(k).l2_sq_to(id, slot);
        if bound <= threshold && scanned + 1 < active.len() {
            return PartialIpVerdict::Pruned;
        }
    }
    PartialIpVerdict::Exact(bound)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_pair_ip_matches_per_modality_path(
        set in multi_set(6, &[7, 5, 3]),
        w in weights(3),
        a in 0u32..6,
        b in 0u32..6,
    ) {
        let jd = JointDistance::new(&set, w.clone()).unwrap();
        let reference = set.joint_ip(a, b, &w).unwrap();
        prop_assert!((jd.pair_ip(a, b) - reference).abs() < 1e-5,
            "fused {} vs per-modality {}", jd.pair_ip(a, b), reference);
    }

    #[test]
    fn fused_query_ip_matches_weighted_sum(
        set in multi_set(5, &[9, 4]),
        w in weights(2),
        q0 in raw_vector(9),
        q1 in raw_vector(4),
    ) {
        let mut q0 = q0;
        let mut q1 = q1;
        prop_assume!(kernels::normalize(&mut q0));
        prop_assume!(kernels::normalize(&mut q1));
        let jd = JointDistance::new(&set, w.clone()).unwrap();
        let query = MultiQuery::full(vec![q0.clone(), q1.clone()]);
        let ev = jd.query(&query).unwrap();
        for id in 0..5u32 {
            let reference = w.sq(0) * set.modality(0).ip_to(id, &q0)
                + w.sq(1) * set.modality(1).ip_to(id, &q1);
            prop_assert!((ev.ip(id) - reference).abs() < 1e-5);
        }
    }

    #[test]
    fn fused_score_pruned_agrees_with_reference_walk(
        set in multi_set(6, &[6, 10, 2]),
        w in weights(3),
        q0 in raw_vector(6),
        q1 in raw_vector(10),
        q2 in raw_vector(2),
        threshold in -2.0f32..2.0,
    ) {
        let mut q0 = q0;
        let mut q1 = q1;
        let mut q2 = q2;
        prop_assume!(kernels::normalize(&mut q0));
        prop_assume!(kernels::normalize(&mut q1));
        prop_assume!(kernels::normalize(&mut q2));
        let jd = JointDistance::new(&set, w.clone()).unwrap();
        let query = MultiQuery::full(vec![q0, q1, q2]);
        let ev = jd.query(&query).unwrap();
        for id in 0..6u32 {
            let exact = ev.ip(id);
            let fused = ev.ip_pruned(id, threshold);
            let reference = reference_pruned(&set, &w, &query, id, threshold);
            match (fused, reference) {
                (PartialIpVerdict::Exact(f), PartialIpVerdict::Exact(r)) => {
                    prop_assert!((f - r).abs() < 1e-5, "exact {f} vs reference {r}");
                    prop_assert!((f - exact).abs() < 1e-5, "bound not tight: {f} vs {exact}");
                }
                // A pruned verdict (on either path) must be *sound*: the
                // true similarity really is at or below the threshold.
                // Fused and reference may legitimately disagree on
                // whether they pruned (float rounding at the boundary),
                // but neither may ever discard a better candidate.
                (PartialIpVerdict::Pruned, _) | (_, PartialIpVerdict::Pruned) => {
                    prop_assert!(exact <= threshold + 1e-4,
                        "under-pruned: exact {exact} > threshold {threshold}");
                }
            }
        }
    }

    #[test]
    fn fused_partial_queries_match_masked_weights(
        set in multi_set(5, &[8, 3]),
        w in weights(2),
        q1 in raw_vector(3),
    ) {
        let mut q1 = q1;
        prop_assume!(kernels::normalize(&mut q1));
        let jd = JointDistance::new(&set, w.clone()).unwrap();
        // Auxiliary-only query: modality 0 unsupplied.
        let query = MultiQuery::partial(vec![None, Some(q1.clone())]);
        let ev = jd.query(&query).unwrap();
        prop_assert!((ev.w_total() - w.sq(1)).abs() < 1e-5);
        for id in 0..5u32 {
            let reference = w.sq(1) * set.modality(1).ip_to(id, &q1);
            prop_assert!((ev.ip(id) - reference).abs() < 1e-5);
            match ev.ip_pruned(id, f32::NEG_INFINITY) {
                PartialIpVerdict::Exact(v) => prop_assert!((v - reference).abs() < 1e-5),
                PartialIpVerdict::Pruned => prop_assert!(false, "cannot prune at -inf"),
            }
        }
    }

    #[test]
    fn raw_parts_round_trip_preserves_the_engine(
        set in multi_set(4, &[5, 6]),
        w in weights(2),
    ) {
        // The binary-bundle path: raw buffer out, engine back — must be
        // byte-identical, norms included, whether the norms travel with
        // the buffer (v5) or are re-derived from it (v3).
        let rows = set.fused();
        let back = FusedRows::from_raw_parts(
            rows.dims().to_vec(),
            rows.raw_data().to_vec(),
        )
        .unwrap();
        prop_assert_eq!(rows, &back);
        let with_norms = FusedRows::from_raw_parts_with_norms(
            rows.dims().to_vec(),
            rows.raw_data().to_vec(),
            rows.seg_norms().to_vec(),
        )
        .unwrap();
        prop_assert_eq!(rows, &with_norms);
        // Weighted similarities over the round-tripped engine are
        // bit-identical to the original's.
        for a in 0..4u32 {
            for b in 0..4u32 {
                prop_assert_eq!(
                    rows.weighted_pair_ip(a, b, w.squared()),
                    back.weighted_pair_ip(a, b, w.squared())
                );
            }
        }
    }

    #[test]
    fn segments_stay_lane_aligned(set in multi_set(3, &[1, 11, 16])) {
        let rows = set.fused();
        prop_assert_eq!(rows.stride() % FUSED_LANE, 0);
        for k in 0..rows.num_modalities() {
            let (start, end) = rows.segment_bounds(k);
            prop_assert_eq!(start % FUSED_LANE, 0);
            prop_assert_eq!(end % FUSED_LANE, 0);
            prop_assert!(end - start >= rows.dims()[k]);
        }
    }
}
