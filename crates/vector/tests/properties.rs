//! Property-based tests for the vector substrate.
//!
//! These pin the algebraic identities the rest of the system relies on:
//! the IP <-> L2 identity (Eq. 8), Lemma 1 (joint similarity is the weighted
//! sum of per-modality similarities) and Lemma 4 (prefix pruning is safe and
//! exact when it completes).

use must_vector::kernels;
use must_vector::{
    CodeStore, JointDistance, MultiQuery, MultiVectorSet, PartialIpVerdict, QuantizedRows,
    VectorSetBuilder, Weights,
};
use proptest::prelude::*;

/// A non-degenerate raw vector of dimension `dim`.
fn raw_vector(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-8.0f32..8.0, dim).prop_filter("non-zero", |v| {
        v.iter().map(|x| x * x).sum::<f32>() > 1e-3
    })
}

fn multi_set(
    n: usize,
    dims: &'static [usize],
) -> impl Strategy<Value = MultiVectorSet> {
    let per_modality: Vec<_> = dims
        .iter()
        .map(|&d| proptest::collection::vec(raw_vector(d), n))
        .collect();
    per_modality.prop_map(move |mods| {
        let sets = mods
            .into_iter()
            .zip(dims)
            .map(|(rows, &d)| {
                let mut b = VectorSetBuilder::new(d, rows.len());
                for r in &rows {
                    b.push_normalized(r).expect("filtered non-zero");
                }
                b.finish()
            })
            .collect();
        MultiVectorSet::new(sets).expect("equal cardinality by construction")
    })
}

fn weights(m: usize) -> impl Strategy<Value = Weights> {
    proptest::collection::vec(0.01f32..2.0, m)
        .prop_map(|w| Weights::new(w).expect("positive finite"))
}

/// One quantizable segment: arbitrary values, a constant segment, or an
/// all-zero segment — the degenerate kinds get explicit probability mass
/// so `step = 0` encoding is exercised, not just sampled by luck.
fn quant_segment(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    prop_oneof![
        proptest::collection::vec(-8.0f32..8.0, dim),
        (-8.0f32..8.0).prop_map(move |c| vec![c; dim]),
        Just(vec![0.0f32; dim]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ip_l2_identity_holds_for_unit_vectors(a in raw_vector(24), b in raw_vector(24)) {
        let mut a = a;
        let mut b = b;
        prop_assume!(kernels::normalize(&mut a));
        prop_assume!(kernels::normalize(&mut b));
        let lhs = kernels::ip(&a, &b);
        let rhs = kernels::ip_from_l2_sq(kernels::l2_sq(&a, &b));
        prop_assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn ip_is_symmetric_and_bounded(a in raw_vector(17), b in raw_vector(17)) {
        let mut a = a;
        let mut b = b;
        prop_assume!(kernels::normalize(&mut a));
        prop_assume!(kernels::normalize(&mut b));
        let ab = kernels::ip(&a, &b);
        let ba = kernels::ip(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&ab));
    }

    #[test]
    fn lemma1_joint_similarity_is_weighted_sum(
        set in multi_set(5, &[8, 5, 3]),
        w in weights(3),
        a in 0u32..5,
        b in 0u32..5,
    ) {
        let jd = JointDistance::new(&set, w.clone()).unwrap();
        let want: f32 = set.modality_ips(a, b).zip(w.squared()).map(|(s, q)| s * q).sum();
        prop_assert!((jd.pair_ip(a, b) - want).abs() < 1e-4);
    }

    #[test]
    fn lemma4_pruning_is_sound_and_exact(
        set in multi_set(6, &[6, 4]),
        w in weights(2),
        q0 in raw_vector(6),
        q1 in raw_vector(4),
        threshold in -1.5f32..1.5,
    ) {
        let mut q0 = q0;
        let mut q1 = q1;
        prop_assume!(kernels::normalize(&mut q0));
        prop_assume!(kernels::normalize(&mut q1));
        let jd = JointDistance::new(&set, w).unwrap();
        let query = MultiQuery::full(vec![q0, q1]);
        let ev = jd.query(&query).unwrap();
        for id in 0..6u32 {
            let exact = ev.ip(id);
            match ev.ip_pruned(id, threshold) {
                PartialIpVerdict::Exact(v) => prop_assert!((v - exact).abs() < 1e-4),
                PartialIpVerdict::Pruned => prop_assert!(exact <= threshold + 1e-4),
            }
        }
    }

    #[test]
    fn top_k_matches_full_sort(
        set in multi_set(12, &[10]),
        q in raw_vector(10),
        k in 1usize..8,
    ) {
        let mut q = q;
        prop_assume!(kernels::normalize(&mut q));
        let m0 = set.modality(0);
        let top = m0.brute_force_top_k(&q, k);
        let mut all: Vec<_> = m0.iter().map(|(id, v)| (id, kernels::ip(v, &q))).collect();
        all.sort_by(|x, y| y.1.total_cmp(&x.1));
        prop_assert_eq!(top.len(), k.min(12));
        for (got, want) in top.iter().zip(&all) {
            // Scores must agree exactly (ids may differ under ties).
            prop_assert!((got.1 - want.1).abs() < 1e-6);
        }
    }

    #[test]
    fn sq8_decode_error_is_at_most_half_a_step(
        s0 in quant_segment(7),
        s1 in quant_segment(4),
        s2 in quant_segment(1),
    ) {
        let mut q = QuantizedRows::from_parts(
            vec![7, 4, 1],
            CodeStore::owned(Vec::new()),
            Vec::new(),
            Vec::new(),
        )
        .expect("an empty engine is valid");
        let segs = [s0, s1, s2];
        let id = q.push_row(&segs).expect("matching arity and dims");
        for (k, seg) in segs.iter().enumerate() {
            let p = q.seg_params(id, k);
            prop_assert!(p.step >= 0.0);
            // Constant (and all-zero) segments must encode with step 0
            // and decode exactly.
            let spread = seg.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(v))
                - seg.iter().fold(f32::INFINITY, |a, &v| a.min(v));
            if spread == 0.0 {
                prop_assert_eq!(p.step, 0.0);
            }
            let decoded = q.decode_modality(id, k);
            for (got, want) in decoded.iter().zip(seg) {
                prop_assert!(
                    (got - want).abs() <= 0.5 * p.step + 1e-5,
                    "modality {}: decode error {} exceeds half-step {}",
                    k,
                    (got - want).abs(),
                    0.5 * p.step
                );
            }
        }
    }

    #[test]
    fn sq8_widened_bound_never_under_prunes(
        set in multi_set(6, &[6, 4]),
        w in weights(2),
        w_override in weights(2),
        q0 in raw_vector(6),
        q1 in raw_vector(4),
        threshold in -1.5f32..1.5,
    ) {
        let mut q0 = q0;
        let mut q1 = q1;
        prop_assume!(kernels::normalize(&mut q0));
        prop_assume!(kernels::normalize(&mut q1));
        // Codes are weight-free, so one engine must serve the build-time
        // weights and any per-query override identically.
        let quant = set.fused().quantize();
        for w in [w, w_override] {
            let jd = JointDistance::new(&set, w.clone()).unwrap();
            for query in [
                MultiQuery::full(vec![q0.clone(), q1.clone()]),
                MultiQuery::partial(vec![Some(q0.clone()), None]),
            ] {
                let exact_ev = jd.query(&query).unwrap();
                let qev = quant.query(&query, &w).unwrap();
                for id in 0..6u32 {
                    let exact = exact_ev.ip(id);
                    // Soundness: a widened-bound prune may only discard
                    // rows the exact f32 walk could also discard.
                    if let PartialIpVerdict::Pruned = qev.ip_pruned(id, threshold) {
                        prop_assert!(
                            exact <= threshold + 1e-4,
                            "id {}: pruned at threshold {} but exact ip is {}",
                            id,
                            threshold,
                            exact
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn weight_masking_equals_partial_query(
        set in multi_set(5, &[6, 4]),
        w in weights(2),
        q0 in raw_vector(6),
    ) {
        let mut q0 = q0;
        prop_assume!(kernels::normalize(&mut q0));
        let jd = JointDistance::new(&set, w.clone()).unwrap();
        // A t=1 query must score exactly like scaling modality 0 alone.
        let partial = MultiQuery::partial(vec![Some(q0.clone()), None]);
        let ev = jd.query(&partial).unwrap();
        for id in 0..5u32 {
            let want = w.sq(0) * set.modality(0).ip_to(id, &q0);
            prop_assert!((ev.ip(id) - want).abs() < 1e-4);
        }
    }
}
