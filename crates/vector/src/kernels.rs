//! Scalar similarity kernels.
//!
//! These are the innermost loops of the whole system: the paper reports that
//! vector computation can consume up to 90 % of total search time
//! (Section VII-B).  The kernels are written so that LLVM auto-vectorises
//! them: 4-way unrolled accumulators over exact chunks, with a scalar tail.

/// Inner product of two equal-length slices.
///
/// For unit-norm vectors this is the paper's similarity measure
/// (`IP`, Eq. 2) and lies in `[-1, 1]`.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
#[must_use]
pub fn ip(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    let (a_head, a_tail) = a.split_at(chunks * 4);
    let (b_head, b_tail) = b.split_at(chunks * 4);
    for (ca, cb) in a_head.chunks_exact(4).zip(b_head.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a_tail.iter().zip(b_tail) {
        sum += x * y;
    }
    sum
}

/// Joint inner product over a fused row pair (the hot-path kernel of the
/// [`crate::FusedRows`] engine).
///
/// Both slices are the concatenation of `m` per-modality segments with
/// zero padding between them; one side (in serving, the *query* row)
/// carries the `omega_k^2` weight factors baked into its values, so the
/// Lemma-1 joint similarity `sum_k omega_k^2 * IP_k` collapses to **one**
/// contiguous dot product — no per-modality dispatch, no per-candidate
/// weight multiplies.  Compare with the per-modality loop in
/// `benches/kernels.rs`.
#[inline]
#[must_use]
pub fn ip_prescaled_segments(row: &[f32], query: &[f32]) -> f32 {
    ip(row, query)
}

/// Squared Euclidean distance of two equal-length slices.
#[inline]
#[must_use]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    let (a_head, a_tail) = a.split_at(chunks * 4);
    let (b_head, b_tail) = b.split_at(chunks * 4);
    for (ca, cb) in a_head.chunks_exact(4).zip(b_head.chunks_exact(4)) {
        let d0 = ca[0] - cb[0];
        let d1 = ca[1] - cb[1];
        let d2 = ca[2] - cb[2];
        let d3 = ca[3] - cb[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a_tail.iter().zip(b_tail) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// Converts a squared Euclidean distance between two *unit-norm* vectors into
/// their inner product via Eq. 8 of the paper:
/// `IP(q, u) = 1 - 0.5 * ||q - u||^2`.
#[inline]
#[must_use]
pub fn ip_from_l2_sq(l2_sq: f32) -> f32 {
    1.0 - 0.5 * l2_sq
}

/// Converts an inner product of unit-norm vectors into squared Euclidean
/// distance (the inverse of [`ip_from_l2_sq`]).
#[inline]
#[must_use]
pub fn l2_sq_from_ip(ip: f32) -> f32 {
    2.0 - 2.0 * ip
}

/// Euclidean norm of a slice.
#[inline]
#[must_use]
pub fn norm(a: &[f32]) -> f32 {
    ip(a, a).sqrt()
}

/// Normalises `a` to unit L2 norm in place.
///
/// Returns `false` (leaving `a` untouched) when the norm is zero or not
/// finite, in which case the caller must decide how to handle the degenerate
/// vector.
#[inline]
pub fn normalize(a: &mut [f32]) -> bool {
    let n = norm(a);
    if n <= f32::EPSILON || !n.is_finite() {
        return false;
    }
    let inv = 1.0 / n;
    for x in a.iter_mut() {
        *x *= inv;
    }
    true
}

/// Whether a slice is unit-norm within `tol`.
#[inline]
#[must_use]
pub fn is_unit_norm(a: &[f32], tol: f32) -> bool {
    (norm(a) - 1.0).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_ip(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn ip_matches_naive_on_awkward_lengths() {
        for len in [0usize, 1, 3, 4, 5, 7, 8, 13, 64, 65] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.7).cos()).collect();
            let got = ip(&a, &b);
            let want = naive_ip(&a, &b);
            assert!((got - want).abs() < 1e-4, "len={len}: {got} vs {want}");
        }
    }

    #[test]
    fn l2_and_ip_identity_for_unit_vectors() {
        let mut a: Vec<f32> = (0..33).map(|i| (i as f32 + 1.0).recip()).collect();
        let mut b: Vec<f32> = (0..33).map(|i| ((i * i) as f32 + 2.0).recip()).collect();
        assert!(normalize(&mut a));
        assert!(normalize(&mut b));
        let via_l2 = ip_from_l2_sq(l2_sq(&a, &b));
        let direct = ip(&a, &b);
        assert!((via_l2 - direct).abs() < 1e-5);
        let back = l2_sq_from_ip(direct);
        assert!((back - l2_sq(&a, &b)).abs() < 1e-5);
    }

    #[test]
    fn normalize_rejects_zero_vector() {
        let mut z = vec![0.0f32; 8];
        assert!(!normalize(&mut z));
        assert_eq!(z, vec![0.0f32; 8]);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = vec![3.0f32, 4.0];
        assert!(normalize(&mut v));
        assert!(is_unit_norm(&v, 1e-6));
        assert!((v[0] - 0.6).abs() < 1e-6 && (v[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn identical_unit_vectors_have_ip_one() {
        let mut v: Vec<f32> = (0..16).map(|i| i as f32 + 1.0).collect();
        assert!(normalize(&mut v));
        assert!((ip(&v, &v) - 1.0).abs() < 1e-5);
        assert!(l2_sq(&v, &v) < 1e-10);
    }
}
