//! Contiguous storage for a set of equal-dimensional vectors.

use serde::{Deserialize, Serialize};

use crate::kernels;
use crate::{ObjectId, VectorError};

/// A dense `n x d` matrix of `f32` vectors stored row-major in one
/// allocation.
///
/// This is the corpus-side representation used for one modality of an object
/// set (`{phi_i(o_i) | o in S}` in the paper).  Rows are addressed by
/// [`ObjectId`].  Vectors are expected to be unit-norm (the paper normalises
/// all embeddings); [`VectorSetBuilder::push_normalized`] enforces this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorSet {
    dim: usize,
    data: Vec<f32>,
}

impl VectorSet {
    /// Creates an empty set of dimensionality `dim`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self { dim, data: Vec::new() }
    }

    /// Creates an empty set with storage reserved for `n` vectors.
    #[must_use]
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self { dim, data: Vec::with_capacity(dim * n) }
    }

    /// Builds a set from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] when `data.len()` is not a
    /// multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<Self, VectorError> {
        if dim == 0 || !data.len().is_multiple_of(dim) {
            return Err(VectorError::DimensionMismatch {
                expected: dim,
                got: if dim == 0 { data.len() } else { data.len() % dim },
            });
        }
        Ok(Self { dim, data })
    }

    /// Number of vectors in the set.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the set holds no vectors.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every vector in the set.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow vector `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, id: ObjectId) -> &[f32] {
        let start = id as usize * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Borrow vector `id`, or `None` when out of bounds.
    #[inline]
    #[must_use]
    pub fn try_get(&self, id: ObjectId) -> Option<&[f32]> {
        let start = (id as usize).checked_mul(self.dim)?;
        self.data.get(start..start + self.dim)
    }

    /// Appends a vector without normalising it.
    ///
    /// # Errors
    /// Returns [`VectorError::DimensionMismatch`] on wrong length.
    pub fn push(&mut self, v: &[f32]) -> Result<ObjectId, VectorError> {
        if v.len() != self.dim {
            return Err(VectorError::DimensionMismatch { expected: self.dim, got: v.len() });
        }
        let id = self.len() as ObjectId;
        self.data.extend_from_slice(v);
        Ok(id)
    }

    /// Inner product between rows `a` and `b`.
    #[inline]
    #[must_use]
    pub fn ip(&self, a: ObjectId, b: ObjectId) -> f32 {
        kernels::ip(self.get(a), self.get(b))
    }

    /// Inner product between row `a` and an external query vector.
    #[inline]
    #[must_use]
    pub fn ip_to(&self, a: ObjectId, query: &[f32]) -> f32 {
        kernels::ip(self.get(a), query)
    }

    /// Squared Euclidean distance between row `a` and an external query.
    #[inline]
    #[must_use]
    pub fn l2_sq_to(&self, a: ObjectId, query: &[f32]) -> f32 {
        kernels::l2_sq(self.get(a), query)
    }

    /// Iterator over `(id, vector)` pairs.
    #[must_use]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (ObjectId, &[f32])> + '_ {
        self.data
            .chunks_exact(self.dim)
            .enumerate()
            .map(|(i, v)| (i as ObjectId, v))
    }

    /// Exact top-`k` ids by inner product to `query`, descending
    /// (brute-force scan; used for ground truth and the `MUST--` baseline).
    #[must_use]
    pub fn brute_force_top_k(&self, query: &[f32], k: usize) -> Vec<(ObjectId, f32)> {
        brute_force_top_k_impl(self.iter(), query, k)
    }

    /// Mean of all vectors (the centroid used by the paper's seed
    /// preprocessing, component 4 of Algorithm 1).
    #[must_use]
    pub fn centroid(&self) -> Vec<f32> {
        centroid_impl(self.dim, self.len(), self.iter())
    }
}

/// Exact top-`k` `(id, similarity)` by inner product over `(id, vector)`
/// pairs, descending — shared by [`VectorSet`] and the fused-row modality
/// views so the subtle partial-sort maintenance (tie handling, `k == 0`,
/// bubble-up) can never diverge between the two storage layouts.
pub(crate) fn brute_force_top_k_impl<'a>(
    rows: impl Iterator<Item = (ObjectId, &'a [f32])>,
    query: &[f32],
    k: usize,
) -> Vec<(ObjectId, f32)> {
    let mut heap: Vec<(ObjectId, f32)> = Vec::with_capacity(k + 1);
    for (id, v) in rows {
        let s = kernels::ip(v, query);
        if heap.len() < k {
            heap.push((id, s));
            if heap.len() == k {
                heap.sort_unstable_by(|x, y| y.1.total_cmp(&x.1));
            }
        } else if k > 0 && s > heap[k - 1].1 {
            heap[k - 1] = (id, s);
            let mut i = k - 1;
            while i > 0 && heap[i].1 > heap[i - 1].1 {
                heap.swap(i, i - 1);
                i -= 1;
            }
        }
    }
    if heap.len() < k {
        heap.sort_unstable_by(|x, y| y.1.total_cmp(&x.1));
    }
    heap
}

/// Mean of `n` vectors of dimensionality `dim` (shared with the fused-row
/// modality views, like [`brute_force_top_k_impl`]).
pub(crate) fn centroid_impl<'a>(
    dim: usize,
    n: usize,
    rows: impl Iterator<Item = (ObjectId, &'a [f32])>,
) -> Vec<f32> {
    let mut c = vec![0.0f32; dim];
    if n == 0 {
        return c;
    }
    for (_, v) in rows {
        for (ci, vi) in c.iter_mut().zip(v) {
            *ci += vi;
        }
    }
    let inv = 1.0 / n as f32;
    for ci in c.iter_mut() {
        *ci *= inv;
    }
    c
}

/// Incremental builder that normalises vectors as they are appended.
#[derive(Debug)]
pub struct VectorSetBuilder {
    set: VectorSet,
}

impl VectorSetBuilder {
    /// Starts a builder for vectors of dimensionality `dim`, reserving room
    /// for `n` of them.
    #[must_use]
    pub fn new(dim: usize, n: usize) -> Self {
        Self { set: VectorSet::with_capacity(dim, n) }
    }

    /// Appends `v` after normalising it to unit L2 norm.
    ///
    /// # Errors
    /// [`VectorError::DimensionMismatch`] on wrong length and
    /// [`VectorError::NotNormalisable`] for zero / non-finite vectors.
    pub fn push_normalized(&mut self, v: &[f32]) -> Result<ObjectId, VectorError> {
        if v.len() != self.set.dim {
            return Err(VectorError::DimensionMismatch { expected: self.set.dim, got: v.len() });
        }
        let mut owned = v.to_vec();
        if !kernels::normalize(&mut owned) {
            return Err(VectorError::NotNormalisable);
        }
        self.set.push(&owned)
    }

    /// Finishes the build.
    #[must_use]
    pub fn finish(self) -> VectorSet {
        self.set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> VectorSet {
        let mut b = VectorSetBuilder::new(4, 3);
        b.push_normalized(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        b.push_normalized(&[1.0, 1.0, 0.0, 0.0]).unwrap();
        b.push_normalized(&[0.0, 0.0, 3.0, 4.0]).unwrap();
        b.finish()
    }

    #[test]
    fn builder_normalises_rows() {
        let s = sample_set();
        assert_eq!(s.len(), 3);
        for (_, v) in s.iter() {
            assert!(kernels::is_unit_norm(v, 1e-5));
        }
    }

    #[test]
    fn push_rejects_wrong_dimension() {
        let mut s = VectorSet::new(4);
        assert!(matches!(
            s.push(&[1.0, 2.0]),
            Err(VectorError::DimensionMismatch { expected: 4, got: 2 })
        ));
    }

    #[test]
    fn builder_rejects_zero_vector() {
        let mut b = VectorSetBuilder::new(3, 1);
        assert!(matches!(b.push_normalized(&[0.0; 3]), Err(VectorError::NotNormalisable)));
    }

    #[test]
    fn from_flat_validates_shape() {
        assert!(VectorSet::from_flat(3, vec![0.0; 7]).is_err());
        let s = VectorSet::from_flat(3, vec![0.0; 9]).unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn brute_force_top_k_is_sorted_and_exact() {
        let s = sample_set();
        let top = s.brute_force_top_k(&[1.0, 0.0, 0.0, 0.0], 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 0);
        assert!((top[0].1 - 1.0).abs() < 1e-5);
        assert_eq!(top[1].0, 1);
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn brute_force_top_k_handles_k_larger_than_n() {
        let s = sample_set();
        let top = s.brute_force_top_k(&[0.0, 0.0, 0.0, 1.0], 10);
        assert_eq!(top.len(), 3);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn centroid_of_identical_vectors_is_that_vector() {
        let mut b = VectorSetBuilder::new(2, 2);
        b.push_normalized(&[0.0, 2.0]).unwrap();
        b.push_normalized(&[0.0, 5.0]).unwrap();
        let s = b.finish();
        let c = s.centroid();
        assert!((c[0]).abs() < 1e-6 && (c[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn serde_round_trip() {
        let s = sample_set();
        let json = serde_json::to_string(&s).unwrap();
        let back: VectorSet = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
