//! The fused-row storage engine: one contiguous, weight-prescaled row per
//! object for the joint-similarity hot path.
//!
//! The paper reports that vector computation consumes up to 90 % of total
//! search time (Section VII-B).  Storing each object's `m` modality vectors
//! as `m` separate matrices costs one heap indirection and one cache-cold
//! row fetch *per modality per candidate*.  [`FusedRows`] instead lays all
//! modalities of object `i` out contiguously:
//!
//! ```text
//! row i: [ seg 0 (dim_0, padded) | seg 1 (dim_1, padded) | ... | seg m-1 ]
//! ```
//!
//! Each segment is zero-padded to a multiple of [`FUSED_LANE`] floats so
//! every segment (and every row) starts on a SIMD-friendly boundary; the
//! padding lanes are always zero, so they contribute nothing to inner
//! products or squared distances.
//!
//! [`FusedRows::prescaled`] bakes the per-modality weights into the stored
//! values — row `i` becomes the paper's *virtual point*
//! `[w_0·phi_0(o), ..., w_{m-1}·phi_{m-1}(o)]` — so that
//!
//! * the Lemma-1 joint similarity of two objects is one plain
//!   [`kernels::ip`] over their rows (`IP(a_hat, b_hat) = sum w_k^2 IP_k`),
//! * a query fused the same way scores each candidate with a single
//!   auto-vectorised dot product, and
//! * the Lemma-4 prefix bound walks *segments of that same row* with
//!   per-segment [`kernels::l2_sq`] — the weights are already inside the
//!   values, so the inner loop performs zero weight multiplies.

use crate::kernels;
use crate::multi::MultiQuery;
use crate::{ObjectId, VectorError, VectorSet, Weights};

/// Segment alignment in `f32` lanes (32 bytes): every modality segment is
/// zero-padded to a multiple of this, so rows and segments stay on
/// SIMD-friendly boundaries.
pub const FUSED_LANE: usize = 8;

fn pad(dim: usize) -> usize {
    dim.div_ceil(FUSED_LANE) * FUSED_LANE
}

/// Contiguous multi-modality row storage (see the module docs).
///
/// `scales[k]` records the factor baked into every stored value of
/// modality `k`: `1.0` for raw storage, the raw weight `w_k` after
/// [`FusedRows::prescaled`].
#[derive(Debug, Clone, PartialEq)]
pub struct FusedRows {
    /// Unpadded per-modality dimensionalities.
    dims: Vec<usize>,
    /// Padded segment starts within a row; `seg[m]` is the row stride.
    seg: Vec<usize>,
    /// Number of rows (objects).
    len: usize,
    /// `len * stride` floats, row-major, padding lanes zero.
    data: Vec<f32>,
    /// Per-modality factor baked into the stored values.
    scales: Vec<f32>,
}

impl FusedRows {
    fn layout(dims: &[usize]) -> Vec<usize> {
        let mut seg = Vec::with_capacity(dims.len() + 1);
        let mut off = 0;
        seg.push(0);
        for &d in dims {
            off += pad(d);
            seg.push(off);
        }
        seg
    }

    /// Builds raw (unscaled) fused storage from per-modality sets.
    ///
    /// # Errors
    /// [`VectorError::CardinalityMismatch`] when the sets disagree on the
    /// number of objects:
    ///
    /// ```
    /// use must_vector::{FusedRows, VectorError, VectorSet, VectorSetBuilder};
    /// let mut a = VectorSetBuilder::new(2, 1);
    /// a.push_normalized(&[1.0, 0.0]).unwrap();
    /// let b = VectorSet::new(3); // empty: 0 objects vs 1
    /// assert_eq!(
    ///     FusedRows::from_sets(&[a.finish(), b]).unwrap_err(),
    ///     VectorError::CardinalityMismatch { expected: 1, got: 0 },
    /// );
    /// ```
    pub fn from_sets(sets: &[VectorSet]) -> Result<Self, VectorError> {
        assert!(!sets.is_empty(), "at least one modality required");
        let n = sets[0].len();
        for set in &sets[1..] {
            if set.len() != n {
                return Err(VectorError::CardinalityMismatch { expected: n, got: set.len() });
            }
        }
        let dims: Vec<usize> = sets.iter().map(VectorSet::dim).collect();
        let seg = Self::layout(&dims);
        let stride = seg[dims.len()];
        let mut data = vec![0.0f32; n * stride];
        for (k, set) in sets.iter().enumerate() {
            let (start, dim) = (seg[k], dims[k]);
            for (id, v) in set.iter() {
                let row = id as usize * stride + start;
                data[row..row + dim].copy_from_slice(v);
            }
        }
        Ok(Self { scales: vec![1.0; dims.len()], dims, seg, len: n, data })
    }

    /// Reassembles fused storage from its raw parts (the bundle-v3 load
    /// path: the on-disk rows are already in fused layout, so no per-
    /// modality re-copy happens).  Padding lanes are re-zeroed defensively.
    ///
    /// # Errors
    /// [`VectorError::DimensionMismatch`] when `data.len()` is not
    /// `len * stride` for the layout implied by `dims`, or when any
    /// dimension is zero:
    ///
    /// ```
    /// use must_vector::{FusedRows, VectorError};
    /// // dims [2, 3] pad to a stride of 16, so 17 floats cannot be rows.
    /// assert!(matches!(
    ///     FusedRows::from_raw_parts(vec![2, 3], vec![0.0; 17], vec![1.0, 1.0]),
    ///     Err(VectorError::DimensionMismatch { .. }),
    /// ));
    /// ```
    pub fn from_raw_parts(
        dims: Vec<usize>,
        mut data: Vec<f32>,
        scales: Vec<f32>,
    ) -> Result<Self, VectorError> {
        assert!(!dims.is_empty(), "at least one modality required");
        if dims.contains(&0) {
            return Err(VectorError::DimensionMismatch { expected: 1, got: 0 });
        }
        if scales.len() != dims.len() {
            return Err(VectorError::WeightArity {
                modalities: dims.len(),
                weights: scales.len(),
            });
        }
        let seg = Self::layout(&dims);
        let stride = seg[dims.len()];
        if !data.len().is_multiple_of(stride) {
            return Err(VectorError::DimensionMismatch {
                expected: stride,
                got: data.len() % stride,
            });
        }
        let len = data.len() / stride;
        // Padding must be zero for fused dot products to be exact; enforce
        // rather than trust the caller (or the bytes on disk).
        for row in data.chunks_exact_mut(stride) {
            for (k, &d) in dims.iter().enumerate() {
                for x in &mut row[seg[k] + d..seg[k + 1]] {
                    *x = 0.0;
                }
            }
        }
        Ok(Self { dims, seg, len, data, scales })
    }

    /// A copy with the raw weights `w_k` baked into every stored value:
    /// row `i` becomes the virtual point
    /// `[w_0·phi_0, ..., w_{m-1}·phi_{m-1}]`, so [`FusedRows::pair_ip`]
    /// between two prescaled rows *is* the Lemma-1 joint similarity
    /// `sum w_k^2 IP_k` — one plain dot product, no per-candidate weight
    /// multiplies.
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when `weights` does not cover every
    /// modality:
    ///
    /// ```
    /// use must_vector::{FusedRows, VectorError, VectorSetBuilder, Weights};
    /// let mut b = VectorSetBuilder::new(2, 1);
    /// b.push_normalized(&[1.0, 0.0]).unwrap();
    /// let rows = FusedRows::from_sets(&[b.finish()]).unwrap();
    /// assert_eq!(
    ///     rows.prescaled(&Weights::uniform(2)).unwrap_err(),
    ///     VectorError::WeightArity { modalities: 1, weights: 2 },
    /// );
    /// ```
    pub fn prescaled(&self, weights: &Weights) -> Result<Self, VectorError> {
        if weights.modalities() != self.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: self.num_modalities(),
                weights: weights.modalities(),
            });
        }
        let mut out = self.clone();
        for row in out.data.chunks_exact_mut(out.seg[out.dims.len()]) {
            for (k, &w) in weights.raw().iter().enumerate() {
                for x in &mut row[out.seg[k]..out.seg[k + 1]] {
                    *x *= w;
                }
            }
        }
        for (s, w) in out.scales.iter_mut().zip(weights.raw()) {
            *s *= w;
        }
        Ok(out)
    }

    /// Number of modalities `m`.
    #[inline]
    #[must_use]
    pub fn num_modalities(&self) -> usize {
        self.dims.len()
    }

    /// Unpadded per-modality dimensionalities.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row stride in floats (sum of padded segment widths).
    #[inline]
    #[must_use]
    pub fn stride(&self) -> usize {
        self.seg[self.dims.len()]
    }

    /// Padded `[start, end)` of modality `k`'s segment within a row.
    #[inline]
    #[must_use]
    pub fn segment_bounds(&self, k: usize) -> (usize, usize) {
        (self.seg[k], self.seg[k + 1])
    }

    /// Number of rows (objects).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine holds no rows.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-modality factors baked into the stored values.
    #[inline]
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The full padded row of object `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of bounds.
    #[inline]
    #[must_use]
    pub fn row(&self, id: ObjectId) -> &[f32] {
        let stride = self.stride();
        let start = id as usize * stride;
        &self.data[start..start + stride]
    }

    /// The padded segment of modality `k` in row `id` (tail lanes zero).
    #[inline]
    #[must_use]
    pub fn segment(&self, id: ObjectId, k: usize) -> &[f32] {
        let stride = self.stride();
        let start = id as usize * stride;
        &self.data[start + self.seg[k]..start + self.seg[k + 1]]
    }

    /// The unpadded modality-`k` vector of object `id` (length `dims[k]`).
    #[inline]
    #[must_use]
    pub fn modality_slice(&self, id: ObjectId, k: usize) -> &[f32] {
        let stride = self.stride();
        let start = id as usize * stride + self.seg[k];
        &self.data[start..start + self.dims[k]]
    }

    /// The raw row buffer (bundle-v3 save path).
    #[inline]
    #[must_use]
    pub fn raw_data(&self) -> &[f32] {
        &self.data
    }

    /// Joint similarity of rows `a` and `b`: one contiguous dot product.
    /// On a [`FusedRows::prescaled`] engine this is the Lemma-1 joint
    /// similarity `sum w_k^2 IP_k`; on raw storage it is the unweighted
    /// sum of per-modality inner products.
    #[inline]
    #[must_use]
    pub fn pair_ip(&self, a: ObjectId, b: ObjectId) -> f32 {
        kernels::ip_prescaled_segments(self.row(a), self.row(b))
    }

    /// Inner product of modality `k` between rows `a` and `b` (carries the
    /// baked scale squared on prescaled engines).
    #[inline]
    #[must_use]
    pub fn modality_ip(&self, a: ObjectId, b: ObjectId, k: usize) -> f32 {
        kernels::ip(self.segment(a, k), self.segment(b, k))
    }

    /// The mean of all rows — on a prescaled engine, the fused centroid of
    /// all virtual points (seed preprocessing, component 4 of
    /// Algorithm 1).  Padding lanes stay zero.
    #[must_use]
    pub fn centroid_row(&self) -> Vec<f32> {
        let stride = self.stride();
        let mut c = vec![0.0f32; stride];
        if self.len == 0 {
            return c;
        }
        for row in self.data.chunks_exact(stride) {
            for (ci, x) in c.iter_mut().zip(row) {
                *ci += x;
            }
        }
        let inv = 1.0 / self.len as f32;
        for ci in c.iter_mut() {
            *ci *= inv;
        }
        c
    }

    /// Appends one object from its per-modality vectors, applying the
    /// engine's baked scales.  The caller is responsible for normalisation
    /// (the public entry point is `MultiVectorSet::push_object`).
    ///
    /// # Errors
    /// [`VectorError::CardinalityMismatch`] on wrong modality count,
    /// [`VectorError::DimensionMismatch`] on wrong slot length; the engine
    /// is untouched on error.
    pub fn push_row<S: AsRef<[f32]>>(&mut self, rows: &[S]) -> Result<ObjectId, VectorError> {
        if rows.len() != self.num_modalities() {
            return Err(VectorError::CardinalityMismatch {
                expected: self.num_modalities(),
                got: rows.len(),
            });
        }
        for (k, r) in rows.iter().enumerate() {
            if r.as_ref().len() != self.dims[k] {
                return Err(VectorError::DimensionMismatch {
                    expected: self.dims[k],
                    got: r.as_ref().len(),
                });
            }
        }
        let id = self.len as ObjectId;
        let stride = self.stride();
        self.data.resize((self.len + 1) * stride, 0.0);
        let row = &mut self.data[self.len * stride..];
        for (k, r) in rows.iter().enumerate() {
            let scale = self.scales[k];
            for (dst, &x) in row[self.seg[k]..].iter_mut().zip(r.as_ref()) {
                *dst = scale * x;
            }
        }
        self.len += 1;
        Ok(id)
    }

    /// Heap footprint of the padded row storage in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Prepares a per-query evaluator: the query's supplied slots are
    /// scaled by the engine's baked factors and fused into one padded row
    /// *once*, after which every candidate costs a single dot product
    /// (exact path) or an early-exiting segment walk (Lemma-4 path).
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when the query has a different number
    /// of modality slots than the engine, [`VectorError::DimensionMismatch`]
    /// when a supplied slot has the wrong dimensionality.
    pub fn query(&self, query: &MultiQuery) -> Result<FusedQueryEvaluator<'_>, VectorError> {
        FusedQueryEvaluator::new(self, query)
    }
}

/// Verdict of the incremental (pruned) fused-row similarity computation —
/// re-exported alias of the per-modality verdict for seam compatibility.
pub use crate::joint::PartialIpVerdict;

/// Per-query evaluator over a [`FusedRows`] engine with the Lemma-4
/// early-termination optimisation (Eqs. 8–9 of the paper) and the
/// kernel-evaluation instrumentation the Fig. 10(c) ablation counts.
#[derive(Debug)]
pub struct FusedQueryEvaluator<'a> {
    rows: &'a FusedRows,
    /// The query fused into one padded row, scaled by the engine's baked
    /// factors; segments of unsupplied (or zero-scale) modalities are zero.
    qrow: Vec<f32>,
    /// `(seg_start, seg_end)` of each active (supplied, positive-scale)
    /// modality, in modality order — the Lemma-4 prefix order.
    active: Vec<(usize, usize)>,
    /// `W = sum of active squared scales` — the norm term of Eq. 8.
    w_total: f32,
    kernel_evals: std::cell::Cell<u64>,
}

impl<'a> FusedQueryEvaluator<'a> {
    fn new(rows: &'a FusedRows, query: &MultiQuery) -> Result<Self, VectorError> {
        if query.num_slots() != rows.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: rows.num_modalities(),
                weights: query.num_slots(),
            });
        }
        let mut qrow = vec![0.0f32; rows.stride()];
        let mut active = Vec::with_capacity(rows.num_modalities());
        let mut w_total = 0.0;
        for k in 0..rows.num_modalities() {
            let Some(slot) = query.slot(k) else { continue };
            if slot.len() != rows.dims()[k] {
                return Err(VectorError::DimensionMismatch {
                    expected: rows.dims()[k],
                    got: slot.len(),
                });
            }
            let scale = rows.scales()[k];
            if scale <= 0.0 {
                continue;
            }
            let (start, end) = rows.segment_bounds(k);
            for (dst, &x) in qrow[start..].iter_mut().zip(slot) {
                *dst = scale * x;
            }
            active.push((start, end));
            w_total += scale * scale;
        }
        Ok(Self { rows, qrow, active, w_total, kernel_evals: std::cell::Cell::new(0) })
    }

    /// Number of modality kernels evaluated so far (the multi-vector
    /// computation ablation counter).
    #[inline]
    pub fn kernel_evals(&self) -> u64 {
        self.kernel_evals.get()
    }

    /// Sum of active squared scales — the joint similarity of the query
    /// with itself and the starting value of the Lemma-4 upper bound.
    #[inline]
    pub fn w_total(&self) -> f32 {
        self.w_total
    }

    #[inline]
    fn bump(&self, by: u64) {
        self.kernel_evals.set(self.kernel_evals.get() + by);
    }

    /// Exact joint similarity of object `id` to the query: one contiguous
    /// dot product over the fused row (inactive segments of the query row
    /// are zero and contribute nothing).
    #[inline]
    pub fn ip(&self, id: ObjectId) -> f32 {
        self.bump(self.active.len() as u64);
        kernels::ip_prescaled_segments(self.rows.row(id), &self.qrow)
    }

    /// Incremental joint similarity with safe early termination (Lemma 4):
    /// walks the active segments of the row, shrinking the upper bound
    /// `W - 0.5 * sum ||seg_q - seg_u||^2` (weights are baked into both
    /// sides, so the per-segment distance is already weighted).  Returns
    /// [`PartialIpVerdict::Pruned`] as soon as the bound falls to
    /// `threshold` with segments still unscanned; the exact similarity
    /// otherwise.
    pub fn ip_pruned(&self, id: ObjectId, threshold: f32) -> PartialIpVerdict {
        let row = self.rows.row(id);
        let mut bound = self.w_total;
        let last = self.active.len().saturating_sub(1);
        for (scanned, &(start, end)) in self.active.iter().enumerate() {
            bound -= 0.5 * kernels::l2_sq(&row[start..end], &self.qrow[start..end]);
            self.bump(1);
            if bound <= threshold && scanned < last {
                return PartialIpVerdict::Pruned;
            }
        }
        PartialIpVerdict::Exact(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MultiVectorSet, VectorSetBuilder};

    fn sets() -> Vec<VectorSet> {
        let mut m0 = VectorSetBuilder::new(5, 3);
        m0.push_normalized(&[1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        m0.push_normalized(&[0.0, 1.0, 0.0, 0.0, 1.0]).unwrap();
        m0.push_normalized(&[0.2, 0.4, 0.1, 0.7, 0.3]).unwrap();
        let mut m1 = VectorSetBuilder::new(3, 3);
        m1.push_normalized(&[1.0, 0.0, 0.0]).unwrap();
        m1.push_normalized(&[0.0, 1.0, 1.0]).unwrap();
        m1.push_normalized(&[0.5, 0.5, 0.5]).unwrap();
        vec![m0.finish(), m1.finish()]
    }

    #[test]
    fn layout_pads_segments_to_lane_multiples() {
        let rows = FusedRows::from_sets(&sets()).unwrap();
        assert_eq!(rows.dims(), &[5, 3]);
        assert_eq!(rows.segment_bounds(0), (0, 8));
        assert_eq!(rows.segment_bounds(1), (8, 16));
        assert_eq!(rows.stride(), 16);
        assert_eq!(rows.len(), 3);
        // Padding lanes are zero.
        for id in 0..3 {
            let row = rows.row(id);
            assert!(row[5..8].iter().all(|&x| x == 0.0));
            assert!(row[8 + 3..16].iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn modality_slices_match_source_sets() {
        let src = sets();
        let rows = FusedRows::from_sets(&src).unwrap();
        for id in 0..3u32 {
            assert_eq!(rows.modality_slice(id, 0), src[0].get(id));
            assert_eq!(rows.modality_slice(id, 1), src[1].get(id));
        }
    }

    #[test]
    fn prescaled_pair_ip_matches_lemma1() {
        let src = sets();
        let w = Weights::new(vec![0.8, 0.33]).unwrap();
        let rows = FusedRows::from_sets(&src).unwrap();
        let engine = rows.prescaled(&w).unwrap();
        for (a, b) in [(0u32, 1u32), (1, 2), (0, 2)] {
            let want = w.sq(0) * src[0].ip(a, b) + w.sq(1) * src[1].ip(a, b);
            assert!((engine.pair_ip(a, b) - want).abs() < 1e-5);
        }
        assert_eq!(engine.scales(), &[0.8, 0.33]);
    }

    #[test]
    fn raw_parts_round_trip_rezeroes_padding() {
        let rows = FusedRows::from_sets(&sets()).unwrap();
        let mut data = rows.raw_data().to_vec();
        data[6] = 99.0; // corrupt a padding lane
        let back = FusedRows::from_raw_parts(vec![5, 3], data, vec![1.0, 1.0]).unwrap();
        assert_eq!(&back, &rows, "padding must be re-zeroed on load");
    }

    #[test]
    fn query_evaluator_exact_matches_weighted_sum() {
        let src = sets();
        let w = Weights::new(vec![0.9, 0.4]).unwrap();
        let engine = FusedRows::from_sets(&src).unwrap().prescaled(&w).unwrap();
        let q = MultiQuery::full(vec![src[0].get(1).to_vec(), src[1].get(2).to_vec()]);
        let ev = engine.query(&q).unwrap();
        for id in 0..3u32 {
            let want = w.sq(0) * src[0].ip_to(id, src[0].get(1))
                + w.sq(1) * src[1].ip_to(id, src[1].get(2));
            assert!((ev.ip(id) - want).abs() < 1e-5);
        }
        assert!((ev.w_total() - (w.sq(0) + w.sq(1))).abs() < 1e-6);
    }

    #[test]
    fn pruned_walk_is_sound_and_exact() {
        let src = sets();
        let w = Weights::new(vec![0.7, 0.6]).unwrap();
        let engine = FusedRows::from_sets(&src).unwrap().prescaled(&w).unwrap();
        let q = MultiQuery::full(vec![src[0].get(0).to_vec(), src[1].get(1).to_vec()]);
        let ev = engine.query(&q).unwrap();
        for id in 0..3u32 {
            let exact = ev.ip(id);
            match ev.ip_pruned(id, f32::NEG_INFINITY) {
                PartialIpVerdict::Exact(v) => assert!((v - exact).abs() < 1e-5),
                PartialIpVerdict::Pruned => panic!("must not prune at -inf"),
            }
            for threshold in [-0.5f32, 0.0, 0.3, 0.9] {
                if let PartialIpVerdict::Pruned = ev.ip_pruned(id, threshold) {
                    assert!(exact <= threshold + 1e-5);
                }
            }
        }
    }

    #[test]
    fn partial_query_zeroes_missing_segments() {
        let src = sets();
        let engine = FusedRows::from_sets(&src)
            .unwrap()
            .prescaled(&Weights::uniform(2))
            .unwrap();
        let q = MultiQuery::partial(vec![Some(src[0].get(0).to_vec()), None]);
        let ev = engine.query(&q).unwrap();
        assert!((ev.w_total() - 0.5).abs() < 1e-6);
        let want = 0.5 * src[0].ip_to(0, src[0].get(0));
        assert!((ev.ip(0) - want).abs() < 1e-6);
    }

    #[test]
    fn push_row_applies_baked_scales() {
        let src = sets();
        let w = Weights::new(vec![0.5, 2.0]).unwrap();
        let mut engine = FusedRows::from_sets(&src).unwrap().prescaled(&w).unwrap();
        let id = engine
            .push_row(&[vec![0.0, 0.0, 0.0, 0.0, 1.0], vec![1.0, 0.0, 0.0]])
            .unwrap();
        assert_eq!(id, 3);
        assert_eq!(engine.len(), 4);
        assert!((engine.modality_slice(3, 0)[4] - 0.5).abs() < 1e-6);
        assert!((engine.modality_slice(3, 1)[0] - 2.0).abs() < 1e-6);
        // Errors leave the engine untouched.
        assert!(engine.push_row(&[vec![1.0; 5]]).is_err());
        assert!(engine.push_row(&[vec![1.0; 4], vec![1.0; 3]]).is_err());
        assert_eq!(engine.len(), 4);
    }

    #[test]
    fn centroid_row_is_mean_of_rows() {
        let rows = FusedRows::from_sets(&sets()).unwrap();
        let c = rows.centroid_row();
        let mut want = vec![0.0f32; rows.stride()];
        for id in 0..3u32 {
            for (w, x) in want.iter_mut().zip(rows.row(id)) {
                *w += x / 3.0;
            }
        }
        for (a, b) in c.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn multi_vector_set_view_exposes_the_engine() {
        let set = MultiVectorSet::new(sets()).unwrap();
        assert_eq!(set.fused().num_modalities(), 2);
        assert_eq!(set.fused().scales(), &[1.0, 1.0]);
    }
}
