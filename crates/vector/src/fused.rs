//! The fused-row storage engine: one contiguous, **unscaled** row per
//! object for the joint-similarity hot path, with all modality weighting
//! applied query-side.
//!
//! The paper reports that vector computation consumes up to 90 % of total
//! search time (Section VII-B).  Storing each object's `m` modality vectors
//! as `m` separate matrices costs one heap indirection and one cache-cold
//! row fetch *per modality per candidate*.  [`FusedRows`] instead lays all
//! modalities of object `i` out contiguously:
//!
//! ```text
//! row i: [ seg 0 (dim_0, padded) | seg 1 (dim_1, padded) | ... | seg m-1 ]
//! ```
//!
//! Each segment is zero-padded to a multiple of [`FUSED_LANE`] floats so
//! every segment (and every row) starts on a SIMD-friendly boundary; the
//! padding lanes are always zero, so they contribute nothing to inner
//! products or squared distances.
//!
//! **Weights never touch the stored rows.**  Lemma 1 gives the joint
//! similarity as `IP(q_hat, o_hat) = sum_k omega_k^2 * IP_k`, and every
//! `omega_k^2` multiplies the *query side* of each per-modality inner
//! product — so [`FusedRows::query`] bakes `omega_k^2` into the fused
//! query row once per query, and scoring a candidate against the raw
//! stored row is still **one** contiguous dot product.  Changing weights
//! is therefore a per-query decision, not a storage rebuild: the same
//! engine serves any `omega` (the paper's user-defined-weight scenario,
//! Tab. IX and Section VIII-F).
//!
//! For the Lemma-4 early-termination walk the engine additionally stores
//! each row's per-modality squared segment norms (`||o_k||^2`, 1.0 for
//! unit-normalised corpora), so the prefix bound
//! `sum_k 0.5 omega_k^2 (||q_k||^2 + ||o_k||^2) - 0.5 omega_k^2 ||q_k - o_k||^2`
//! needs only the raw per-segment `l2_sq` kernel scaled by `omega_k^2` —
//! factors the evaluator precomputes at construction time.

use crate::kernels;
use crate::multi::MultiQuery;
use crate::{ObjectId, VectorError, VectorSet, Weights};

/// Segment alignment in `f32` lanes (32 bytes): every modality segment is
/// zero-padded to a multiple of this, so rows and segments stay on
/// SIMD-friendly boundaries.
pub const FUSED_LANE: usize = 8;

fn pad(dim: usize) -> usize {
    dim.div_ceil(FUSED_LANE) * FUSED_LANE
}

/// Contiguous multi-modality row storage (see the module docs).
///
/// Rows are stored **unscaled** — weighting happens query-side via
/// [`FusedRows::query`] / [`FusedRows::weighted_pair_ip`] — and each row
/// carries its per-modality squared segment norms for the Lemma-4 bound.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedRows {
    /// Unpadded per-modality dimensionalities.
    dims: Vec<usize>,
    /// Padded segment starts within a row; `seg[m]` is the row stride.
    seg: Vec<usize>,
    /// Number of rows (objects).
    len: usize,
    /// `len * stride` floats, row-major, padding lanes zero.
    data: Vec<f32>,
    /// `len * m` squared segment norms: `seg_norms[id * m + k] = ||o_k||^2`.
    seg_norms: Vec<f32>,
}

impl FusedRows {
    fn layout(dims: &[usize]) -> Vec<usize> {
        let mut seg = Vec::with_capacity(dims.len() + 1);
        let mut off = 0;
        seg.push(0);
        for &d in dims {
            off += pad(d);
            seg.push(off);
        }
        seg
    }

    /// Recomputes every row's per-modality squared segment norms from the
    /// padded data (padding lanes are zero, so padded and unpadded norms
    /// agree).
    fn compute_norms(dims: &[usize], seg: &[usize], data: &[f32]) -> Vec<f32> {
        let stride = seg[dims.len()];
        let mut norms = Vec::with_capacity((data.len() / stride.max(1)) * dims.len());
        for row in data.chunks_exact(stride) {
            for k in 0..dims.len() {
                let s = &row[seg[k]..seg[k + 1]];
                norms.push(kernels::ip(s, s));
            }
        }
        norms
    }

    /// Builds fused storage from per-modality sets.
    ///
    /// # Errors
    /// [`VectorError::CardinalityMismatch`] when the sets disagree on the
    /// number of objects:
    ///
    /// ```
    /// use must_vector::{FusedRows, VectorError, VectorSet, VectorSetBuilder};
    /// let mut a = VectorSetBuilder::new(2, 1);
    /// a.push_normalized(&[1.0, 0.0]).unwrap();
    /// let b = VectorSet::new(3); // empty: 0 objects vs 1
    /// assert_eq!(
    ///     FusedRows::from_sets(&[a.finish(), b]).unwrap_err(),
    ///     VectorError::CardinalityMismatch { expected: 1, got: 0 },
    /// );
    /// ```
    pub fn from_sets(sets: &[VectorSet]) -> Result<Self, VectorError> {
        assert!(!sets.is_empty(), "at least one modality required");
        let n = sets[0].len();
        for set in &sets[1..] {
            if set.len() != n {
                return Err(VectorError::CardinalityMismatch { expected: n, got: set.len() });
            }
        }
        let dims: Vec<usize> = sets.iter().map(VectorSet::dim).collect();
        let seg = Self::layout(&dims);
        let stride = seg[dims.len()];
        let mut data = vec![0.0f32; n * stride];
        for (k, set) in sets.iter().enumerate() {
            let (start, dim) = (seg[k], dims[k]);
            for (id, v) in set.iter() {
                let row = id as usize * stride + start;
                data[row..row + dim].copy_from_slice(v);
            }
        }
        let seg_norms = Self::compute_norms(&dims, &seg, &data);
        Ok(Self { dims, seg, len: n, data, seg_norms })
    }

    /// Reassembles fused storage from its raw parts (the bundle-v3/v4 load
    /// path: the on-disk rows are already in fused layout, so no per-
    /// modality re-copy happens).  Padding lanes are re-zeroed defensively
    /// and segment norms are recomputed from the data.
    ///
    /// # Errors
    /// [`VectorError::DimensionMismatch`] when `data.len()` is not
    /// `len * stride` for the layout implied by `dims`, or when any
    /// dimension is zero:
    ///
    /// ```
    /// use must_vector::{FusedRows, VectorError};
    /// // dims [2, 3] pad to a stride of 16, so 17 floats cannot be rows.
    /// assert!(matches!(
    ///     FusedRows::from_raw_parts(vec![2, 3], vec![0.0; 17]),
    ///     Err(VectorError::DimensionMismatch { .. }),
    /// ));
    /// ```
    pub fn from_raw_parts(dims: Vec<usize>, data: Vec<f32>) -> Result<Self, VectorError> {
        let mut rows = Self::from_raw_parts_unnormed(dims, data)?;
        rows.seg_norms = Self::compute_norms(&rows.dims, &rows.seg, &rows.data);
        Ok(rows)
    }

    /// Like [`FusedRows::from_raw_parts`], but adopts pre-computed segment
    /// norms instead of re-deriving them (the bundle-v5 load path, which
    /// persists the norms block alongside the rows).
    ///
    /// # Errors
    /// Everything [`FusedRows::from_raw_parts`] rejects, plus
    /// [`VectorError::CardinalityMismatch`] when `seg_norms` does not hold
    /// exactly one norm per `(row, modality)` pair.
    pub fn from_raw_parts_with_norms(
        dims: Vec<usize>,
        data: Vec<f32>,
        seg_norms: Vec<f32>,
    ) -> Result<Self, VectorError> {
        let mut rows = Self::from_raw_parts_unnormed(dims, data)?;
        if seg_norms.len() != rows.len * rows.dims.len() {
            return Err(VectorError::CardinalityMismatch {
                expected: rows.len * rows.dims.len(),
                got: seg_norms.len(),
            });
        }
        rows.seg_norms = seg_norms;
        Ok(rows)
    }

    fn from_raw_parts_unnormed(dims: Vec<usize>, mut data: Vec<f32>) -> Result<Self, VectorError> {
        assert!(!dims.is_empty(), "at least one modality required");
        if dims.contains(&0) {
            return Err(VectorError::DimensionMismatch { expected: 1, got: 0 });
        }
        let seg = Self::layout(&dims);
        let stride = seg[dims.len()];
        if !data.len().is_multiple_of(stride) {
            return Err(VectorError::DimensionMismatch {
                expected: stride,
                got: data.len() % stride,
            });
        }
        let len = data.len() / stride;
        // Padding must be zero for fused dot products to be exact; enforce
        // rather than trust the caller (or the bytes on disk).
        for row in data.chunks_exact_mut(stride) {
            for (k, &d) in dims.iter().enumerate() {
                for x in &mut row[seg[k] + d..seg[k + 1]] {
                    *x = 0.0;
                }
            }
        }
        Ok(Self { dims, seg, len, data, seg_norms: Vec::new() })
    }

    /// Number of modalities `m`.
    #[inline]
    #[must_use]
    pub fn num_modalities(&self) -> usize {
        self.dims.len()
    }

    /// Unpadded per-modality dimensionalities.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row stride in floats (sum of padded segment widths).
    #[inline]
    #[must_use]
    pub fn stride(&self) -> usize {
        self.seg[self.dims.len()]
    }

    /// Padded `[start, end)` of modality `k`'s segment within a row.
    #[inline]
    #[must_use]
    pub fn segment_bounds(&self, k: usize) -> (usize, usize) {
        (self.seg[k], self.seg[k + 1])
    }

    /// Number of rows (objects).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine holds no rows.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The squared norm `||o_k||^2` of modality `k`'s segment in row `id`
    /// (1.0 for unit-normalised corpora).
    #[inline]
    #[must_use]
    pub fn seg_norm(&self, id: ObjectId, k: usize) -> f32 {
        self.seg_norms[id as usize * self.dims.len() + k]
    }

    /// All squared segment norms, row-major (`len * m` entries) — the
    /// bundle-v5 save path.
    #[inline]
    #[must_use]
    pub fn seg_norms(&self) -> &[f32] {
        &self.seg_norms
    }

    /// The full padded row of object `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of bounds.
    #[inline]
    #[must_use]
    pub fn row(&self, id: ObjectId) -> &[f32] {
        let stride = self.stride();
        let start = id as usize * stride;
        &self.data[start..start + stride]
    }

    /// The padded segment of modality `k` in row `id` (tail lanes zero).
    #[inline]
    #[must_use]
    pub fn segment(&self, id: ObjectId, k: usize) -> &[f32] {
        let stride = self.stride();
        let start = id as usize * stride;
        &self.data[start + self.seg[k]..start + self.seg[k + 1]]
    }

    /// The unpadded modality-`k` vector of object `id` (length `dims[k]`).
    #[inline]
    #[must_use]
    pub fn modality_slice(&self, id: ObjectId, k: usize) -> &[f32] {
        let stride = self.stride();
        let start = id as usize * stride + self.seg[k];
        &self.data[start..start + self.dims[k]]
    }

    /// The raw row buffer (bundle save path).
    #[inline]
    #[must_use]
    pub fn raw_data(&self) -> &[f32] {
        &self.data
    }

    /// Unweighted joint similarity of rows `a` and `b`: one contiguous dot
    /// product summing every per-modality inner product with coefficient 1.
    /// For the Lemma-1 weighted sum use [`FusedRows::weighted_pair_ip`].
    #[inline]
    #[must_use]
    pub fn pair_ip(&self, a: ObjectId, b: ObjectId) -> f32 {
        kernels::ip_prescaled_segments(self.row(a), self.row(b))
    }

    /// The Lemma-1 joint similarity `sum_k wsq[k] * IP_k` between rows `a`
    /// and `b` under squared weights `wsq` (`omega_k^2`): one per-segment
    /// dot product per positive weight, all walking the same two
    /// contiguous rows.
    ///
    /// # Panics
    /// Panics in debug builds when `wsq` does not cover every modality.
    #[inline]
    #[must_use]
    pub fn weighted_pair_ip(&self, a: ObjectId, b: ObjectId, wsq: &[f32]) -> f32 {
        debug_assert_eq!(wsq.len(), self.num_modalities());
        let (ra, rb) = (self.row(a), self.row(b));
        let mut sum = 0.0;
        for (k, &w) in wsq.iter().enumerate() {
            if w > 0.0 {
                sum += w * kernels::ip(&ra[self.seg[k]..self.seg[k + 1]], &rb[self.seg[k]..self.seg[k + 1]]);
            }
        }
        sum
    }

    /// Inner product of modality `k` between rows `a` and `b`.
    #[inline]
    #[must_use]
    pub fn modality_ip(&self, a: ObjectId, b: ObjectId, k: usize) -> f32 {
        kernels::ip(self.segment(a, k), self.segment(b, k))
    }

    /// The mean of all rows — the fused centroid used by seed
    /// preprocessing (component 4 of Algorithm 1); weight it query-side
    /// like any other point.  Padding lanes stay zero.
    #[must_use]
    pub fn centroid_row(&self) -> Vec<f32> {
        let stride = self.stride();
        let mut c = vec![0.0f32; stride];
        if self.len == 0 {
            return c;
        }
        for row in self.data.chunks_exact(stride) {
            for (ci, x) in c.iter_mut().zip(row) {
                *ci += x;
            }
        }
        let inv = 1.0 / self.len as f32;
        for ci in c.iter_mut() {
            *ci *= inv;
        }
        c
    }

    /// Appends one object from its per-modality vectors, stored raw.  The
    /// caller is responsible for normalisation (the public entry point is
    /// `MultiVectorSet::push_object`); segment norms are recorded from the
    /// values as given.
    ///
    /// # Errors
    /// [`VectorError::CardinalityMismatch`] on wrong modality count,
    /// [`VectorError::DimensionMismatch`] on wrong slot length; the engine
    /// is untouched on error.
    pub fn push_row<S: AsRef<[f32]>>(&mut self, rows: &[S]) -> Result<ObjectId, VectorError> {
        if rows.len() != self.num_modalities() {
            return Err(VectorError::CardinalityMismatch {
                expected: self.num_modalities(),
                got: rows.len(),
            });
        }
        for (k, r) in rows.iter().enumerate() {
            if r.as_ref().len() != self.dims[k] {
                return Err(VectorError::DimensionMismatch {
                    expected: self.dims[k],
                    got: r.as_ref().len(),
                });
            }
        }
        let id = self.len as ObjectId;
        let stride = self.stride();
        self.data.resize((self.len + 1) * stride, 0.0);
        let row = &mut self.data[self.len * stride..];
        for (k, r) in rows.iter().enumerate() {
            let r = r.as_ref();
            row[self.seg[k]..self.seg[k] + r.len()].copy_from_slice(r);
            self.seg_norms.push(kernels::ip(r, r));
        }
        self.len += 1;
        Ok(id)
    }

    /// Heap footprint of the padded row storage in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        (self.data.len() + self.seg_norms.len()) * std::mem::size_of::<f32>()
    }

    /// Quantizes the engine into its SQ8 companion
    /// ([`crate::quant::QuantizedRows`]): same layout, `u8` codes, per-row
    /// affine parameters, and the exact segment norms carried over — the
    /// compressed walk the serving layer scans before re-ranking on these
    /// f32 rows.
    #[must_use]
    pub fn quantize(&self) -> crate::quant::QuantizedRows {
        crate::quant::QuantizedRows::from_fused(self)
    }

    /// Prepares a per-query evaluator under `weights`: the query's supplied
    /// slots are scaled by `omega_k^2` and fused into one padded row
    /// *once*, after which every candidate costs a single dot product
    /// against its raw stored row (exact path) or an early-exiting segment
    /// walk (Lemma-4 path).  Because the stored rows are unscaled, every
    /// query may carry **its own** weight vector over the same engine.
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when `weights` (or the query's slot
    /// count) does not cover every modality,
    /// [`VectorError::DimensionMismatch`] when a supplied slot has the
    /// wrong dimensionality.
    pub fn query(
        &self,
        query: &MultiQuery,
        weights: &Weights,
    ) -> Result<FusedQueryEvaluator<'_>, VectorError> {
        FusedQueryEvaluator::new(self, query, weights)
    }
}

/// Verdict of the incremental (pruned) fused-row similarity computation —
/// re-exported alias of the per-modality verdict for seam compatibility.
pub use crate::joint::PartialIpVerdict;

/// One active (supplied, positive-weight) modality of a fused query, in
/// Lemma-4 prefix order.
#[derive(Debug, Clone, Copy)]
struct ActiveSegment {
    /// Modality index (for the stored-norm lookup).
    k: usize,
    /// Padded segment start within a row.
    start: usize,
    /// Padded segment end within a row.
    end: usize,
    /// `0.5 * omega_k^2` — the evaluator-construction-time scaling of the
    /// per-segment `l2_sq` in the Lemma-4 bound.
    half_wsq: f32,
}

/// Per-query evaluator over a [`FusedRows`] engine: the query row carries
/// `omega_k^2`, the stored rows stay raw, and the Lemma-4 early-termination
/// optimisation (Eqs. 8–9 of the paper) runs on `omega^2`-scaled raw
/// per-segment distances.  Also carries the kernel-evaluation
/// instrumentation the Fig. 10(c) ablation counts.
#[derive(Debug)]
pub struct FusedQueryEvaluator<'a> {
    rows: &'a FusedRows,
    /// The query fused into one padded row with `omega_k^2` baked in;
    /// segments of unsupplied (or zero-weight) modalities are zero, so the
    /// exact path is one dot product against the raw stored row.
    qrow: Vec<f32>,
    /// The same query row *unscaled* — the side the Lemma-4 per-segment
    /// `l2_sq` walk compares raw stored segments against.
    qraw: Vec<f32>,
    /// Active modalities in modality order — the Lemma-4 prefix order.
    active: Vec<ActiveSegment>,
    /// `sum of active omega_k^2` (the query's joint self-similarity for a
    /// unit-norm query).
    w_total: f32,
    /// `sum_k 0.5 * omega_k^2 * ||q_k||^2` — the query half of the Eq. 8
    /// norm term; the candidate half comes from the stored segment norms.
    q_half_norm: f32,
    kernel_evals: std::cell::Cell<u64>,
}

impl<'a> FusedQueryEvaluator<'a> {
    fn new(
        rows: &'a FusedRows,
        query: &MultiQuery,
        weights: &Weights,
    ) -> Result<Self, VectorError> {
        if query.num_slots() != rows.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: rows.num_modalities(),
                weights: query.num_slots(),
            });
        }
        if weights.modalities() != rows.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: rows.num_modalities(),
                weights: weights.modalities(),
            });
        }
        let mut qrow = vec![0.0f32; rows.stride()];
        let mut qraw = vec![0.0f32; rows.stride()];
        let mut active = Vec::with_capacity(rows.num_modalities());
        let mut w_total = 0.0;
        let mut q_half_norm = 0.0;
        for k in 0..rows.num_modalities() {
            let Some(slot) = query.slot(k) else { continue };
            if slot.len() != rows.dims()[k] {
                return Err(VectorError::DimensionMismatch {
                    expected: rows.dims()[k],
                    got: slot.len(),
                });
            }
            let wsq = weights.sq(k);
            if wsq <= 0.0 {
                continue;
            }
            let (start, end) = rows.segment_bounds(k);
            qraw[start..start + slot.len()].copy_from_slice(slot);
            for (dst, &x) in qrow[start..].iter_mut().zip(slot) {
                *dst = wsq * x;
            }
            active.push(ActiveSegment { k, start, end, half_wsq: 0.5 * wsq });
            w_total += wsq;
            q_half_norm += 0.5 * wsq * kernels::ip(slot, slot);
        }
        Ok(Self {
            rows,
            qrow,
            qraw,
            active,
            w_total,
            q_half_norm,
            kernel_evals: std::cell::Cell::new(0),
        })
    }

    /// Number of modality kernels evaluated so far (the multi-vector
    /// computation ablation counter).
    #[inline]
    pub fn kernel_evals(&self) -> u64 {
        self.kernel_evals.get()
    }

    /// Sum of active squared weights — the joint similarity of a unit-norm
    /// query with itself and the starting value of the Lemma-4 upper bound.
    #[inline]
    pub fn w_total(&self) -> f32 {
        self.w_total
    }

    #[inline]
    fn bump(&self, by: u64) {
        self.kernel_evals.set(self.kernel_evals.get() + by);
    }

    /// Exact joint similarity of object `id` to the query: one contiguous
    /// dot product of the raw stored row against the `omega^2`-scaled
    /// query row (inactive segments of the query row are zero and
    /// contribute nothing).
    #[inline]
    pub fn ip(&self, id: ObjectId) -> f32 {
        self.bump(self.active.len() as u64);
        kernels::ip_prescaled_segments(self.rows.row(id), &self.qrow)
    }

    /// Incremental joint similarity with safe early termination (Lemma 4):
    /// starts from the norm term
    /// `sum_k 0.5 omega_k^2 (||q_k||^2 + ||o_k||^2)` (query half
    /// precomputed, candidate half from the stored segment norms) and
    /// walks the active raw segments, shrinking the bound by
    /// `0.5 omega_k^2 ||q_k - o_k||^2` per segment.  Returns
    /// [`PartialIpVerdict::Pruned`] as soon as the bound falls to
    /// `threshold` with segments still unscanned; the exact similarity
    /// otherwise.
    pub fn ip_pruned(&self, id: ObjectId, threshold: f32) -> PartialIpVerdict {
        let row = self.rows.row(id);
        let mut bound = self.q_half_norm;
        for seg in &self.active {
            bound += seg.half_wsq * self.rows.seg_norm(id, seg.k);
        }
        let last = self.active.len().saturating_sub(1);
        for (scanned, seg) in self.active.iter().enumerate() {
            bound -= seg.half_wsq
                * kernels::l2_sq(&row[seg.start..seg.end], &self.qraw[seg.start..seg.end]);
            self.bump(1);
            if bound <= threshold && scanned < last {
                return PartialIpVerdict::Pruned;
            }
        }
        PartialIpVerdict::Exact(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MultiVectorSet, VectorSetBuilder};

    fn sets() -> Vec<VectorSet> {
        let mut m0 = VectorSetBuilder::new(5, 3);
        m0.push_normalized(&[1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        m0.push_normalized(&[0.0, 1.0, 0.0, 0.0, 1.0]).unwrap();
        m0.push_normalized(&[0.2, 0.4, 0.1, 0.7, 0.3]).unwrap();
        let mut m1 = VectorSetBuilder::new(3, 3);
        m1.push_normalized(&[1.0, 0.0, 0.0]).unwrap();
        m1.push_normalized(&[0.0, 1.0, 1.0]).unwrap();
        m1.push_normalized(&[0.5, 0.5, 0.5]).unwrap();
        vec![m0.finish(), m1.finish()]
    }

    #[test]
    fn layout_pads_segments_to_lane_multiples() {
        let rows = FusedRows::from_sets(&sets()).unwrap();
        assert_eq!(rows.dims(), &[5, 3]);
        assert_eq!(rows.segment_bounds(0), (0, 8));
        assert_eq!(rows.segment_bounds(1), (8, 16));
        assert_eq!(rows.stride(), 16);
        assert_eq!(rows.len(), 3);
        // Padding lanes are zero.
        for id in 0..3 {
            let row = rows.row(id);
            assert!(row[5..8].iter().all(|&x| x == 0.0));
            assert!(row[8 + 3..16].iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn modality_slices_match_source_sets() {
        let src = sets();
        let rows = FusedRows::from_sets(&src).unwrap();
        for id in 0..3u32 {
            assert_eq!(rows.modality_slice(id, 0), src[0].get(id));
            assert_eq!(rows.modality_slice(id, 1), src[1].get(id));
        }
    }

    #[test]
    fn segment_norms_are_one_for_normalized_rows() {
        let rows = FusedRows::from_sets(&sets()).unwrap();
        assert_eq!(rows.seg_norms().len(), 3 * 2);
        for id in 0..3u32 {
            for k in 0..2 {
                assert!((rows.seg_norm(id, k) - 1.0).abs() < 1e-5, "id {id} k {k}");
            }
        }
    }

    #[test]
    fn weighted_pair_ip_matches_lemma1() {
        let src = sets();
        let w = Weights::new(vec![0.8, 0.33]).unwrap();
        let rows = FusedRows::from_sets(&src).unwrap();
        for (a, b) in [(0u32, 1u32), (1, 2), (0, 2)] {
            let want = w.sq(0) * src[0].ip(a, b) + w.sq(1) * src[1].ip(a, b);
            assert!((rows.weighted_pair_ip(a, b, w.squared()) - want).abs() < 1e-5);
        }
        // The unweighted pair similarity is the plain modality sum.
        let want = src[0].ip(0, 1) + src[1].ip(0, 1);
        assert!((rows.pair_ip(0, 1) - want).abs() < 1e-5);
    }

    #[test]
    fn raw_parts_round_trip_rezeroes_padding() {
        let rows = FusedRows::from_sets(&sets()).unwrap();
        let mut data = rows.raw_data().to_vec();
        data[6] = 99.0; // corrupt a padding lane
        let back = FusedRows::from_raw_parts(vec![5, 3], data).unwrap();
        assert_eq!(&back, &rows, "padding must be re-zeroed on load");
    }

    #[test]
    fn raw_parts_with_norms_validates_norm_count() {
        let rows = FusedRows::from_sets(&sets()).unwrap();
        let back = FusedRows::from_raw_parts_with_norms(
            vec![5, 3],
            rows.raw_data().to_vec(),
            rows.seg_norms().to_vec(),
        )
        .unwrap();
        assert_eq!(&back, &rows);
        assert!(matches!(
            FusedRows::from_raw_parts_with_norms(
                vec![5, 3],
                rows.raw_data().to_vec(),
                vec![1.0; 5],
            ),
            Err(VectorError::CardinalityMismatch { expected: 6, got: 5 })
        ));
    }

    #[test]
    fn query_evaluator_exact_matches_weighted_sum() {
        let src = sets();
        let w = Weights::new(vec![0.9, 0.4]).unwrap();
        let engine = FusedRows::from_sets(&src).unwrap();
        let q = MultiQuery::full(vec![src[0].get(1).to_vec(), src[1].get(2).to_vec()]);
        let ev = engine.query(&q, &w).unwrap();
        for id in 0..3u32 {
            let want = w.sq(0) * src[0].ip_to(id, src[0].get(1))
                + w.sq(1) * src[1].ip_to(id, src[1].get(2));
            assert!((ev.ip(id) - want).abs() < 1e-5);
        }
        assert!((ev.w_total() - (w.sq(0) + w.sq(1))).abs() < 1e-6);
    }

    #[test]
    fn same_engine_serves_different_weights_per_query() {
        // The whole point of unscaled storage: two evaluators with
        // different weights over one engine, each matching its own
        // reference weighted sum.
        let src = sets();
        let engine = FusedRows::from_sets(&src).unwrap();
        let q = MultiQuery::full(vec![src[0].get(0).to_vec(), src[1].get(1).to_vec()]);
        for w in [
            Weights::uniform(2),
            Weights::from_squared(vec![0.9, 0.1]).unwrap(),
            Weights::from_squared(vec![0.2, 0.8]).unwrap(),
        ] {
            let ev = engine.query(&q, &w).unwrap();
            for id in 0..3u32 {
                let want = w.sq(0) * src[0].ip_to(id, src[0].get(0))
                    + w.sq(1) * src[1].ip_to(id, src[1].get(1));
                assert!((ev.ip(id) - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn pruned_walk_is_sound_and_exact() {
        let src = sets();
        let w = Weights::new(vec![0.7, 0.6]).unwrap();
        let engine = FusedRows::from_sets(&src).unwrap();
        let q = MultiQuery::full(vec![src[0].get(0).to_vec(), src[1].get(1).to_vec()]);
        let ev = engine.query(&q, &w).unwrap();
        for id in 0..3u32 {
            let exact = ev.ip(id);
            match ev.ip_pruned(id, f32::NEG_INFINITY) {
                PartialIpVerdict::Exact(v) => assert!((v - exact).abs() < 1e-5),
                PartialIpVerdict::Pruned => panic!("must not prune at -inf"),
            }
            for threshold in [-0.5f32, 0.0, 0.3, 0.9] {
                if let PartialIpVerdict::Pruned = ev.ip_pruned(id, threshold) {
                    assert!(exact <= threshold + 1e-5);
                }
            }
        }
    }

    #[test]
    fn partial_query_zeroes_missing_segments() {
        let src = sets();
        let engine = FusedRows::from_sets(&src).unwrap();
        let q = MultiQuery::partial(vec![Some(src[0].get(0).to_vec()), None]);
        let ev = engine.query(&q, &Weights::uniform(2)).unwrap();
        assert!((ev.w_total() - 0.5).abs() < 1e-6);
        let want = 0.5 * src[0].ip_to(0, src[0].get(0));
        assert!((ev.ip(0) - want).abs() < 1e-6);
    }

    #[test]
    fn zero_weight_modalities_are_inactive() {
        let src = sets();
        let engine = FusedRows::from_sets(&src).unwrap();
        let q = MultiQuery::full(vec![src[0].get(0).to_vec(), src[1].get(1).to_vec()]);
        let w = Weights::new(vec![0.8, 0.0]).unwrap();
        let ev = engine.query(&q, &w).unwrap();
        assert!((ev.w_total() - w.sq(0)).abs() < 1e-6);
        for id in 0..3u32 {
            let want = w.sq(0) * src[0].ip_to(id, src[0].get(0));
            assert!((ev.ip(id) - want).abs() < 1e-5);
        }
        // One active modality means one kernel per pruned evaluation.
        let before = ev.kernel_evals();
        let _ = ev.ip_pruned(0, f32::NEG_INFINITY);
        assert_eq!(ev.kernel_evals() - before, 1);
    }

    #[test]
    fn push_row_stores_raw_values_and_norms() {
        let src = sets();
        let mut engine = FusedRows::from_sets(&src).unwrap();
        let id = engine
            .push_row(&[vec![0.0, 0.0, 0.0, 0.0, 1.0], vec![0.6, 0.8, 0.0]])
            .unwrap();
        assert_eq!(id, 3);
        assert_eq!(engine.len(), 4);
        assert!((engine.modality_slice(3, 0)[4] - 1.0).abs() < 1e-6);
        assert!((engine.modality_slice(3, 1)[0] - 0.6).abs() < 1e-6);
        assert!((engine.seg_norm(3, 0) - 1.0).abs() < 1e-6);
        assert!((engine.seg_norm(3, 1) - 1.0).abs() < 1e-6);
        // Errors leave the engine untouched.
        assert!(engine.push_row(&[vec![1.0; 5]]).is_err());
        assert!(engine.push_row(&[vec![1.0; 4], vec![1.0; 3]]).is_err());
        assert_eq!(engine.len(), 4);
        assert_eq!(engine.seg_norms().len(), 4 * 2);
    }

    #[test]
    fn centroid_row_is_mean_of_rows() {
        let rows = FusedRows::from_sets(&sets()).unwrap();
        let c = rows.centroid_row();
        let mut want = vec![0.0f32; rows.stride()];
        for id in 0..3u32 {
            for (w, x) in want.iter_mut().zip(rows.row(id)) {
                *w += x / 3.0;
            }
        }
        for (a, b) in c.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn multi_vector_set_view_exposes_the_engine() {
        let set = MultiVectorSet::new(sets()).unwrap();
        assert_eq!(set.fused().num_modalities(), 2);
        assert_eq!(set.fused().seg_norms().len(), 3 * 2);
    }
}
