//! SQ8 scalar-quantized companion to the fused-row storage engine.
//!
//! A [`QuantizedRows`] engine mirrors a [`FusedRows`] engine row for row:
//! the same stride-aligned segment layout, but each component stored as a
//! `u8` code under a **per-row per-segment** affine map
//! `value = min + step * code` (`step = (max - min) / 255`, the classic
//! scalar-quantization recipe).  That cuts the per-object row storage 4x
//! — the difference between a 16 M-object deployment fitting in RAM or
//! not — at the price of a bounded reconstruction error of at most half a
//! quantization step per component.
//!
//! **Codes are weight-free.**  Lemma 1 puts every `omega_k^2` on the
//! *query* side of each per-modality inner product, and the f32 engine
//! already exploits that by never scaling stored rows.  The quantized
//! engine inherits the property wholesale: codes encode the raw
//! (unscaled, unit-norm) vectors, and [`QuantizedRows::query`] applies
//! `omega_k^2` per segment at evaluation time — so one set of codes
//! serves every weight configuration, exactly like the f32 rows.
//!
//! **The widened Lemma-4 bound never under-prunes.**  The exact walk
//! shrinks the Eq. 8 bound by `0.5 omega_k^2 ||q_k - o_k||^2` per segment.
//! The quantized walk only knows the decoded point `o_hat_k`, but the
//! per-row-segment radius `eps_rk >= ||o_k - o_hat_k||` (stored at encode
//! time) turns the triangle inequality into a certified lower bound:
//!
//! ```text
//! ||q_k - o_k|| >= max(0, ||q_k - o_hat_k|| - eps_rk)
//! ```
//!
//! so subtracting `0.5 omega_k^2 * max(0, ||q_k - o_hat_k|| - eps_rk)^2`
//! keeps the quantized prefix bound at or above the exact f32 prefix
//! bound at *every* prefix: any candidate the quantized walk prunes, the
//! exact walk would have pruned too.  `eps_rk` additionally carries a
//! small multiplicative + absolute float-rounding margin so the guarantee
//! survives f32 accumulation-order differences.  Survivors come back with
//! the *decoded* joint similarity — an approximation — which is why the
//! serving layer re-ranks the top pool on the retained f32 rows before
//! answering.

use std::sync::Arc;

use crate::fused::{FusedRows, PartialIpVerdict, FUSED_LANE};
use crate::multi::MultiQuery;
use crate::{kernels, ObjectId, VectorError, Weights};

/// Per-(row, segment) affine dequantization parameters plus the certified
/// reconstruction radius used by the widened Lemma-4 bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegParams {
    /// Segment minimum: the decoded value of code 0.
    pub min: f32,
    /// Quantization step: `(max - min) / 255`; `0.0` for constant
    /// segments, which therefore decode exactly.
    pub step: f32,
    /// Certified reconstruction radius: `||o_k - o_hat_k|| <= eps`, with a
    /// float-rounding safety margin baked in.
    pub eps: f32,
}

/// Owning or borrowed backing store for the `u8` code matrix.
///
/// The zero-copy bundle-v7 load path slices codes straight out of the one
/// read buffer ([`CodeStore::shared`]); mutation (dynamic insertion after
/// a load) promotes to an owned copy on first write — copy-on-write, so
/// the common read-only serving path never pays for the copy.
#[derive(Debug, Clone)]
pub struct CodeStore(Store);

#[derive(Debug, Clone)]
enum Store {
    Owned(Vec<u8>),
    Shared {
        buf: Arc<Vec<u8>>,
        start: usize,
        len: usize,
    },
}

impl CodeStore {
    /// An owned store.
    #[must_use]
    pub fn owned(codes: Vec<u8>) -> Self {
        Self(Store::Owned(codes))
    }

    /// A store borrowing `len` bytes at `start` from a shared buffer —
    /// the zero-copy load path.
    ///
    /// # Errors
    /// [`VectorError::CardinalityMismatch`] when the range does not fit
    /// inside `buf`.
    pub fn shared(buf: Arc<Vec<u8>>, start: usize, len: usize) -> Result<Self, VectorError> {
        let end = start.checked_add(len).filter(|&e| e <= buf.len());
        if end.is_none() {
            return Err(VectorError::CardinalityMismatch {
                expected: start.saturating_add(len),
                got: buf.len(),
            });
        }
        Ok(Self(Store::Shared { buf, start, len }))
    }

    /// The codes as a contiguous byte slice.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Store::Owned(v) => v,
            Store::Shared { buf, start, len } => &buf[*start..*start + *len],
        }
    }

    /// Number of code bytes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.0 {
            Store::Owned(v) => v.len(),
            Store::Shared { len, .. } => *len,
        }
    }

    /// Whether the store holds no codes.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the store still borrows from a shared load buffer (i.e. no
    /// copy-on-write promotion has happened yet).
    #[inline]
    #[must_use]
    pub fn is_shared(&self) -> bool {
        matches!(self.0, Store::Shared { .. })
    }

    /// Mutable access, promoting a shared store to an owned copy on first
    /// use (copy-on-write).
    pub fn make_mut(&mut self) -> &mut Vec<u8> {
        if let Store::Shared { buf, start, len } = &self.0 {
            self.0 = Store::Owned(buf[*start..*start + *len].to_vec());
        }
        match &mut self.0 {
            Store::Owned(v) => v,
            Store::Shared { .. } => unreachable!("promoted above"),
        }
    }
}

impl PartialEq for CodeStore {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// One segment's contribution to the quantized candidate statistics:
/// the squared distance `||q_seg - o_hat_seg||^2` to the decoded point
/// and the inner product `<q_seg, o_hat_seg>` with it, in one fused pass
/// over the `d` real (unpadded) components.
///
/// Padding code bytes must **not** be included in `codes`: a padded code
/// of 0 would decode to `min`, not 0, so unlike the f32 engine the
/// quantized kernels iterate exactly the real dimensions.
#[must_use]
pub fn seg_quant_stats(q: &[f32], codes: &[u8], min: f32, step: f32) -> (f32, f32) {
    debug_assert_eq!(q.len(), codes.len());
    // 8 accumulator lanes — the same width as `FUSED_LANE`, so the decode
    // + accumulate loop vectorises to the same register shape as the f32
    // fused kernels instead of leaving half the lanes on the table.
    const LANES: usize = 8;
    let n = q.len();
    let mut d2 = [0.0f32; LANES];
    let mut dot = [0.0f32; LANES];
    let chunks = n / LANES;
    for c in 0..chunks {
        let i = c * LANES;
        for lane in 0..LANES {
            let v = min + step * f32::from(codes[i + lane]);
            let d = q[i + lane] - v;
            d2[lane] += d * d;
            dot[lane] += q[i + lane] * v;
        }
    }
    let mut d2s = ((d2[0] + d2[1]) + (d2[2] + d2[3])) + ((d2[4] + d2[5]) + (d2[6] + d2[7]));
    let mut dots =
        ((dot[0] + dot[1]) + (dot[2] + dot[3])) + ((dot[4] + dot[5]) + (dot[6] + dot[7]));
    for i in chunks * LANES..n {
        let v = min + step * f32::from(codes[i]);
        let d = q[i] - v;
        d2s += d * d;
        dots += q[i] * v;
    }
    (d2s, dots)
}

/// Encodes one f32 segment of `d` real components into `u8` codes,
/// returning the affine parameters (with the certified radius).  `out`
/// receives exactly `d` codes.
fn encode_segment(values: &[f32], out: &mut [u8]) -> SegParams {
    debug_assert_eq!(values.len(), out.len());
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if values.is_empty() || !(lo.is_finite() && hi.is_finite()) {
        // Degenerate input: encode as constant zero.  (Non-finite values
        // cannot occur through the normalised public entry points.)
        out.fill(0);
        return SegParams { min: 0.0, step: 0.0, eps: eps_for(0.0, values.len()) };
    }
    let step = (hi - lo) / 255.0;
    if step <= 0.0 {
        // Constant segment: every value equals `lo`, decoded exactly.
        out.fill(0);
        return SegParams { min: lo, step: 0.0, eps: eps_for(0.0, values.len()) };
    }
    let inv = 1.0 / step;
    for (o, &v) in out.iter_mut().zip(values) {
        let code = ((v - lo) * inv).round();
        *o = code.clamp(0.0, 255.0) as u8;
    }
    SegParams { min: lo, step, eps: eps_for(step, values.len()) }
}

/// The certified per-segment reconstruction radius: half a step per
/// component, `sqrt(d)` components worst case, widened by a relative and
/// an absolute float-rounding margin so the never-under-prune guarantee
/// holds under f32 accumulation-order differences.
fn eps_for(step: f32, d: usize) -> f32 {
    0.5 * step * (d as f32).sqrt() * (1.0 + 1e-4) + 1e-6
}

/// SQ8 scalar-quantized row storage mirroring a [`FusedRows`] layout:
/// same dims, same [`FUSED_LANE`]-aligned stride, one `u8` code per
/// component (padding positions zero and never scored), one
/// [`SegParams`] per (row, modality), and the f32 squared segment norms
/// of the *original* rows for the exact side of the Eq. 8 norm term.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRows {
    /// Unpadded per-modality dimensionalities.
    dims: Vec<usize>,
    /// Padded segment starts within a row; `seg[m]` is the row stride.
    seg: Vec<usize>,
    /// Number of rows (objects).
    len: usize,
    /// `len * stride` codes, row-major, padding positions zero.
    codes: CodeStore,
    /// `len * m` affine parameters, row-major.
    params: Vec<SegParams>,
    /// `len * m` squared segment norms of the original f32 rows
    /// (`||o_k||^2`, not the decoded approximation) — the candidate half
    /// of the Eq. 8 norm term must stay exact for the bound proof.
    seg_norms: Vec<f32>,
}

impl QuantizedRows {
    /// Quantizes every row of an f32 engine.  The segment layout (and the
    /// exact segment norms) carry over unchanged.
    #[must_use]
    pub fn from_fused(rows: &FusedRows) -> Self {
        let dims = rows.dims().to_vec();
        let m = dims.len();
        let stride = rows.stride();
        let n = rows.len();
        let mut codes = vec![0u8; n * stride];
        let mut params = Vec::with_capacity(n * m);
        for id in 0..n {
            let base = id * stride;
            for (k, &d) in dims.iter().enumerate() {
                let (start, _) = rows.segment_bounds(k);
                let values = rows.modality_slice(id as ObjectId, k);
                let out = &mut codes[base + start..base + start + d];
                params.push(encode_segment(values, out));
            }
        }
        let seg = Self::layout(&dims);
        Self {
            dims,
            seg,
            len: n,
            codes: CodeStore::owned(codes),
            params,
            seg_norms: rows.seg_norms().to_vec(),
        }
    }

    fn layout(dims: &[usize]) -> Vec<usize> {
        let mut seg = Vec::with_capacity(dims.len() + 1);
        let mut off = 0;
        seg.push(0);
        for &d in dims {
            off += d.div_ceil(FUSED_LANE) * FUSED_LANE;
            seg.push(off);
        }
        seg
    }

    /// Reassembles a quantized engine from persisted parts (the bundle-v7
    /// load path; `codes` may borrow from the shared read buffer).
    ///
    /// # Errors
    /// [`VectorError::DimensionMismatch`] for empty/zero dims or a code
    /// buffer that is not a whole number of rows;
    /// [`VectorError::CardinalityMismatch`] when `params` or `seg_norms`
    /// do not hold exactly one entry per (row, modality) pair.
    pub fn from_parts(
        dims: Vec<usize>,
        codes: CodeStore,
        params: Vec<SegParams>,
        seg_norms: Vec<f32>,
    ) -> Result<Self, VectorError> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(VectorError::DimensionMismatch { expected: 1, got: 0 });
        }
        let seg = Self::layout(&dims);
        let stride = seg[dims.len()];
        if !codes.len().is_multiple_of(stride) {
            return Err(VectorError::DimensionMismatch {
                expected: stride,
                got: codes.len() % stride,
            });
        }
        let len = codes.len() / stride;
        if params.len() != len * dims.len() {
            return Err(VectorError::CardinalityMismatch {
                expected: len * dims.len(),
                got: params.len(),
            });
        }
        if seg_norms.len() != len * dims.len() {
            return Err(VectorError::CardinalityMismatch {
                expected: len * dims.len(),
                got: seg_norms.len(),
            });
        }
        Ok(Self { dims, seg, len, codes, params, seg_norms })
    }

    /// Number of modalities `m`.
    #[inline]
    #[must_use]
    pub fn num_modalities(&self) -> usize {
        self.dims.len()
    }

    /// Unpadded per-modality dimensionalities.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row stride in code bytes (identical to the f32 engine's stride in
    /// floats).
    #[inline]
    #[must_use]
    pub fn stride(&self) -> usize {
        self.seg[self.dims.len()]
    }

    /// Number of rows (objects).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine holds no rows.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the codes still borrow from a shared load buffer.
    #[inline]
    #[must_use]
    pub fn is_shared(&self) -> bool {
        self.codes.is_shared()
    }

    /// The full code matrix, row-major (`len * stride` bytes) — the
    /// bundle save path.
    #[inline]
    #[must_use]
    pub fn raw_codes(&self) -> &[u8] {
        self.codes.as_slice()
    }

    /// All affine parameters, row-major (`len * m` entries) — the bundle
    /// save path.
    #[inline]
    #[must_use]
    pub fn params(&self) -> &[SegParams] {
        &self.params
    }

    /// All squared segment norms, row-major (`len * m` entries).
    #[inline]
    #[must_use]
    pub fn seg_norms(&self) -> &[f32] {
        &self.seg_norms
    }

    /// The affine parameters of modality `k` in row `id`.
    #[inline]
    #[must_use]
    pub fn seg_params(&self, id: ObjectId, k: usize) -> SegParams {
        self.params[id as usize * self.dims.len() + k]
    }

    /// The squared f32 norm `||o_k||^2` of modality `k`'s original
    /// segment in row `id`.
    #[inline]
    #[must_use]
    pub fn seg_norm(&self, id: ObjectId, k: usize) -> f32 {
        self.seg_norms[id as usize * self.dims.len() + k]
    }

    /// The `u8` codes of modality `k`'s real components in row `id`
    /// (length `dims[k]`; padding positions excluded).
    #[inline]
    #[must_use]
    pub fn modality_codes(&self, id: ObjectId, k: usize) -> &[u8] {
        let start = id as usize * self.stride() + self.seg[k];
        &self.codes.as_slice()[start..start + self.dims[k]]
    }

    /// Decodes modality `k` of row `id` back to f32 (test/diagnostic
    /// path; the hot path scores codes directly).
    #[must_use]
    pub fn decode_modality(&self, id: ObjectId, k: usize) -> Vec<f32> {
        let p = self.seg_params(id, k);
        self.modality_codes(id, k)
            .iter()
            .map(|&c| p.min + p.step * f32::from(c))
            .collect()
    }

    /// Appends one object from its per-modality (already normalised)
    /// vectors, quantizing each segment.  Promotes shared codes to owned
    /// on first call (copy-on-write).
    ///
    /// # Errors
    /// [`VectorError::CardinalityMismatch`] on wrong modality count,
    /// [`VectorError::DimensionMismatch`] on wrong slot length; the
    /// engine is untouched on error.
    pub fn push_row<S: AsRef<[f32]>>(&mut self, rows: &[S]) -> Result<ObjectId, VectorError> {
        if rows.len() != self.num_modalities() {
            return Err(VectorError::CardinalityMismatch {
                expected: self.num_modalities(),
                got: rows.len(),
            });
        }
        for (k, r) in rows.iter().enumerate() {
            if r.as_ref().len() != self.dims[k] {
                return Err(VectorError::DimensionMismatch {
                    expected: self.dims[k],
                    got: r.as_ref().len(),
                });
            }
        }
        let id = self.len as ObjectId;
        let stride = self.stride();
        let seg = self.seg.clone();
        let codes = self.codes.make_mut();
        codes.resize((self.len + 1) * stride, 0);
        let row = &mut codes[self.len * stride..];
        for (k, r) in rows.iter().enumerate() {
            let r = r.as_ref();
            let out = &mut row[seg[k]..seg[k] + r.len()];
            self.params.push(encode_segment(r, out));
            self.seg_norms.push(kernels::ip(r, r));
        }
        self.len += 1;
        Ok(id)
    }

    /// Heap footprint in bytes: codes plus per-row affine parameters and
    /// segment norms.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.codes.len()
            + self.params.len() * std::mem::size_of::<SegParams>()
            + self.seg_norms.len() * std::mem::size_of::<f32>()
    }

    /// Prepares a per-query evaluator under `weights`, mirroring
    /// [`FusedRows::query`]: weights scale the query side only, codes
    /// stay weight-free, and every query may carry its own weights.
    ///
    /// # Errors
    /// As [`FusedRows::query`]: weight-arity, slot-arity, and dimension
    /// mismatches.
    pub fn query(
        &self,
        query: &MultiQuery,
        weights: &Weights,
    ) -> Result<QuantizedQueryEvaluator<'_>, VectorError> {
        QuantizedQueryEvaluator::new(self, query, weights)
    }
}

/// One active (supplied, positive-weight) modality of a quantized query,
/// in Lemma-4 prefix order.
#[derive(Debug, Clone, Copy)]
struct ActiveSegment {
    /// Modality index (for the per-row parameter/norm lookups).
    k: usize,
    /// Padded segment start within a row.
    start: usize,
    /// Number of real components (`dims[k]`; the quantized kernels never
    /// touch padding, whose codes would decode to `min`, not 0).
    dim: usize,
    /// `omega_k^2`.
    wsq: f32,
    /// `0.5 * omega_k^2`.
    half_wsq: f32,
}

/// Per-query evaluator over a [`QuantizedRows`] engine: the approximate
/// (decoded) joint similarity for pool ranking, and the widened Lemma-4
/// walk whose prefix bound provably dominates the exact f32 bound — see
/// the module docs for the derivation.
#[derive(Debug)]
pub struct QuantizedQueryEvaluator<'a> {
    rows: &'a QuantizedRows,
    /// The raw (unscaled) query laid out in fused-row geometry; the
    /// per-segment `omega_k^2` lives in `active`, matching the f32
    /// evaluator's query-side weighting.
    qraw: Vec<f32>,
    /// Active modalities in modality order — the Lemma-4 prefix order.
    active: Vec<ActiveSegment>,
    /// `sum of active omega_k^2`.
    w_total: f32,
    /// `sum_k 0.5 * omega_k^2 * ||q_k||^2` — the query half of the Eq. 8
    /// norm term.
    q_half_norm: f32,
    kernel_evals: std::cell::Cell<u64>,
}

impl<'a> QuantizedQueryEvaluator<'a> {
    fn new(
        rows: &'a QuantizedRows,
        query: &MultiQuery,
        weights: &Weights,
    ) -> Result<Self, VectorError> {
        if query.num_slots() != rows.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: rows.num_modalities(),
                weights: query.num_slots(),
            });
        }
        if weights.modalities() != rows.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: rows.num_modalities(),
                weights: weights.modalities(),
            });
        }
        let mut qraw = vec![0.0f32; rows.stride()];
        let mut active = Vec::with_capacity(rows.num_modalities());
        let mut w_total = 0.0;
        let mut q_half_norm = 0.0;
        for k in 0..rows.num_modalities() {
            let Some(slot) = query.slot(k) else { continue };
            if slot.len() != rows.dims()[k] {
                return Err(VectorError::DimensionMismatch {
                    expected: rows.dims()[k],
                    got: slot.len(),
                });
            }
            let wsq = weights.sq(k);
            if wsq <= 0.0 {
                continue;
            }
            let start = rows.seg[k];
            qraw[start..start + slot.len()].copy_from_slice(slot);
            active.push(ActiveSegment { k, start, dim: slot.len(), wsq, half_wsq: 0.5 * wsq });
            w_total += wsq;
            q_half_norm += 0.5 * wsq * kernels::ip(slot, slot);
        }
        Ok(Self {
            rows,
            qraw,
            active,
            w_total,
            q_half_norm,
            kernel_evals: std::cell::Cell::new(0),
        })
    }

    /// Number of modality kernels evaluated so far.
    #[inline]
    pub fn kernel_evals(&self) -> u64 {
        self.kernel_evals.get()
    }

    /// Sum of active squared weights.
    #[inline]
    pub fn w_total(&self) -> f32 {
        self.w_total
    }

    #[inline]
    fn bump(&self, by: u64) {
        self.kernel_evals.set(self.kernel_evals.get() + by);
    }

    /// Approximate joint similarity of object `id` to the query:
    /// `sum_k omega_k^2 * <q_k, o_hat_k>` over the decoded codes.  Used
    /// for pool ranking; exact answers come from re-ranking on the f32
    /// rows.
    pub fn ip(&self, id: ObjectId) -> f32 {
        self.bump(self.active.len() as u64);
        let codes = self.rows.raw_codes();
        let base = id as usize * self.rows.stride();
        let mut sum = 0.0;
        for seg in &self.active {
            let p = self.rows.seg_params(id, seg.k);
            let (_, dot) = seg_quant_stats(
                &self.qraw[seg.start..seg.start + seg.dim],
                &codes[base + seg.start..base + seg.start + seg.dim],
                p.min,
                p.step,
            );
            sum += seg.wsq * dot;
        }
        sum
    }

    /// The widened Lemma-4 walk: starts from the exact norm term (query
    /// half precomputed, candidate half from the stored **f32** segment
    /// norms) and shrinks the bound by
    /// `0.5 omega_k^2 * max(0, ||q_k - o_hat_k|| - eps_rk)^2` per
    /// segment.  By the triangle inequality this never subtracts more
    /// than the exact walk would, so [`PartialIpVerdict::Pruned`] implies
    /// the exact f32 walk would also have pruned at `threshold`.  The
    /// surviving value is the *approximate* decoded similarity (for pool
    /// ranking), not the widened bound.
    pub fn ip_pruned(&self, id: ObjectId, threshold: f32) -> PartialIpVerdict {
        let codes = self.rows.raw_codes();
        let base = id as usize * self.rows.stride();
        let mut bound = self.q_half_norm;
        for seg in &self.active {
            bound += seg.half_wsq * self.rows.seg_norm(id, seg.k);
        }
        let last = self.active.len().saturating_sub(1);
        let mut approx = 0.0;
        for (scanned, seg) in self.active.iter().enumerate() {
            let p = self.rows.seg_params(id, seg.k);
            let (d2, dot) = seg_quant_stats(
                &self.qraw[seg.start..seg.start + seg.dim],
                &codes[base + seg.start..base + seg.start + seg.dim],
                p.min,
                p.step,
            );
            self.bump(1);
            let widened = (d2.max(0.0).sqrt() - p.eps).max(0.0);
            bound -= seg.half_wsq * widened * widened;
            approx += seg.wsq * dot;
            if bound <= threshold && scanned < last {
                return PartialIpVerdict::Pruned;
            }
        }
        if bound <= threshold {
            // All segments scanned and even the widened bound clears
            // nothing: the exact walk would have discarded it too.
            return PartialIpVerdict::Pruned;
        }
        PartialIpVerdict::Exact(approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MultiVectorSet, VectorSetBuilder};

    fn engine() -> FusedRows {
        let mut m0 = VectorSetBuilder::new(5, 4);
        m0.push_normalized(&[1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        m0.push_normalized(&[0.0, 1.0, 0.0, 0.0, 1.0]).unwrap();
        m0.push_normalized(&[0.2, 0.4, 0.1, 0.7, 0.3]).unwrap();
        m0.push_normalized(&[-0.5, 0.1, 0.6, -0.2, 0.4]).unwrap();
        let mut m1 = VectorSetBuilder::new(3, 4);
        m1.push_normalized(&[1.0, 0.0, 0.0]).unwrap();
        m1.push_normalized(&[0.0, 1.0, 1.0]).unwrap();
        m1.push_normalized(&[0.5, 0.5, 0.5]).unwrap();
        m1.push_normalized(&[0.3, -0.8, 0.5]).unwrap();
        FusedRows::from_sets(&[m0.finish(), m1.finish()]).unwrap()
    }

    #[test]
    fn layout_mirrors_the_f32_engine() {
        let rows = engine();
        let q = QuantizedRows::from_fused(&rows);
        assert_eq!(q.dims(), rows.dims());
        assert_eq!(q.stride(), rows.stride());
        assert_eq!(q.len(), rows.len());
        assert_eq!(q.raw_codes().len(), rows.len() * rows.stride());
        assert_eq!(q.params().len(), rows.len() * rows.num_modalities());
        assert!(!q.is_shared());
    }

    #[test]
    fn decode_error_is_at_most_half_a_step() {
        let rows = engine();
        let q = QuantizedRows::from_fused(&rows);
        for id in 0..rows.len() as ObjectId {
            for k in 0..rows.num_modalities() {
                let p = q.seg_params(id, k);
                let decoded = q.decode_modality(id, k);
                for (d, &orig) in decoded.iter().zip(rows.modality_slice(id, k)) {
                    assert!(
                        (d - orig).abs() <= 0.5 * p.step + 1e-6,
                        "id {id} k {k}: |{d} - {orig}| > step/2 = {}",
                        0.5 * p.step
                    );
                }
            }
        }
    }

    #[test]
    fn constant_segments_decode_exactly() {
        // A constant (and a zero) segment: step must be 0 and decoding
        // exact.
        let mut m0 = VectorSetBuilder::new(4, 2);
        m0.push_normalized(&[0.5, 0.5, 0.5, 0.5]).unwrap();
        m0.push_normalized(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        let rows = FusedRows::from_sets(&[m0.finish()]).unwrap();
        let q = QuantizedRows::from_fused(&rows);
        let p = q.seg_params(0, 0);
        assert_eq!(p.step, 0.0);
        assert_eq!(q.decode_modality(0, 0), rows.modality_slice(0, 0));
    }

    #[test]
    fn approximate_ip_tracks_the_exact_ip() {
        let rows = engine();
        let q = QuantizedRows::from_fused(&rows);
        let w = Weights::new(vec![0.8, 0.5]).unwrap();
        let query = MultiQuery::full(vec![
            rows.modality_slice(1, 0).to_vec(),
            rows.modality_slice(2, 1).to_vec(),
        ]);
        let qe = q.query(&query, &w).unwrap();
        let fe = rows.query(&query, &w).unwrap();
        for id in 0..rows.len() as ObjectId {
            let approx = qe.ip(id);
            let exact = fe.ip(id);
            // 8-bit codes over unit-norm segments: plenty for 1e-2.
            assert!((approx - exact).abs() < 1e-2, "id {id}: {approx} vs {exact}");
        }
        assert!((qe.w_total() - fe.w_total()).abs() < 1e-6);
    }

    #[test]
    fn widened_bound_never_under_prunes() {
        let rows = engine();
        let q = QuantizedRows::from_fused(&rows);
        let w = Weights::new(vec![0.9, 0.3]).unwrap();
        let query = MultiQuery::full(vec![
            rows.modality_slice(0, 0).to_vec(),
            rows.modality_slice(3, 1).to_vec(),
        ]);
        let qe = q.query(&query, &w).unwrap();
        let fe = rows.query(&query, &w).unwrap();
        for id in 0..rows.len() as ObjectId {
            let exact = fe.ip(id);
            for threshold in [-1.0f32, -0.2, 0.0, 0.1, 0.3, 0.6, 0.9] {
                if let PartialIpVerdict::Pruned = qe.ip_pruned(id, threshold) {
                    // Quantized prune implies the exact walk would prune:
                    // in particular the exact similarity clears nothing.
                    assert!(
                        exact <= threshold + 1e-5,
                        "id {id} pruned at {threshold} but exact = {exact}"
                    );
                }
            }
            // At -inf nothing prunes and the survivor is the decoded
            // approximation.
            match qe.ip_pruned(id, f32::NEG_INFINITY) {
                PartialIpVerdict::Exact(v) => assert!((v - qe.ip(id)).abs() < 1e-6),
                PartialIpVerdict::Pruned => panic!("must not prune at -inf"),
            }
        }
    }

    #[test]
    fn weights_scale_the_query_side_only() {
        // Same codes, two weight configurations: the decoded similarity
        // must track each configuration's exact value.
        let rows = engine();
        let q = QuantizedRows::from_fused(&rows);
        let query = MultiQuery::full(vec![
            rows.modality_slice(2, 0).to_vec(),
            rows.modality_slice(2, 1).to_vec(),
        ]);
        for w in [
            Weights::uniform(2),
            Weights::from_squared(vec![0.9, 0.1]).unwrap(),
            Weights::from_squared(vec![0.1, 0.9]).unwrap(),
        ] {
            let qe = q.query(&query, &w).unwrap();
            let fe = rows.query(&query, &w).unwrap();
            for id in 0..rows.len() as ObjectId {
                assert!((qe.ip(id) - fe.ip(id)).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn partial_queries_and_zero_weights_deactivate_segments() {
        let rows = engine();
        let q = QuantizedRows::from_fused(&rows);
        let query = MultiQuery::partial(vec![Some(rows.modality_slice(0, 0).to_vec()), None]);
        let qe = q.query(&query, &Weights::uniform(2)).unwrap();
        assert!((qe.w_total() - 0.5).abs() < 1e-6);
        let before = qe.kernel_evals();
        let _ = qe.ip_pruned(0, f32::NEG_INFINITY);
        assert_eq!(qe.kernel_evals() - before, 1, "one active segment, one kernel");
        // Zero-weight modality likewise deactivates.
        let full = MultiQuery::full(vec![
            rows.modality_slice(0, 0).to_vec(),
            rows.modality_slice(0, 1).to_vec(),
        ]);
        let qz = q.query(&full, &Weights::new(vec![0.7, 0.0]).unwrap()).unwrap();
        assert!((qz.w_total() - 0.49).abs() < 1e-5);
    }

    #[test]
    fn arity_and_dimension_mismatches_are_rejected() {
        let q = QuantizedRows::from_fused(&engine());
        let query = MultiQuery::full(vec![vec![1.0; 5], vec![1.0; 3]]);
        assert!(matches!(
            q.query(&query, &Weights::uniform(3)),
            Err(VectorError::WeightArity { .. })
        ));
        let bad = MultiQuery::full(vec![vec![1.0; 4], vec![1.0; 3]]);
        assert!(matches!(
            q.query(&bad, &Weights::uniform(2)),
            Err(VectorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn push_row_quantizes_and_promotes_shared_codes() {
        let rows = engine();
        let owned = QuantizedRows::from_fused(&rows);
        // Rebuild as a shared (zero-copy) store.
        let buf = Arc::new(owned.raw_codes().to_vec());
        let store = CodeStore::shared(Arc::clone(&buf), 0, buf.len()).unwrap();
        let mut q = QuantizedRows::from_parts(
            owned.dims().to_vec(),
            store,
            owned.params().to_vec(),
            owned.seg_norms().to_vec(),
        )
        .unwrap();
        assert_eq!(q, owned);
        assert!(q.is_shared());
        let new0 = {
            let mut v = vec![0.1f32, -0.4, 0.2, 0.8, 0.3];
            let _ = kernels::normalize(&mut v);
            v
        };
        let new1 = {
            let mut v = vec![0.6f32, 0.0, 0.8];
            let _ = kernels::normalize(&mut v);
            v
        };
        let id = q.push_row(&[new0.clone(), new1.clone()]).unwrap();
        assert_eq!(id, 4);
        assert!(!q.is_shared(), "first write promotes to owned");
        assert_eq!(q.len(), 5);
        let p = q.seg_params(4, 0);
        for (d, orig) in q.decode_modality(4, 0).iter().zip(&new0) {
            assert!((d - orig).abs() <= 0.5 * p.step + 1e-6);
        }
        // Errors leave the engine untouched.
        assert!(q.push_row(&[vec![1.0f32; 5]]).is_err());
        assert!(q.push_row(&[vec![1.0f32; 4], vec![1.0f32; 3]]).is_err());
        assert_eq!(q.len(), 5);
        // The shared buffer itself was never mutated.
        assert_eq!(&buf[..], owned.raw_codes());
    }

    #[test]
    fn from_parts_validates_shapes() {
        let q = QuantizedRows::from_fused(&engine());
        assert!(matches!(
            QuantizedRows::from_parts(
                vec![],
                CodeStore::owned(vec![]),
                vec![],
                vec![],
            ),
            Err(VectorError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            QuantizedRows::from_parts(
                q.dims().to_vec(),
                CodeStore::owned(vec![0u8; q.stride() + 1]),
                vec![],
                vec![],
            ),
            Err(VectorError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            QuantizedRows::from_parts(
                q.dims().to_vec(),
                CodeStore::owned(q.raw_codes().to_vec()),
                q.params()[..3].to_vec(),
                q.seg_norms().to_vec(),
            ),
            Err(VectorError::CardinalityMismatch { .. })
        ));
        assert!(matches!(
            QuantizedRows::from_parts(
                q.dims().to_vec(),
                CodeStore::owned(q.raw_codes().to_vec()),
                q.params().to_vec(),
                vec![1.0; 3],
            ),
            Err(VectorError::CardinalityMismatch { .. })
        ));
        // Out-of-range shared windows are rejected at construction.
        let buf = Arc::new(vec![0u8; 8]);
        assert!(CodeStore::shared(Arc::clone(&buf), 4, 8).is_err());
        assert!(CodeStore::shared(buf, usize::MAX, 2).is_err());
    }

    #[test]
    fn bytes_counts_codes_and_per_row_constants() {
        let q = QuantizedRows::from_fused(&engine());
        let expect = q.raw_codes().len()
            + std::mem::size_of_val(q.params())
            + q.seg_norms().len() * 4;
        assert_eq!(q.bytes(), expect);
    }

    #[test]
    fn multi_vector_set_round_trips_through_quantization() {
        let set = MultiVectorSet::new(vec![
            {
                let mut b = VectorSetBuilder::new(6, 2);
                b.push_normalized(&[1.0, 2.0, -1.0, 0.5, 0.0, 0.25]).unwrap();
                b.push_normalized(&[0.0, 0.0, 1.0, 0.0, 0.0, 0.0]).unwrap();
                b.finish()
            },
        ])
        .unwrap();
        let q = set.fused().quantize();
        for id in 0..2u32 {
            let p = q.seg_params(id, 0);
            for (d, &orig) in q.decode_modality(id, 0).iter().zip(set.fused().modality_slice(id, 0))
            {
                assert!((d - orig).abs() <= 0.5 * p.step + 1e-6);
            }
        }
    }
}
