//! Per-modality vector weights (Section VI of the paper).

use serde::{Deserialize, Serialize};

use crate::VectorError;

/// The per-modality weight vector `omega = (omega_0 .. omega_{m-1})`.
///
/// Lemma 1 of the paper shows the joint similarity of a pair of objects is
/// `sum_i omega_i^2 * IP_i`, so hot paths consume the *squared* weights; this
/// type caches them.  Weights come from two sources (Fig. 4(g)):
/// learned weights produced by the vector-weight-learning model, or
/// user-defined weights supplied directly.
///
/// Weights are non-negative.  Queries with fewer modalities than objects
/// (`t < m`) are handled by zeroing the trailing weights
/// ([`Weights::masked`], Section VII-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    omega: Vec<f32>,
    omega_sq: Vec<f32>,
}

impl Weights {
    /// Builds weights from raw `omega` values.
    ///
    /// # Errors
    /// Returns [`VectorError::NotNormalisable`] if any weight is negative or
    /// non-finite.
    pub fn new(omega: Vec<f32>) -> Result<Self, VectorError> {
        if omega.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(VectorError::NotNormalisable);
        }
        let omega_sq = omega.iter().map(|w| w * w).collect();
        Ok(Self { omega, omega_sq })
    }

    /// Uniform weights `omega_i = sqrt(1/m)` so that the squared weights sum
    /// to one — the natural "no preference" configuration
    /// (`omega_0^2 = omega_1^2 = 0.5` for two modalities, as in Tab. IX).
    #[must_use]
    pub fn uniform(m: usize) -> Self {
        assert!(m > 0, "at least one modality required");
        let w = (1.0 / m as f32).sqrt();
        Self::new(vec![w; m]).expect("uniform weights are valid")
    }

    /// Builds weights from a borrowed slice of raw `omega` values — the
    /// ergonomic entry point for user-supplied weight overrides
    /// (`search_weighted` callers usually hold a slice, not a `Vec`).
    ///
    /// # Errors
    /// Returns [`VectorError::NotNormalisable`] if any weight is negative or
    /// non-finite:
    ///
    /// ```
    /// use must_vector::Weights;
    ///
    /// let w = Weights::try_from_slice(&[0.8, 0.6]).unwrap();
    /// assert!((w.sq(0) - 0.64).abs() < 1e-6);
    /// assert!(Weights::try_from_slice(&[0.5, -1.0]).is_err());
    /// ```
    pub fn try_from_slice(omega: &[f32]) -> Result<Self, crate::VectorError> {
        Self::new(omega.to_vec())
    }

    /// Linear interpolation between two weight configurations in *squared*
    /// space: `omega_i^2 = (1 - t) * a_i^2 + t * b_i^2`, with `t` clamped
    /// to `[0, 1]`.  Interpolating the squared weights keeps the blend
    /// linear in the joint similarity itself (Lemma 1 is linear in
    /// `omega^2`), which makes smooth user-weight transitions — e.g. a
    /// preference slider served via `search_weighted` — behave
    /// predictably.
    ///
    /// # Errors
    /// Returns [`VectorError::WeightArity`] when `a` and `b` cover a
    /// different number of modalities:
    ///
    /// ```
    /// use must_vector::Weights;
    ///
    /// let a = Weights::from_squared(vec![1.0, 0.0]).unwrap();
    /// let b = Weights::from_squared(vec![0.0, 1.0]).unwrap();
    /// let mid = Weights::blend(&a, &b, 0.5).unwrap();
    /// assert!((mid.sq(0) - 0.5).abs() < 1e-6);
    /// assert!((mid.sq(1) - 0.5).abs() < 1e-6);
    /// // Endpoints reproduce the inputs; t is clamped.
    /// assert_eq!(Weights::blend(&a, &b, -3.0).unwrap(), a);
    /// assert_eq!(Weights::blend(&a, &b, 7.0).unwrap(), b);
    /// assert!(Weights::blend(&a, &Weights::uniform(3), 0.5).is_err());
    /// ```
    pub fn blend(a: &Weights, b: &Weights, t: f32) -> Result<Self, crate::VectorError> {
        if a.modalities() != b.modalities() {
            return Err(crate::VectorError::WeightArity {
                modalities: a.modalities(),
                weights: b.modalities(),
            });
        }
        let t = if t.is_finite() { t.clamp(0.0, 1.0) } else { 0.0 };
        Self::from_squared(
            a.omega_sq
                .iter()
                .zip(&b.omega_sq)
                .map(|(x, y)| (1.0 - t) * x + t * y)
                .collect(),
        )
    }

    /// Builds weights directly from *squared* values (the form the paper
    /// reports in Tabs. IX and XIII–XVIII).
    ///
    /// # Errors
    /// Returns [`VectorError::NotNormalisable`] if any squared weight is
    /// negative or non-finite.
    pub fn from_squared(omega_sq: Vec<f32>) -> Result<Self, VectorError> {
        if omega_sq.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(VectorError::NotNormalisable);
        }
        let omega = omega_sq.iter().map(|w| w.sqrt()).collect();
        Ok(Self { omega, omega_sq })
    }

    /// Number of modalities covered.
    #[inline]
    #[must_use]
    pub fn modalities(&self) -> usize {
        self.omega.len()
    }

    /// Raw weights `omega_i`.
    #[inline]
    #[must_use]
    pub fn raw(&self) -> &[f32] {
        &self.omega
    }

    /// Squared weights `omega_i^2` (the coefficients of Lemma 1).
    #[inline]
    #[must_use]
    pub fn squared(&self) -> &[f32] {
        &self.omega_sq
    }

    /// Squared weight of modality `i`.
    #[inline]
    #[must_use]
    pub fn sq(&self, i: usize) -> f32 {
        self.omega_sq[i]
    }

    /// The Lemma-1 combiner over arbitrary per-modality terms:
    /// `sum_i omega_i^2 * terms[i]`.  This is how *any* per-modality
    /// summary statistic scales under the active weights — shard routing
    /// uses it to collapse per-modality bounds (centroid inner product
    /// plus residual radius) into one comparable score, applying a
    /// query-time override exactly where the query row itself would.
    ///
    /// Terms beyond the modality count are ignored; missing terms
    /// contribute zero (the masked-query convention of Section VII-B).
    ///
    /// ```
    /// use must_vector::Weights;
    ///
    /// let w = Weights::from_squared(vec![0.8, 0.2]).unwrap();
    /// let score = w.weighted_sum(&[0.5, 1.0]);
    /// assert!((score - (0.8 * 0.5 + 0.2 * 1.0)).abs() < 1e-6);
    /// // A masked modality contributes nothing.
    /// assert!((w.masked(1).weighted_sum(&[0.5, 1.0]) - 0.8 * 0.5).abs() < 1e-6);
    /// ```
    #[must_use]
    pub fn weighted_sum(&self, terms: &[f32]) -> f32 {
        self.omega_sq.iter().zip(terms).map(|(w, t)| w * t).sum()
    }

    /// A copy with all weights from modality `t` onwards set to zero —
    /// how the paper evaluates queries that supply only `t < m` modalities
    /// (Section VII-B: "the concatenated vectors compute the IP by setting
    /// omega_i = 0 for t <= i <= m-1").
    #[must_use]
    pub fn masked(&self, t: usize) -> Self {
        let mut omega = self.omega.clone();
        for w in omega.iter_mut().skip(t) {
            *w = 0.0;
        }
        Self::new(omega).expect("masking preserves validity")
    }

    /// A copy rescaled so the squared weights sum to one.  Pure rescaling
    /// does not change similarity *rankings* (it multiplies every joint
    /// similarity by the same constant), but normalised weights make
    /// configurations comparable across datasets.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let total: f32 = self.omega_sq.iter().sum();
        if total <= f32::EPSILON {
            return self.clone();
        }
        let inv = 1.0 / total;
        Self::from_squared(self.omega_sq.iter().map(|w| w * inv).collect())
            .expect("normalisation preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_weights_track_raw() {
        let w = Weights::new(vec![0.8, 0.33]).unwrap();
        assert!((w.sq(0) - 0.64).abs() < 1e-6);
        assert!((w.sq(1) - 0.1089).abs() < 1e-6);
        assert_eq!(w.modalities(), 2);
    }

    #[test]
    fn from_squared_round_trips() {
        let w = Weights::from_squared(vec![0.5, 0.5]).unwrap();
        assert!((w.raw()[0] - 0.5f32.sqrt()).abs() < 1e-6);
        assert!((w.sq(0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn uniform_squares_sum_to_one() {
        for m in 1..6 {
            let w = Weights::uniform(m);
            let s: f32 = w.squared().iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "m={m}");
        }
    }

    #[test]
    fn negative_weights_rejected() {
        assert!(Weights::new(vec![0.5, -0.1]).is_err());
        assert!(Weights::from_squared(vec![f32::NAN]).is_err());
    }

    #[test]
    fn masked_zeroes_trailing_modalities() {
        let w = Weights::new(vec![0.6, 0.7, 0.8]).unwrap();
        let m = w.masked(1);
        assert!((m.sq(0) - 0.36).abs() < 1e-6);
        assert_eq!(m.sq(1), 0.0);
        assert_eq!(m.sq(2), 0.0);
    }

    #[test]
    fn normalized_sums_to_one_and_preserves_ratio() {
        let w = Weights::from_squared(vec![0.2, 0.6]).unwrap().normalized();
        let s: f32 = w.squared().iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!((w.sq(1) / w.sq(0) - 3.0).abs() < 1e-5);
    }
}
