//! Dense-vector substrate for the MUST framework.
//!
//! MUST ("Multimodal Search of Target Modality", ICDE 2024) represents every
//! multimodal object as *one high-dimensional unit vector per modality* and
//! measures similarity between objects as the weighted sum of per-modality
//! inner products (Lemma 1 of the paper).  This crate provides the
//! building blocks every other crate in the workspace shares:
//!
//! * [`kernels`] — scalar similarity kernels: inner product, squared
//!   Euclidean distance, prefix (partial) distances for early termination,
//!   and L2 normalisation.
//! * [`VectorSet`] — a contiguous, cache-friendly `n x d` matrix of `f32`
//!   vectors with unit-norm enforcement (the per-modality build format).
//! * [`FusedRows`] — the fused-row storage engine: all `m` modalities of
//!   one object in a single contiguous, SIMD-padded, **unscaled** row.
//!   Weights are a query-time parameter: the evaluator bakes `omega^2`
//!   into the fused query row, so the Lemma-1 joint similarity is still
//!   one dot product and the Lemma-4 bound walks raw segments of the same
//!   stored row — and the same engine serves any weight configuration.
//! * [`MultiVectorSet`] — the paper's multi-vector object representation
//!   (Fig. 4(b)): a thin view over a raw [`FusedRows`] engine whose
//!   [`ModalityView`]s keep the old per-modality API.
//! * [`quant`] — the SQ8 scalar-quantized companion engine
//!   ([`QuantizedRows`]): per-row per-segment affine `u8` codes in the same
//!   stride-aligned layout, with certified reconstruction radii so the
//!   Lemma-4 walk on codes uses a provably-never-under-pruning widened
//!   bound.  Codes are weight-free for the same reason stored rows are
//!   unscaled.
//! * [`Weights`] — the per-modality weight vector `omega` learned by the
//!   vector-weight-learning model (Section VI), exposed through its squared
//!   form as required by Lemma 1.
//! * [`joint`] — joint similarity between multi-vector points and the
//!   incremental multi-vector computation with safe early termination
//!   (Lemma 4, Eqs. 8–9).
//!
//! All similarities in this crate follow the paper's convention: vectors are
//! unit-norm and similarity is the inner product (`IP`), to be *maximised*;
//! `IP(a, b) = 1 - 0.5 * ||a - b||^2` (Eq. 8) links it to Euclidean
//! distance.

//!
//! See `docs/ARCHITECTURE.md` at the repository root for the crate DAG
//! and a one-paragraph tour of every crate.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fused;
pub mod joint;
pub mod kernels;
mod multi;
pub mod quant;
mod set;
mod weights;

pub use fused::{FusedQueryEvaluator, FusedRows, FUSED_LANE};
pub use joint::{JointDistance, PartialIpVerdict, QueryEvaluator};
pub use quant::{CodeStore, QuantizedQueryEvaluator, QuantizedRows, SegParams};
pub use multi::{ModalityView, MultiQuery, MultiVectorSet};
pub use set::{VectorSet, VectorSetBuilder};
pub use weights::Weights;

/// Identifier of an object (a row) inside a [`VectorSet`] / [`MultiVectorSet`].
///
/// `u32` keeps hot index structures compact (the paper scales to 16 M
/// objects, well within `u32`).
pub type ObjectId = u32;

/// Error type for vector-set construction and joint-similarity plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorError {
    /// A vector with a length different from the set's dimensionality was supplied.
    DimensionMismatch {
        /// Dimensionality the set expects.
        expected: usize,
        /// Dimensionality that was provided.
        got: usize,
    },
    /// The per-modality sets of a [`MultiVectorSet`] disagree on cardinality.
    CardinalityMismatch {
        /// Cardinality of modality 0.
        expected: usize,
        /// Offending cardinality.
        got: usize,
    },
    /// A zero (or non-finite) vector cannot be normalised.
    NotNormalisable,
    /// Weight vector length does not match the number of modalities.
    WeightArity {
        /// Number of modalities.
        modalities: usize,
        /// Number of weights provided.
        weights: usize,
    },
}

impl std::fmt::Display for VectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            Self::CardinalityMismatch { expected, got } => {
                write!(f, "cardinality mismatch: expected {expected}, got {got}")
            }
            Self::NotNormalisable => write!(f, "zero or non-finite vector cannot be normalised"),
            Self::WeightArity { modalities, weights } => write!(
                f,
                "weight arity mismatch: {modalities} modalities but {weights} weights"
            ),
        }
    }
}

impl std::error::Error for VectorError {}
