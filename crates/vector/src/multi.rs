//! The multi-vector representation of a multimodal object set
//! (Section V / Fig. 4(b) of the paper).
//!
//! Since the fused-row refactor, [`MultiVectorSet`] is a thin view over the
//! [`FusedRows`] storage engine: all modalities of one object live in one
//! contiguous, SIMD-padded row.  The per-modality API survives as
//! [`ModalityView`], a zero-cost strided view that offers the same methods
//! the old per-modality `VectorSet` storage did.

use serde::{Deserialize, DeError, Serialize, Value};

use crate::fused::FusedRows;
use crate::{kernels, ObjectId, VectorError, VectorSet, Weights};

/// `m` modalities over `n` objects, stored fused: row `id` holds the whole
/// multi-vector representation of object `id` contiguously.
///
/// Modality `0` is the *target* modality by the paper's convention; the
/// remaining modalities are auxiliary.  Per-modality dimensionalities may
/// differ (e.g. a 128-d image space next to a 64-d text space).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVectorSet {
    rows: FusedRows,
}

impl MultiVectorSet {
    /// Assembles a multi-vector set from per-modality sets, fusing their
    /// rows into the contiguous layout.
    ///
    /// # Errors
    /// [`VectorError::CardinalityMismatch`] when the sets disagree on the
    /// number of objects.
    pub fn new(modalities: Vec<VectorSet>) -> Result<Self, VectorError> {
        Ok(Self { rows: FusedRows::from_sets(&modalities)? })
    }

    /// Wraps an existing fused engine — the binary-bundle load path, which
    /// reads rows already in fused layout.  Fused storage is always
    /// unscaled (weights are a query-time parameter), so any engine is a
    /// valid corpus.
    #[must_use]
    pub fn from_fused(rows: FusedRows) -> Self {
        Self { rows }
    }

    /// The underlying fused-row storage engine.
    #[inline]
    #[must_use]
    pub fn fused(&self) -> &FusedRows {
        &self.rows
    }

    /// Number of modalities `m`.
    #[inline]
    #[must_use]
    pub fn num_modalities(&self) -> usize {
        self.rows.num_modalities()
    }

    /// Number of objects `n`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the set is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A view of modality `i`'s vectors.
    #[inline]
    #[must_use]
    pub fn modality(&self, i: usize) -> ModalityView<'_> {
        assert!(i < self.num_modalities(), "modality out of range");
        ModalityView { rows: &self.rows, k: i }
    }

    /// Views of all modalities, in order.
    #[must_use]
    pub fn modalities(&self) -> impl ExactSizeIterator<Item = ModalityView<'_>> + '_ {
        (0..self.num_modalities()).map(|k| ModalityView { rows: &self.rows, k })
    }

    /// Per-modality dimensionalities.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        self.rows.dims()
    }

    /// The multi-vector of object `id`: one slice per modality, borrowed
    /// straight out of the fused row (no allocation).
    #[must_use]
    pub fn object(&self, id: ObjectId) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        (0..self.num_modalities()).map(move |k| self.rows.modality_slice(id, k))
    }

    /// Per-modality inner products between objects `a` and `b` (no
    /// allocation; collect if indexed access is needed).
    #[must_use]
    pub fn modality_ips(&self, a: ObjectId, b: ObjectId) -> impl ExactSizeIterator<Item = f32> + '_ {
        (0..self.num_modalities()).map(move |k| self.rows.modality_ip(a, b, k))
    }

    /// Joint similarity between objects `a` and `b` under `weights`
    /// (Lemma 1: the weighted sum of per-modality inner products).  This is
    /// the reference per-modality path; hot paths go through the shared
    /// [`FusedRows`] engine with the weights applied query-side.
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when `weights` does not cover every
    /// modality.
    pub fn joint_ip(&self, a: ObjectId, b: ObjectId, weights: &Weights) -> Result<f32, VectorError> {
        if weights.modalities() != self.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: self.num_modalities(),
                weights: weights.modalities(),
            });
        }
        Ok(self
            .modality_ips(a, b)
            .zip(weights.squared())
            .map(|(ip, w)| w * ip)
            .sum())
    }

    /// Appends one object given its per-modality raw vectors, normalising
    /// each (dynamic insertion, Section IX of the paper).
    ///
    /// # Errors
    /// Propagates dimension/normalisation errors; on error nothing is
    /// appended (validated before mutation).
    pub fn push_object(&mut self, rows: &[Vec<f32>]) -> Result<ObjectId, VectorError> {
        if rows.len() != self.num_modalities() {
            return Err(VectorError::CardinalityMismatch {
                expected: self.num_modalities(),
                got: rows.len(),
            });
        }
        // Validate every row first so a failure cannot leave the set torn.
        let mut normalized = Vec::with_capacity(rows.len());
        for (&dim, row) in self.dims().iter().zip(rows) {
            if row.len() != dim {
                return Err(VectorError::DimensionMismatch { expected: dim, got: row.len() });
            }
            let mut v = row.clone();
            if !kernels::normalize(&mut v) {
                return Err(VectorError::NotNormalisable);
            }
            normalized.push(v);
        }
        self.rows.push_row(&normalized)
    }

    /// Approximate heap footprint of the stored vectors in bytes,
    /// including the SIMD padding lanes of the fused layout
    /// (used by the Fig. 7 index-size accounting).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.rows.bytes()
    }
}

// The on-disk shape predates the fused layout: v1 JSON bundles contain
// `{"modalities": [{"dim": .., "data": [..]}, ..]}`.  Serialisation
// reconstructs per-modality sets (a copy — persistence only), and
// deserialisation fuses them back, so old bundles keep loading bit-exact.
impl Serialize for MultiVectorSet {
    fn to_value(&self) -> Value {
        let sets: Vec<VectorSet> = self
            .modalities()
            .map(|m| {
                let mut flat = Vec::with_capacity(m.len() * m.dim());
                for (_, v) in m.iter() {
                    flat.extend_from_slice(v);
                }
                VectorSet::from_flat(m.dim(), flat).expect("view rows are well-formed")
            })
            .collect();
        Value::Object(vec![("modalities".to_owned(), sets.to_value())])
    }
}

impl Deserialize for MultiVectorSet {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let sets = value
            .get_field("modalities")
            .ok_or_else(|| DeError::new("expected field `modalities`"))?;
        let sets: Vec<VectorSet> = Vec::from_value(sets)?;
        MultiVectorSet::new(sets).map_err(|e| DeError::new(e.to_string()))
    }
}

/// A zero-cost view of one modality inside a [`MultiVectorSet`]: the same
/// per-modality API the pre-fused storage offered, reading strided
/// segments of the fused rows.
#[derive(Debug, Clone, Copy)]
pub struct ModalityView<'a> {
    rows: &'a FusedRows,
    k: usize,
}

impl<'a> ModalityView<'a> {
    /// Dimensionality of every vector in this modality.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.rows.dims()[self.k]
    }

    /// Number of vectors.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the modality holds no vectors.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow vector `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, id: ObjectId) -> &'a [f32] {
        self.rows.modality_slice(id, self.k)
    }

    /// Borrow vector `id`, or `None` when out of bounds.
    #[inline]
    #[must_use]
    pub fn try_get(&self, id: ObjectId) -> Option<&'a [f32]> {
        ((id as usize) < self.rows.len()).then(|| self.get(id))
    }

    /// Inner product between rows `a` and `b` of this modality.
    #[inline]
    #[must_use]
    pub fn ip(&self, a: ObjectId, b: ObjectId) -> f32 {
        self.rows.modality_ip(a, b, self.k)
    }

    /// Inner product between row `a` and an external query vector.
    #[inline]
    #[must_use]
    pub fn ip_to(&self, a: ObjectId, query: &[f32]) -> f32 {
        kernels::ip(self.get(a), query)
    }

    /// Squared Euclidean distance between row `a` and an external query.
    #[inline]
    #[must_use]
    pub fn l2_sq_to(&self, a: ObjectId, query: &[f32]) -> f32 {
        kernels::l2_sq(self.get(a), query)
    }

    /// Iterator over `(id, vector)` pairs.
    #[must_use]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (ObjectId, &'a [f32])> + '_ {
        let rows = self.rows;
        let k = self.k;
        (0..rows.len() as ObjectId).map(move |id| (id, rows.modality_slice(id, k)))
    }

    /// Exact top-`k` ids by inner product to `query`, descending
    /// (brute-force scan; ground truth and the `MUST--` baseline).
    #[must_use]
    pub fn brute_force_top_k(&self, query: &[f32], k: usize) -> Vec<(ObjectId, f32)> {
        crate::set::brute_force_top_k_impl(self.iter(), query, k)
    }

    /// Mean of all vectors (the centroid used by the paper's seed
    /// preprocessing, component 4 of Algorithm 1).
    #[must_use]
    pub fn centroid(&self) -> Vec<f32> {
        crate::set::centroid_impl(self.dim(), self.len(), self.iter())
    }
}

/// A query in multi-vector form: up to `m` vectors (one per supplied query
/// modality), laid out in the same modality order as the object set.
///
/// Slots are `None` for modalities the user did not supply (`t < m`); the
/// paper searches such queries by zeroing the corresponding weights
/// (Section VII-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiQuery {
    vectors: Vec<Option<Vec<f32>>>,
}

impl MultiQuery {
    /// A query supplying every modality.
    pub fn full(vectors: Vec<Vec<f32>>) -> Self {
        Self { vectors: vectors.into_iter().map(Some).collect() }
    }

    /// A query with explicit per-modality slots.
    pub fn partial(vectors: Vec<Option<Vec<f32>>>) -> Self {
        assert!(
            vectors.iter().any(Option::is_some),
            "a query must supply at least one modality"
        );
        Self { vectors }
    }

    /// Number of modality slots (`m`).
    #[inline]
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.vectors.len()
    }

    /// Number of supplied modalities (`t`).
    #[inline]
    #[must_use]
    pub fn supplied(&self) -> usize {
        self.vectors.iter().filter(|v| v.is_some()).count()
    }

    /// The vector for modality `i`, if supplied.
    #[inline]
    #[must_use]
    pub fn slot(&self, i: usize) -> Option<&[f32]> {
        self.vectors.get(i).and_then(|v| v.as_deref())
    }

    /// Replaces the vector of modality `i` (used by MR's composition-vector
    /// optimisation, which swaps `phi_0(q_0)` for `Phi(q_0..q_{t-1})`).
    pub fn set_slot(&mut self, i: usize, v: Vec<f32>) {
        self.vectors[i] = Some(v);
    }

    /// Weight mask for this query: the input weights with unsupplied
    /// modalities zeroed.
    #[must_use]
    pub fn mask_weights(&self, weights: &Weights) -> Weights {
        let mut omega = weights.raw().to_vec();
        for (w, v) in omega.iter_mut().zip(&self.vectors) {
            if v.is_none() {
                *w = 0.0;
            }
        }
        Weights::new(omega).expect("masking preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorSetBuilder;

    fn two_modality_set() -> MultiVectorSet {
        let mut img = VectorSetBuilder::new(4, 2);
        img.push_normalized(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        img.push_normalized(&[0.0, 1.0, 0.0, 0.0]).unwrap();
        let mut txt = VectorSetBuilder::new(2, 2);
        txt.push_normalized(&[1.0, 0.0]).unwrap();
        txt.push_normalized(&[1.0, 1.0]).unwrap();
        MultiVectorSet::new(vec![img.finish(), txt.finish()]).unwrap()
    }

    #[test]
    fn cardinality_mismatch_is_rejected() {
        let mut a = VectorSetBuilder::new(2, 1);
        a.push_normalized(&[1.0, 0.0]).unwrap();
        let b = VectorSetBuilder::new(2, 0).finish();
        assert!(matches!(
            MultiVectorSet::new(vec![a.finish(), b]),
            Err(VectorError::CardinalityMismatch { expected: 1, got: 0 })
        ));
    }

    #[test]
    fn joint_ip_is_weighted_sum_of_modality_ips() {
        let set = two_modality_set();
        let w = Weights::new(vec![0.8, 0.33]).unwrap();
        let ips: Vec<f32> = set.modality_ips(0, 1).collect();
        let want = 0.64 * ips[0] + 0.1089 * ips[1];
        let got = set.joint_ip(0, 1, &w).unwrap();
        assert!((got - want).abs() < 1e-6);
    }

    #[test]
    fn joint_ip_rejects_wrong_weight_arity() {
        let set = two_modality_set();
        let w = Weights::uniform(3);
        assert!(matches!(
            set.joint_ip(0, 1, &w),
            Err(VectorError::WeightArity { modalities: 2, weights: 3 })
        ));
    }

    #[test]
    fn modality_views_read_the_fused_rows() {
        let set = two_modality_set();
        let img = set.modality(0);
        assert_eq!(img.dim(), 4);
        assert_eq!(img.len(), 2);
        assert_eq!(img.get(0), &[1.0, 0.0, 0.0, 0.0]);
        assert!(img.try_get(2).is_none());
        let txt = set.modality(1);
        assert!((txt.ip(0, 0) - 1.0).abs() < 1e-6);
        let top = txt.brute_force_top_k(&[1.0, 0.0], 1);
        assert_eq!(top[0].0, 0);
        assert_eq!(set.object(1).count(), 2);
        assert_eq!(set.dims(), &[4, 2]);
    }

    #[test]
    fn query_masking_zeroes_missing_modalities() {
        let q = MultiQuery::partial(vec![Some(vec![1.0, 0.0, 0.0, 0.0]), None]);
        assert_eq!(q.supplied(), 1);
        let w = q.mask_weights(&Weights::uniform(2));
        assert!(w.sq(0) > 0.0);
        assert_eq!(w.sq(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one modality")]
    fn empty_query_panics() {
        let _ = MultiQuery::partial(vec![None, None]);
    }

    #[test]
    fn bytes_accounts_padded_rows() {
        let set = two_modality_set();
        // dims [4, 2] both pad to 8: stride 16, two objects — plus one
        // stored segment norm per (object, modality).
        assert_eq!(set.bytes(), (2 * 16 + 2 * 2) * 4);
    }

    #[test]
    fn serde_keeps_the_v1_modalities_shape() {
        let set = two_modality_set();
        let json = serde_json::to_string(&set).unwrap();
        assert!(json.contains("\"modalities\""), "v1 field name preserved: {json}");
        let back: MultiVectorSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }
}
