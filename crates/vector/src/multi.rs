//! The multi-vector representation of a multimodal object set
//! (Section V / Fig. 4(b) of the paper).

use serde::{Deserialize, Serialize};

use crate::{ObjectId, VectorError, VectorSet, Weights};

/// `m` parallel [`VectorSet`]s, one per modality, all of the same
/// cardinality: row `id` of every modality together forms the multi-vector
/// representation of object `id`.
///
/// Modality `0` is the *target* modality by the paper's convention; the
/// remaining modalities are auxiliary.  Per-modality dimensionalities may
/// differ (e.g. a 128-d image space next to a 64-d text space).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiVectorSet {
    modalities: Vec<VectorSet>,
}

impl MultiVectorSet {
    /// Assembles a multi-vector set from per-modality sets.
    ///
    /// # Errors
    /// [`VectorError::CardinalityMismatch`] when the sets disagree on the
    /// number of objects.
    pub fn new(modalities: Vec<VectorSet>) -> Result<Self, VectorError> {
        assert!(!modalities.is_empty(), "at least one modality required");
        let n = modalities[0].len();
        for set in &modalities[1..] {
            if set.len() != n {
                return Err(VectorError::CardinalityMismatch { expected: n, got: set.len() });
            }
        }
        Ok(Self { modalities })
    }

    /// Number of modalities `m`.
    #[inline]
    pub fn num_modalities(&self) -> usize {
        self.modalities.len()
    }

    /// Number of objects `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.modalities[0].len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.modalities[0].is_empty()
    }

    /// The [`VectorSet`] of modality `i`.
    #[inline]
    pub fn modality(&self, i: usize) -> &VectorSet {
        &self.modalities[i]
    }

    /// All modality sets.
    #[inline]
    pub fn modalities(&self) -> &[VectorSet] {
        &self.modalities
    }

    /// Per-modality dimensionalities.
    pub fn dims(&self) -> Vec<usize> {
        self.modalities.iter().map(VectorSet::dim).collect()
    }

    /// The multi-vector of object `id`: one slice per modality.
    pub fn object(&self, id: ObjectId) -> Vec<&[f32]> {
        self.modalities.iter().map(|s| s.get(id)).collect()
    }

    /// Per-modality inner products between objects `a` and `b`.
    pub fn modality_ips(&self, a: ObjectId, b: ObjectId) -> Vec<f32> {
        self.modalities.iter().map(|s| s.ip(a, b)).collect()
    }

    /// Joint similarity between objects `a` and `b` under `weights`
    /// (Lemma 1: the weighted sum of per-modality inner products).
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when `weights` does not cover every
    /// modality.
    pub fn joint_ip(&self, a: ObjectId, b: ObjectId, weights: &Weights) -> Result<f32, VectorError> {
        if weights.modalities() != self.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: self.num_modalities(),
                weights: weights.modalities(),
            });
        }
        Ok(self
            .modalities
            .iter()
            .zip(weights.squared())
            .map(|(s, w)| w * s.ip(a, b))
            .sum())
    }

    /// Appends one object given its per-modality raw vectors, normalising
    /// each (dynamic insertion, Section IX of the paper).
    ///
    /// # Errors
    /// Propagates dimension/normalisation errors; on error nothing is
    /// appended (validated before mutation).
    pub fn push_object(&mut self, rows: &[Vec<f32>]) -> Result<ObjectId, VectorError> {
        if rows.len() != self.num_modalities() {
            return Err(VectorError::CardinalityMismatch {
                expected: self.num_modalities(),
                got: rows.len(),
            });
        }
        // Validate every row first so a failure cannot leave the set torn.
        let mut normalized = Vec::with_capacity(rows.len());
        for (set, row) in self.modalities.iter().zip(rows) {
            if row.len() != set.dim() {
                return Err(VectorError::DimensionMismatch { expected: set.dim(), got: row.len() });
            }
            let mut v = row.clone();
            if !crate::kernels::normalize(&mut v) {
                return Err(VectorError::NotNormalisable);
            }
            normalized.push(v);
        }
        let id = self.len() as ObjectId;
        for (set, v) in self.modalities.iter_mut().zip(&normalized) {
            set.push(v).expect("validated above");
        }
        Ok(id)
    }

    /// Approximate heap footprint of the stored vectors in bytes
    /// (used by the Fig. 7 index-size accounting).
    pub fn bytes(&self) -> usize {
        self.modalities
            .iter()
            .map(|s| s.len() * s.dim() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// A query in multi-vector form: up to `m` vectors (one per supplied query
/// modality), laid out in the same modality order as the object set.
///
/// Slots are `None` for modalities the user did not supply (`t < m`); the
/// paper searches such queries by zeroing the corresponding weights
/// (Section VII-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiQuery {
    vectors: Vec<Option<Vec<f32>>>,
}

impl MultiQuery {
    /// A query supplying every modality.
    pub fn full(vectors: Vec<Vec<f32>>) -> Self {
        Self { vectors: vectors.into_iter().map(Some).collect() }
    }

    /// A query with explicit per-modality slots.
    pub fn partial(vectors: Vec<Option<Vec<f32>>>) -> Self {
        assert!(
            vectors.iter().any(Option::is_some),
            "a query must supply at least one modality"
        );
        Self { vectors }
    }

    /// Number of modality slots (`m`).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.vectors.len()
    }

    /// Number of supplied modalities (`t`).
    #[inline]
    pub fn supplied(&self) -> usize {
        self.vectors.iter().filter(|v| v.is_some()).count()
    }

    /// The vector for modality `i`, if supplied.
    #[inline]
    pub fn slot(&self, i: usize) -> Option<&[f32]> {
        self.vectors.get(i).and_then(|v| v.as_deref())
    }

    /// Replaces the vector of modality `i` (used by MR's composition-vector
    /// optimisation, which swaps `phi_0(q_0)` for `Phi(q_0..q_{t-1})`).
    pub fn set_slot(&mut self, i: usize, v: Vec<f32>) {
        self.vectors[i] = Some(v);
    }

    /// Weight mask for this query: the input weights with unsupplied
    /// modalities zeroed.
    pub fn mask_weights(&self, weights: &Weights) -> Weights {
        let mut omega = weights.raw().to_vec();
        for (w, v) in omega.iter_mut().zip(&self.vectors) {
            if v.is_none() {
                *w = 0.0;
            }
        }
        Weights::new(omega).expect("masking preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorSetBuilder;

    fn two_modality_set() -> MultiVectorSet {
        let mut img = VectorSetBuilder::new(4, 2);
        img.push_normalized(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        img.push_normalized(&[0.0, 1.0, 0.0, 0.0]).unwrap();
        let mut txt = VectorSetBuilder::new(2, 2);
        txt.push_normalized(&[1.0, 0.0]).unwrap();
        txt.push_normalized(&[1.0, 1.0]).unwrap();
        MultiVectorSet::new(vec![img.finish(), txt.finish()]).unwrap()
    }

    #[test]
    fn cardinality_mismatch_is_rejected() {
        let mut a = VectorSetBuilder::new(2, 1);
        a.push_normalized(&[1.0, 0.0]).unwrap();
        let b = VectorSetBuilder::new(2, 0).finish();
        assert!(matches!(
            MultiVectorSet::new(vec![a.finish(), b]),
            Err(VectorError::CardinalityMismatch { expected: 1, got: 0 })
        ));
    }

    #[test]
    fn joint_ip_is_weighted_sum_of_modality_ips() {
        let set = two_modality_set();
        let w = Weights::new(vec![0.8, 0.33]).unwrap();
        let ips = set.modality_ips(0, 1);
        let want = 0.64 * ips[0] + 0.1089 * ips[1];
        let got = set.joint_ip(0, 1, &w).unwrap();
        assert!((got - want).abs() < 1e-6);
    }

    #[test]
    fn joint_ip_rejects_wrong_weight_arity() {
        let set = two_modality_set();
        let w = Weights::uniform(3);
        assert!(matches!(
            set.joint_ip(0, 1, &w),
            Err(VectorError::WeightArity { modalities: 2, weights: 3 })
        ));
    }

    #[test]
    fn query_masking_zeroes_missing_modalities() {
        let q = MultiQuery::partial(vec![Some(vec![1.0, 0.0, 0.0, 0.0]), None]);
        assert_eq!(q.supplied(), 1);
        let w = q.mask_weights(&Weights::uniform(2));
        assert!(w.sq(0) > 0.0);
        assert_eq!(w.sq(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one modality")]
    fn empty_query_panics() {
        let _ = MultiQuery::partial(vec![None, None]);
    }

    #[test]
    fn bytes_accounts_all_modalities() {
        let set = two_modality_set();
        assert_eq!(set.bytes(), (2 * 4 + 2 * 2) * 4);
    }
}
