//! Joint similarity between multi-vector points, including the incremental
//! multi-vector computation with safe early termination
//! (Section VII-B, Lemma 4, Eqs. 8–9 of the paper).
//!
//! A "virtual point" in the paper is the concatenation
//! `p_hat = [omega_0 * phi_0(p_0), ..., omega_{m-1} * phi_{m-1}(p_{m-1})]`.
//! Since the query-time-weighting refactor we never materialise weighted
//! corpus storage at all: the corpus's own **unscaled** [`FusedRows`]
//! engine is the only copy, and Lemma 1's
//! `IP(q_hat, u_hat) = sum_i omega_i^2 * IP_i` is realised by baking the
//! `omega_i^2` factors into the *query row alone*
//! ([`FusedRows::query`]), so
//!
//! * scoring a candidate stays a single contiguous dot product,
//! * the Lemma-4 prefix bound walks raw segments of the stored row with
//!   `omega_i^2`-scaled per-segment distances, and
//! * changing `omega` costs nothing but a new per-query evaluator — the
//!   paper's user-defined-weight scenario (Tab. IX, Section VIII-F)
//!   becomes a serving-time parameter instead of a storage rebuild.
//!
//! [`JointDistance`] is therefore a cheap binding of a corpus to one
//! weight configuration; [`JointDistance::with_query_weights`] rebinds the
//! same corpus to another configuration without touching storage.

use crate::fused::{FusedQueryEvaluator, FusedRows};
use crate::multi::{MultiQuery, MultiVectorSet};
use crate::{kernels, ObjectId, VectorError, Weights};

/// Per-query joint-similarity evaluator (fused-row backed); see
/// [`FusedQueryEvaluator`] for the full API.
pub type QueryEvaluator<'a> = FusedQueryEvaluator<'a>;

/// Joint-similarity oracle over an object set: all pairwise computations the
/// index construction needs (Algorithm 1 works purely on `IP(o_hat, u_hat)`).
///
/// Construction is **free of corpus copies**: the oracle scores directly
/// against the set's own unscaled [`FusedRows`] engine and applies the
/// weights per computation (pairwise) or per query (evaluator), so any
/// number of weight configurations share one storage engine.
#[derive(Debug, Clone)]
pub struct JointDistance<'a> {
    set: &'a MultiVectorSet,
    weights: Weights,
}

impl<'a> JointDistance<'a> {
    /// Binds `set` to `weights`.  No storage is copied or rescaled — the
    /// binding is a handle, so constructing one per weight configuration
    /// (or per query) is free.
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when `weights` does not cover every
    /// modality of `set`:
    ///
    /// ```
    /// use must_vector::{JointDistance, MultiVectorSet, VectorError, VectorSetBuilder, Weights};
    /// let mut b = VectorSetBuilder::new(2, 1);
    /// b.push_normalized(&[1.0, 0.0]).unwrap();
    /// let set = MultiVectorSet::new(vec![b.finish()]).unwrap();
    /// assert_eq!(
    ///     JointDistance::new(&set, Weights::uniform(2)).unwrap_err(),
    ///     VectorError::WeightArity { modalities: 1, weights: 2 },
    /// );
    /// ```
    pub fn new(set: &'a MultiVectorSet, weights: Weights) -> Result<Self, VectorError> {
        if weights.modalities() != set.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: set.num_modalities(),
                weights: weights.modalities(),
            });
        }
        Ok(Self { set, weights })
    }

    /// The same corpus under a different weight configuration — the
    /// query-time-weighting seam.  Because stored rows are unscaled, this
    /// is a constant-time rebind, not a rebuild:
    ///
    /// ```
    /// use must_vector::{JointDistance, MultiVectorSet, VectorSetBuilder, Weights};
    /// let mut b = VectorSetBuilder::new(2, 2);
    /// b.push_normalized(&[1.0, 0.0]).unwrap();
    /// b.push_normalized(&[0.6, 0.8]).unwrap();
    /// let set = MultiVectorSet::new(vec![b.finish()]).unwrap();
    /// let jd = JointDistance::new(&set, Weights::new(vec![1.0]).unwrap()).unwrap();
    /// let heavier = jd.with_query_weights(Weights::new(vec![2.0]).unwrap()).unwrap();
    /// // Same storage, new omega: the similarity scales by omega^2 = 4.
    /// assert!((heavier.pair_ip(0, 1) - 4.0 * jd.pair_ip(0, 1)).abs() < 1e-6);
    /// ```
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when `weights` does not cover every
    /// modality.
    pub fn with_query_weights(&self, weights: Weights) -> Result<JointDistance<'a>, VectorError> {
        JointDistance::new(self.set, weights)
    }

    /// The underlying object set.
    #[inline]
    #[must_use]
    pub fn set(&self) -> &'a MultiVectorSet {
        self.set
    }

    /// The weight configuration in force.
    #[inline]
    #[must_use]
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The shared unscaled fused-row engine similarity is computed over
    /// (the corpus's own storage).
    #[inline]
    #[must_use]
    pub fn engine(&self) -> &'a FusedRows {
        self.set.fused()
    }

    /// Joint similarity `IP(a_hat, b_hat)` between two objects (Lemma 1):
    /// the weighted sum of per-segment dot products over the two raw rows.
    #[inline]
    #[must_use]
    pub fn pair_ip(&self, a: ObjectId, b: ObjectId) -> f32 {
        self.engine().weighted_pair_ip(a, b, self.weights.squared())
    }

    /// Joint similarity between object `a` and an external multi-vector
    /// point given as per-modality slices (used by the weight-learning
    /// model, where anchors are queries rather than corpus objects).
    #[inline]
    #[must_use]
    pub fn ip_to_point(&self, a: ObjectId, point: &[&[f32]]) -> f32 {
        debug_assert_eq!(point.len(), self.set.num_modalities());
        let engine = self.engine();
        let mut sum = 0.0;
        for (k, p) in point.iter().enumerate() {
            let wsq = self.weights.sq(k);
            if wsq > 0.0 {
                sum += wsq * kernels::ip(engine.modality_slice(a, k), p);
            }
        }
        sum
    }

    /// The centroid of all virtual points, reported per modality — used by
    /// seed preprocessing (component 4 of Algorithm 1).  The vertex nearest
    /// to it under the joint similarity is the search seed.
    #[must_use]
    pub fn centroid(&self) -> Vec<Vec<f32>> {
        self.set.modalities().map(|s| s.centroid()).collect()
    }

    /// Prepares a per-query evaluator: the query is scaled by this
    /// binding's `omega^2` and fused into one row up front, so scoring a
    /// candidate is one dot product (exact) or an early-exiting segment
    /// walk (Lemma 4).
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when the query has a different number of
    /// modality slots than the object set, or
    /// [`VectorError::DimensionMismatch`] when a supplied slot has the wrong
    /// dimensionality.
    pub fn query(&self, query: &MultiQuery) -> Result<QueryEvaluator<'a>, VectorError> {
        self.engine().query(query, &self.weights)
    }
}

/// Verdict of the incremental (pruned) joint-similarity computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartialIpVerdict {
    /// The candidate was discarded after scanning only a prefix of its
    /// modality segments: its joint similarity is provably `<= threshold`.
    Pruned,
    /// All modality segments were scanned; the exact joint similarity.
    Exact(f32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorSetBuilder;

    fn set3() -> MultiVectorSet {
        // Three objects, two modalities.
        let mut m0 = VectorSetBuilder::new(4, 3);
        m0.push_normalized(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        m0.push_normalized(&[0.6, 0.8, 0.0, 0.0]).unwrap();
        m0.push_normalized(&[0.0, 0.0, 1.0, 0.0]).unwrap();
        let mut m1 = VectorSetBuilder::new(3, 3);
        m1.push_normalized(&[1.0, 0.0, 0.0]).unwrap();
        m1.push_normalized(&[0.0, 1.0, 0.0]).unwrap();
        m1.push_normalized(&[0.5, 0.5, 0.5]).unwrap();
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    #[test]
    fn pair_ip_matches_lemma1_expansion() {
        let set = set3();
        let w = Weights::new(vec![0.8, 0.33]).unwrap();
        let jd = JointDistance::new(&set, w.clone()).unwrap();
        let ips: Vec<f32> = set.modality_ips(0, 1).collect();
        let want = w.sq(0) * ips[0] + w.sq(1) * ips[1];
        assert!((jd.pair_ip(0, 1) - want).abs() < 1e-6);
    }

    #[test]
    fn with_query_weights_rebinds_without_copying() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let w = Weights::new(vec![0.9, 0.2]).unwrap();
        let rebound = jd.with_query_weights(w.clone()).unwrap();
        let ips: Vec<f32> = set.modality_ips(1, 2).collect();
        let want = w.sq(0) * ips[0] + w.sq(1) * ips[1];
        assert!((rebound.pair_ip(1, 2) - want).abs() < 1e-6);
        // The rebind shares the same storage.
        assert!(std::ptr::eq(jd.engine(), rebound.engine()));
        // Arity mismatches are still rejected.
        assert!(matches!(
            jd.with_query_weights(Weights::uniform(3)),
            Err(VectorError::WeightArity { modalities: 2, weights: 3 })
        ));
    }

    #[test]
    fn exact_and_pruned_agree_when_not_pruned() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::full(vec![vec![1.0, 0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]]);
        let ev = jd.query(&q).unwrap();
        for id in 0..3u32 {
            let exact = ev.ip(id);
            match ev.ip_pruned(id, f32::NEG_INFINITY) {
                PartialIpVerdict::Exact(v) => assert!((v - exact).abs() < 1e-5),
                PartialIpVerdict::Pruned => panic!("must not prune below -inf threshold"),
            }
        }
    }

    #[test]
    fn pruning_never_discards_better_candidates() {
        // Soundness of Lemma 4: a pruned candidate is truly <= threshold.
        let set = set3();
        let jd = JointDistance::new(&set, Weights::new(vec![0.9, 0.2]).unwrap()).unwrap();
        let q = MultiQuery::full(vec![vec![0.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0]]);
        let ev = jd.query(&q).unwrap();
        for id in 0..3u32 {
            let exact = ev.ip(id);
            for threshold in [-1.0f32, 0.0, 0.2, 0.5, 0.9] {
                if let PartialIpVerdict::Pruned = ev.ip_pruned(id, threshold) {
                    assert!(
                        exact <= threshold + 1e-5,
                        "pruned id {id} at threshold {threshold} but exact = {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_saves_kernel_evaluations() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::full(vec![vec![0.0, 0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0]]);
        let ev = jd.query(&q).unwrap();
        // With a very high threshold everything prunes after modality 0.
        for id in 0..3u32 {
            assert_eq!(ev.ip_pruned(id, 10.0), PartialIpVerdict::Pruned);
        }
        assert_eq!(ev.kernel_evals(), 3, "each pruned candidate costs one kernel");
    }

    #[test]
    fn masked_query_ignores_missing_modality() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::partial(vec![Some(vec![1.0, 0.0, 0.0, 0.0]), None]);
        let ev = jd.query(&q).unwrap();
        // Only modality 0 contributes: object 0 has IP 1.0 there.
        let got = ev.ip(0);
        assert!((got - 0.5).abs() < 1e-6, "0.5 * 1.0 expected, got {got}");
        assert!((ev.w_total() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn query_with_wrong_dim_is_rejected() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::full(vec![vec![1.0, 0.0], vec![1.0, 0.0, 0.0]]);
        assert!(matches!(jd.query(&q), Err(VectorError::DimensionMismatch { .. })));
    }

    #[test]
    fn ip_to_point_matches_pair_semantics() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let point: Vec<&[f32]> = set.object(1).collect();
        let via_point = jd.ip_to_point(0, &point);
        let via_pair = jd.pair_ip(0, 1);
        assert!((via_point - via_pair).abs() < 1e-6);
    }
}
