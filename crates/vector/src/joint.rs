//! Joint similarity between multi-vector points, including the incremental
//! multi-vector computation with safe early termination
//! (Section VII-B, Lemma 4, Eqs. 8–9 of the paper).
//!
//! A "virtual point" in the paper is the concatenation
//! `p_hat = [omega_0 * phi_0(p_0), ..., omega_{m-1} * phi_{m-1}(p_{m-1})]`.
//! Since the fused-row refactor we *do* materialise it — once, at engine
//! construction: [`JointDistance`] holds a weight-prescaled [`FusedRows`]
//! engine whose row `i` is exactly `o_hat_i`, so
//! `IP(q_hat, u_hat) = sum_i omega_i^2 * IP_i` (Lemma 1) becomes a single
//! contiguous dot product, and the Lemma-4 prefix bound
//!
//! ```text
//! IP(q_hat, u_hat) = W - 0.5 * sum_i ||omega_i phi_i(q_i) - omega_i phi_i(u_i)||^2,
//! W = sum_i omega_i^2
//! ```
//!
//! walks *segments of the same row* — monotonically decreasing, so the
//! search safely discards a candidate as soon as the bound falls below the
//! current result-set threshold.

use crate::fused::{FusedQueryEvaluator, FusedRows};
use crate::multi::{MultiQuery, MultiVectorSet};
use crate::{kernels, ObjectId, VectorError, Weights};

/// Per-query joint-similarity evaluator (fused-row backed); see
/// [`FusedQueryEvaluator`] for the full API.
pub type QueryEvaluator<'a> = FusedQueryEvaluator<'a>;

/// Joint-similarity oracle over an object set: all pairwise computations the
/// index construction needs (Algorithm 1 works purely on `IP(o_hat, u_hat)`).
///
/// Construction prescales the corpus into a [`FusedRows`] engine (one copy).
/// Layers that already own a prescaled engine (a frozen server, a built
/// [`crate::MultiVectorSet`]-backed framework instance) should share it via
/// [`JointDistance::with_engine`] instead of paying the copy again.
#[derive(Debug, Clone)]
pub struct JointDistance<'a> {
    set: &'a MultiVectorSet,
    weights: Weights,
    engine: EngineHandle<'a>,
}

#[derive(Debug, Clone)]
enum EngineHandle<'a> {
    Owned(FusedRows),
    Shared(&'a FusedRows),
}

impl<'a> JointDistance<'a> {
    /// Creates the oracle, prescaling `set`'s fused rows by `weights`
    /// (one corpus copy).
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when `weights` does not cover every
    /// modality of `set`:
    ///
    /// ```
    /// use must_vector::{JointDistance, MultiVectorSet, VectorError, VectorSetBuilder, Weights};
    /// let mut b = VectorSetBuilder::new(2, 1);
    /// b.push_normalized(&[1.0, 0.0]).unwrap();
    /// let set = MultiVectorSet::new(vec![b.finish()]).unwrap();
    /// assert_eq!(
    ///     JointDistance::new(&set, Weights::uniform(2)).unwrap_err(),
    ///     VectorError::WeightArity { modalities: 1, weights: 2 },
    /// );
    /// ```
    pub fn new(set: &'a MultiVectorSet, weights: Weights) -> Result<Self, VectorError> {
        let engine = set.fused().prescaled(&weights)?;
        Ok(Self { set, weights, engine: EngineHandle::Owned(engine) })
    }

    /// Creates the oracle over an *existing* prescaled engine (no copy) —
    /// the serving hot path, where the engine is built once at freeze time
    /// and shared by every worker.
    ///
    /// The engine must have been produced by
    /// [`FusedRows::prescaled`] from `set`'s storage under `weights`.
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when `weights` does not cover every
    /// modality of `set`, [`VectorError::EngineMismatch`] when `engine`
    /// covers a different number of modalities,
    /// [`VectorError::CardinalityMismatch`] when it covers a different
    /// number of objects, and [`VectorError::DimensionMismatch`] when the
    /// per-modality layouts disagree.
    pub fn with_engine(
        set: &'a MultiVectorSet,
        weights: Weights,
        engine: &'a FusedRows,
    ) -> Result<Self, VectorError> {
        if weights.modalities() != set.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: set.num_modalities(),
                weights: weights.modalities(),
            });
        }
        if engine.num_modalities() != set.num_modalities() {
            return Err(VectorError::EngineMismatch {
                modalities: set.num_modalities(),
                engine: engine.num_modalities(),
            });
        }
        if engine.len() != set.len() {
            return Err(VectorError::CardinalityMismatch {
                expected: set.len(),
                got: engine.len(),
            });
        }
        for (&want, &got) in set.dims().iter().zip(engine.dims()) {
            if want != got {
                return Err(VectorError::DimensionMismatch { expected: want, got });
            }
        }
        debug_assert!(
            engine
                .scales()
                .iter()
                .zip(weights.raw())
                .all(|(s, w)| (s - w).abs() < 1e-6),
            "engine scales must match the weights it was prescaled with"
        );
        Ok(Self { set, weights, engine: EngineHandle::Shared(engine) })
    }

    /// The underlying object set.
    #[inline]
    #[must_use]
    pub fn set(&self) -> &'a MultiVectorSet {
        self.set
    }

    /// The weight configuration in force.
    #[inline]
    #[must_use]
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The prescaled fused-row engine similarity is computed over.
    #[inline]
    #[must_use]
    pub fn engine(&self) -> &FusedRows {
        match &self.engine {
            EngineHandle::Owned(e) => e,
            EngineHandle::Shared(e) => e,
        }
    }

    /// Extracts the prescaled engine, cloning only if it was shared — how
    /// a build-time oracle hands its engine on to the framework instance
    /// without a second prescale pass.
    #[must_use]
    pub fn into_engine(self) -> FusedRows {
        match self.engine {
            EngineHandle::Owned(e) => e,
            EngineHandle::Shared(e) => e.clone(),
        }
    }

    /// Joint similarity `IP(a_hat, b_hat)` between two objects (Lemma 1):
    /// one contiguous dot product over the prescaled rows.
    #[inline]
    #[must_use]
    pub fn pair_ip(&self, a: ObjectId, b: ObjectId) -> f32 {
        self.engine().pair_ip(a, b)
    }

    /// Joint similarity between object `a` and an external multi-vector
    /// point given as per-modality slices (used by the weight-learning
    /// model, where anchors are queries rather than corpus objects).
    #[inline]
    #[must_use]
    pub fn ip_to_point(&self, a: ObjectId, point: &[&[f32]]) -> f32 {
        debug_assert_eq!(point.len(), self.set.num_modalities());
        let engine = self.engine();
        let mut sum = 0.0;
        for (k, p) in point.iter().enumerate() {
            let scale = engine.scales()[k];
            if scale > 0.0 {
                // Row segments already carry one factor of omega_k.
                sum += scale * kernels::ip(engine.modality_slice(a, k), p);
            }
        }
        sum
    }

    /// The centroid of all virtual points, reported per modality — used by
    /// seed preprocessing (component 4 of Algorithm 1).  The vertex nearest
    /// to it under the joint similarity is the search seed.
    #[must_use]
    pub fn centroid(&self) -> Vec<Vec<f32>> {
        self.set.modalities().map(|s| s.centroid()).collect()
    }

    /// Prepares a per-query evaluator: the query is scaled and fused into
    /// one row up front, so scoring a candidate is one dot product (exact)
    /// or an early-exiting segment walk (Lemma 4).
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when the query has a different number of
    /// modality slots than the object set, or
    /// [`VectorError::DimensionMismatch`] when a supplied slot has the wrong
    /// dimensionality.
    pub fn query(&self, query: &MultiQuery) -> Result<QueryEvaluator<'_>, VectorError> {
        self.engine().query(query)
    }
}

/// Verdict of the incremental (pruned) joint-similarity computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartialIpVerdict {
    /// The candidate was discarded after scanning only a prefix of its
    /// modality segments: its joint similarity is provably `<= threshold`.
    Pruned,
    /// All modality segments were scanned; the exact joint similarity.
    Exact(f32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorSetBuilder;

    fn set3() -> MultiVectorSet {
        // Three objects, two modalities.
        let mut m0 = VectorSetBuilder::new(4, 3);
        m0.push_normalized(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        m0.push_normalized(&[0.6, 0.8, 0.0, 0.0]).unwrap();
        m0.push_normalized(&[0.0, 0.0, 1.0, 0.0]).unwrap();
        let mut m1 = VectorSetBuilder::new(3, 3);
        m1.push_normalized(&[1.0, 0.0, 0.0]).unwrap();
        m1.push_normalized(&[0.0, 1.0, 0.0]).unwrap();
        m1.push_normalized(&[0.5, 0.5, 0.5]).unwrap();
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    #[test]
    fn pair_ip_matches_lemma1_expansion() {
        let set = set3();
        let w = Weights::new(vec![0.8, 0.33]).unwrap();
        let jd = JointDistance::new(&set, w.clone()).unwrap();
        let ips: Vec<f32> = set.modality_ips(0, 1).collect();
        let want = w.sq(0) * ips[0] + w.sq(1) * ips[1];
        assert!((jd.pair_ip(0, 1) - want).abs() < 1e-6);
    }

    #[test]
    fn shared_engine_scores_like_owned() {
        let set = set3();
        let w = Weights::new(vec![0.8, 0.33]).unwrap();
        let engine = set.fused().prescaled(&w).unwrap();
        let owned = JointDistance::new(&set, w.clone()).unwrap();
        let shared = JointDistance::with_engine(&set, w, &engine).unwrap();
        for (a, b) in [(0u32, 1u32), (1, 2)] {
            assert_eq!(owned.pair_ip(a, b), shared.pair_ip(a, b));
        }
    }

    #[test]
    fn with_engine_rejects_mismatched_shapes() {
        let set = set3();
        let w = Weights::uniform(2);
        let engine = set.fused().prescaled(&w).unwrap();
        // Cardinality mismatch: engine over a smaller set.
        let mut small0 = VectorSetBuilder::new(4, 1);
        small0.push_normalized(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        let mut small1 = VectorSetBuilder::new(3, 1);
        small1.push_normalized(&[1.0, 0.0, 0.0]).unwrap();
        let small = MultiVectorSet::new(vec![small0.finish(), small1.finish()]).unwrap();
        assert!(matches!(
            JointDistance::with_engine(&small, w.clone(), &engine),
            Err(VectorError::CardinalityMismatch { .. })
        ));
        assert!(matches!(
            JointDistance::with_engine(&set, Weights::uniform(3), &engine),
            Err(VectorError::WeightArity { .. })
        ));
        // An engine with the wrong modality count names the engine, not
        // the (correct) weights.
        let mut solo = VectorSetBuilder::new(4, 3);
        for _ in 0..3 {
            solo.push_normalized(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        }
        let one_modality = MultiVectorSet::new(vec![solo.finish()]).unwrap();
        let narrow = one_modality.fused().prescaled(&Weights::uniform(1)).unwrap();
        assert!(matches!(
            JointDistance::with_engine(&set, w, &narrow),
            Err(VectorError::EngineMismatch { modalities: 2, engine: 1 })
        ));
    }

    #[test]
    fn exact_and_pruned_agree_when_not_pruned() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::full(vec![vec![1.0, 0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]]);
        let ev = jd.query(&q).unwrap();
        for id in 0..3u32 {
            let exact = ev.ip(id);
            match ev.ip_pruned(id, f32::NEG_INFINITY) {
                PartialIpVerdict::Exact(v) => assert!((v - exact).abs() < 1e-5),
                PartialIpVerdict::Pruned => panic!("must not prune below -inf threshold"),
            }
        }
    }

    #[test]
    fn pruning_never_discards_better_candidates() {
        // Soundness of Lemma 4: a pruned candidate is truly <= threshold.
        let set = set3();
        let jd = JointDistance::new(&set, Weights::new(vec![0.9, 0.2]).unwrap()).unwrap();
        let q = MultiQuery::full(vec![vec![0.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0]]);
        let ev = jd.query(&q).unwrap();
        for id in 0..3u32 {
            let exact = ev.ip(id);
            for threshold in [-1.0f32, 0.0, 0.2, 0.5, 0.9] {
                if let PartialIpVerdict::Pruned = ev.ip_pruned(id, threshold) {
                    assert!(
                        exact <= threshold + 1e-5,
                        "pruned id {id} at threshold {threshold} but exact = {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_saves_kernel_evaluations() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::full(vec![vec![0.0, 0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0]]);
        let ev = jd.query(&q).unwrap();
        // With a very high threshold everything prunes after modality 0.
        for id in 0..3u32 {
            assert_eq!(ev.ip_pruned(id, 10.0), PartialIpVerdict::Pruned);
        }
        assert_eq!(ev.kernel_evals(), 3, "each pruned candidate costs one kernel");
    }

    #[test]
    fn masked_query_ignores_missing_modality() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::partial(vec![Some(vec![1.0, 0.0, 0.0, 0.0]), None]);
        let ev = jd.query(&q).unwrap();
        // Only modality 0 contributes: object 0 has IP 1.0 there.
        let got = ev.ip(0);
        assert!((got - 0.5).abs() < 1e-6, "0.5 * 1.0 expected, got {got}");
        assert!((ev.w_total() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn query_with_wrong_dim_is_rejected() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::full(vec![vec![1.0, 0.0], vec![1.0, 0.0, 0.0]]);
        assert!(matches!(jd.query(&q), Err(VectorError::DimensionMismatch { .. })));
    }

    #[test]
    fn ip_to_point_matches_pair_semantics() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let point: Vec<&[f32]> = set.object(1).collect();
        let via_point = jd.ip_to_point(0, &point);
        let via_pair = jd.pair_ip(0, 1);
        assert!((via_point - via_pair).abs() < 1e-6);
    }
}
