//! Joint similarity between multi-vector points, including the incremental
//! multi-vector computation with safe early termination
//! (Section VII-B, Lemma 4, Eqs. 8–9 of the paper).
//!
//! A "virtual point" in the paper is the concatenation
//! `p_hat = [omega_0 * phi_0(p_0), ..., omega_{m-1} * phi_{m-1}(p_{m-1})]`.
//! We never materialise it: `IP(q_hat, u_hat) = sum_i omega_i^2 * IP_i`
//! (Lemma 1), and because every per-modality vector is unit-norm,
//!
//! ```text
//! IP(q_hat, u_hat) = W - 0.5 * sum_i omega_i^2 * ||phi_i(q_i) - phi_i(u_i)||^2,
//! W = sum_i omega_i^2
//! ```
//!
//! The partial sums over a *prefix* of modalities therefore give a
//! monotonically decreasing upper bound on the joint similarity, which is
//! what lets the search safely discard a candidate as soon as the bound
//! falls below the current result-set threshold (Lemma 4).

use std::cell::Cell;

use crate::multi::{MultiQuery, MultiVectorSet};
use crate::{ObjectId, VectorError, Weights};

/// Joint-similarity oracle over an object set: all pairwise computations the
/// index construction needs (Algorithm 1 works purely on `IP(o_hat, u_hat)`).
#[derive(Debug, Clone)]
pub struct JointDistance<'a> {
    set: &'a MultiVectorSet,
    weights: Weights,
}

impl<'a> JointDistance<'a> {
    /// Creates the oracle.
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when `weights` does not cover every
    /// modality of `set`:
    ///
    /// ```
    /// use must_vector::{JointDistance, MultiVectorSet, VectorError, VectorSetBuilder, Weights};
    /// let mut b = VectorSetBuilder::new(2, 1);
    /// b.push_normalized(&[1.0, 0.0]).unwrap();
    /// let set = MultiVectorSet::new(vec![b.finish()]).unwrap();
    /// assert_eq!(
    ///     JointDistance::new(&set, Weights::uniform(2)).unwrap_err(),
    ///     VectorError::WeightArity { modalities: 1, weights: 2 },
    /// );
    /// ```
    pub fn new(set: &'a MultiVectorSet, weights: Weights) -> Result<Self, VectorError> {
        if weights.modalities() != set.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: set.num_modalities(),
                weights: weights.modalities(),
            });
        }
        Ok(Self { set, weights })
    }

    /// The underlying object set.
    #[inline]
    pub fn set(&self) -> &'a MultiVectorSet {
        self.set
    }

    /// The weight configuration in force.
    #[inline]
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Joint similarity `IP(a_hat, b_hat)` between two objects (Lemma 1).
    #[inline]
    pub fn pair_ip(&self, a: ObjectId, b: ObjectId) -> f32 {
        let mut sum = 0.0;
        for (set, &w) in self.set.modalities().iter().zip(self.weights.squared()) {
            if w > 0.0 {
                sum += w * set.ip(a, b);
            }
        }
        sum
    }

    /// Joint similarity between object `a` and an external multi-vector
    /// point given as per-modality slices (used by the weight-learning
    /// model, where anchors are queries rather than corpus objects).
    #[inline]
    pub fn ip_to_point(&self, a: ObjectId, point: &[&[f32]]) -> f32 {
        debug_assert_eq!(point.len(), self.set.num_modalities());
        let mut sum = 0.0;
        for ((set, &w), p) in self
            .set
            .modalities()
            .iter()
            .zip(self.weights.squared())
            .zip(point)
        {
            if w > 0.0 {
                sum += w * set.ip_to(a, p);
            }
        }
        sum
    }

    /// The centroid of all virtual points, reported per modality — used by
    /// seed preprocessing (component 4 of Algorithm 1).  The vertex nearest
    /// to it under the joint similarity is the search seed.
    pub fn centroid(&self) -> Vec<Vec<f32>> {
        self.set.modalities().iter().map(|s| s.centroid()).collect()
    }

    /// Prepares a per-query evaluator.
    ///
    /// # Errors
    /// [`VectorError::WeightArity`] when the query has a different number of
    /// modality slots than the object set, or
    /// [`VectorError::DimensionMismatch`] when a supplied slot has the wrong
    /// dimensionality.
    pub fn query<'q>(&self, query: &'q MultiQuery) -> Result<QueryEvaluator<'a, 'q>, VectorError> {
        QueryEvaluator::new(self.set, &self.weights, query)
    }
}

/// Verdict of the incremental (pruned) joint-similarity computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartialIpVerdict {
    /// The candidate was discarded after scanning only a prefix of its
    /// modality vectors: its joint similarity is provably `<= threshold`.
    Pruned,
    /// All modality vectors were scanned; the exact joint similarity.
    Exact(f32),
}

/// Per-query joint-similarity evaluator with the Lemma-4 early-termination
/// optimisation and instrumentation of how many modality-vector kernels were
/// evaluated (the quantity the Fig. 10(c) ablation varies).
#[derive(Debug)]
pub struct QueryEvaluator<'a, 'q> {
    set: &'a MultiVectorSet,
    /// `(modality index, squared weight, query slice)` for supplied,
    /// positive-weight modalities only.
    active: Vec<(usize, f32, &'q [f32])>,
    /// `W = sum of active squared weights` (norm term of Eq. 8 for the
    /// masked virtual query point).
    w_total: f32,
    kernel_evals: Cell<u64>,
}

impl<'a, 'q> QueryEvaluator<'a, 'q> {
    fn new(
        set: &'a MultiVectorSet,
        weights: &Weights,
        query: &'q MultiQuery,
    ) -> Result<Self, VectorError> {
        if query.num_slots() != set.num_modalities() {
            return Err(VectorError::WeightArity {
                modalities: set.num_modalities(),
                weights: query.num_slots(),
            });
        }
        let masked = query.mask_weights(weights);
        let mut active = Vec::with_capacity(set.num_modalities());
        for i in 0..set.num_modalities() {
            let w = masked.sq(i);
            if w <= 0.0 {
                continue;
            }
            let slot = query.slot(i).expect("masking keeps only supplied modalities");
            if slot.len() != set.modality(i).dim() {
                return Err(VectorError::DimensionMismatch {
                    expected: set.modality(i).dim(),
                    got: slot.len(),
                });
            }
            active.push((i, w, slot));
        }
        let w_total = active.iter().map(|(_, w, _)| w).sum();
        Ok(Self { set, active, w_total, kernel_evals: Cell::new(0) })
    }

    /// Number of modality kernels evaluated so far (instrumentation for the
    /// multi-vector computation ablation).
    #[inline]
    pub fn kernel_evals(&self) -> u64 {
        self.kernel_evals.get()
    }

    /// Sum of active squared weights — the joint similarity of the query
    /// with itself, and the starting value of the Lemma-4 upper bound.
    #[inline]
    pub fn w_total(&self) -> f32 {
        self.w_total
    }

    #[inline]
    fn bump(&self, by: u64) {
        self.kernel_evals.set(self.kernel_evals.get() + by);
    }

    /// Exact joint similarity `IP(q_hat, u_hat)` of object `id` to the query
    /// (all active modalities scanned).
    pub fn ip(&self, id: ObjectId) -> f32 {
        self.bump(self.active.len() as u64);
        self.active
            .iter()
            .map(|&(i, w, slot)| w * self.set.modality(i).ip_to(id, slot))
            .sum()
    }

    /// Incremental joint similarity with safe early termination (Lemma 4).
    ///
    /// Scans the query's modality vectors one by one, maintaining the upper
    /// bound `W - 0.5 * partial_weighted_l2` of Eqs. 8–9.  As soon as the
    /// bound is `<= threshold` the candidate is discarded — the exact value
    /// could only be smaller.  If every modality is scanned, the exact joint
    /// similarity is returned (the bound is then tight).
    pub fn ip_pruned(&self, id: ObjectId, threshold: f32) -> PartialIpVerdict {
        let mut bound = self.w_total;
        for (scanned, &(i, w, slot)) in self.active.iter().enumerate() {
            bound -= 0.5 * w * self.set.modality(i).l2_sq_to(id, slot);
            self.bump(1);
            if bound <= threshold && scanned + 1 < self.active.len() {
                return PartialIpVerdict::Pruned;
            }
        }
        PartialIpVerdict::Exact(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorSetBuilder;

    fn set3() -> MultiVectorSet {
        // Three objects, two modalities.
        let mut m0 = VectorSetBuilder::new(4, 3);
        m0.push_normalized(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        m0.push_normalized(&[0.6, 0.8, 0.0, 0.0]).unwrap();
        m0.push_normalized(&[0.0, 0.0, 1.0, 0.0]).unwrap();
        let mut m1 = VectorSetBuilder::new(3, 3);
        m1.push_normalized(&[1.0, 0.0, 0.0]).unwrap();
        m1.push_normalized(&[0.0, 1.0, 0.0]).unwrap();
        m1.push_normalized(&[0.5, 0.5, 0.5]).unwrap();
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    #[test]
    fn pair_ip_matches_lemma1_expansion() {
        let set = set3();
        let w = Weights::new(vec![0.8, 0.33]).unwrap();
        let jd = JointDistance::new(&set, w.clone()).unwrap();
        let ips = set.modality_ips(0, 1);
        let want = w.sq(0) * ips[0] + w.sq(1) * ips[1];
        assert!((jd.pair_ip(0, 1) - want).abs() < 1e-6);
    }

    #[test]
    fn exact_and_pruned_agree_when_not_pruned() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::full(vec![vec![1.0, 0.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]]);
        let ev = jd.query(&q).unwrap();
        for id in 0..3u32 {
            let exact = ev.ip(id);
            match ev.ip_pruned(id, f32::NEG_INFINITY) {
                PartialIpVerdict::Exact(v) => assert!((v - exact).abs() < 1e-5),
                PartialIpVerdict::Pruned => panic!("must not prune below -inf threshold"),
            }
        }
    }

    #[test]
    fn pruning_never_discards_better_candidates() {
        // Soundness of Lemma 4: a pruned candidate is truly <= threshold.
        let set = set3();
        let jd = JointDistance::new(&set, Weights::new(vec![0.9, 0.2]).unwrap()).unwrap();
        let q = MultiQuery::full(vec![vec![0.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0]]);
        let ev = jd.query(&q).unwrap();
        for id in 0..3u32 {
            let exact = ev.ip(id);
            for threshold in [-1.0f32, 0.0, 0.2, 0.5, 0.9] {
                if let PartialIpVerdict::Pruned = ev.ip_pruned(id, threshold) {
                    assert!(
                        exact <= threshold + 1e-5,
                        "pruned id {id} at threshold {threshold} but exact = {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_saves_kernel_evaluations() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::full(vec![vec![0.0, 0.0, 0.0, 1.0], vec![0.0, 0.0, 1.0]]);
        let ev = jd.query(&q).unwrap();
        // With a very high threshold everything prunes after modality 0.
        for id in 0..3u32 {
            assert_eq!(ev.ip_pruned(id, 10.0), PartialIpVerdict::Pruned);
        }
        assert_eq!(ev.kernel_evals(), 3, "each pruned candidate costs one kernel");
    }

    #[test]
    fn masked_query_ignores_missing_modality() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::partial(vec![Some(vec![1.0, 0.0, 0.0, 0.0]), None]);
        let ev = jd.query(&q).unwrap();
        // Only modality 0 contributes: object 0 has IP 1.0 there.
        let got = ev.ip(0);
        assert!((got - 0.5).abs() < 1e-6, "0.5 * 1.0 expected, got {got}");
        assert!((ev.w_total() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn query_with_wrong_dim_is_rejected() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::full(vec![vec![1.0, 0.0], vec![1.0, 0.0, 0.0]]);
        assert!(matches!(jd.query(&q), Err(VectorError::DimensionMismatch { .. })));
    }

    #[test]
    fn ip_to_point_matches_pair_semantics() {
        let set = set3();
        let jd = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        let point = set.object(1);
        let via_point = jd.ip_to_point(0, &point);
        let via_pair = jd.pair_ip(0, 1);
        assert!((via_point - via_pair).abs() < 1e-6);
    }
}
