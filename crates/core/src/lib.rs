//! # MUST — Multimodal Search of Target Modality
//!
//! A from-scratch Rust implementation of the MUST framework
//! (Wang et al., ICDE 2024): answering multimodal queries whose results are
//! rendered in one *target* modality, guided by auxiliary modalities.
//!
//! The framework's pieces, mapped to the paper:
//!
//! * [`metrics`] — `Recall@k(k')` (Eq. 1) and the similarity-measurement
//!   error `SME` (Eq. 4).
//! * [`oracle`] — the joint-similarity oracle over a
//!   [`must_vector::MultiVectorSet`] + [`must_vector::Weights`] (Lemma 1),
//!   and the query scorer wiring the Lemma-4 multi-vector pruning into
//!   graph search.
//! * [`weights`] — the vector-weight-learning model (Section VI):
//!   contrastive loss over hard negatives mined by exact search under the
//!   current weights, optimised by analytic gradient descent.
//! * [`index`] — the fused index (Algorithm 1) built through
//!   `must-graph`'s component pipeline, with pluggable graph backends
//!   (Section VIII-G).
//! * [`search`] — the joint search (Algorithm 2) plus the brute-force
//!   searcher (`MUST--`).
//! * [`baselines`] — Multi-streamed Retrieval (MR) and Joint Embedding
//!   (JE), the Section III baselines, plus their brute-force variants.
//! * [`framework`] — the user-facing [`Must`] API: embed → weigh → index →
//!   search.
//! * [`persist`] — the offline/online seam (Fig. 4): bundle v5 binary
//!   persistence (unscaled fused rows + segment norms + default weights,
//!   all backends incl. HNSW) plus every older format back to v1 JSON.
//! * [`server`] — the online serving layer: a `Send + Sync`
//!   [`MustServer`] handle answering queries from many threads with
//!   results bit-identical to serial execution, and per-query weight
//!   overrides (`search_weighted`) served from the same frozen snapshot.
//! * [`shard`] — sharded scatter-gather serving: [`ShardedMust`] builds
//!   `S` shards in parallel (round-robin, hashed, or clustered),
//!   [`ShardedServer`] fans each query out — or **routes** it to only
//!   the best-scoring shards via per-shard summaries ([`RoutePolicy`])
//!   — and merges the per-shard top-`k` by exact joint similarity;
//!   bundle v6 persists the whole deployment, summaries included, in
//!   one file.
//! * [`runtime`] — the contention-free serve loop behind both servers'
//!   `serve` entry points: per-worker request lanes, work stealing from
//!   the longest lane, and batch affinity, with drain-on-shutdown
//!   delivery guarantees.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the crate DAG
//! and a one-paragraph tour of every crate.
//!
//! ## Quick example
//!
//! ```
//! use must_core::framework::{Must, MustBuildOptions};
//! use must_vector::{MultiQuery, MultiVectorSet, VectorSetBuilder, Weights};
//!
//! // A toy corpus: 4 objects x 2 modalities.
//! let mut m0 = VectorSetBuilder::new(4, 4);
//! let mut m1 = VectorSetBuilder::new(2, 4);
//! for (img, txt) in [([1.0f32, 0., 0., 0.], [1.0f32, 0.]),
//!                    ([0., 1., 0., 0.], [1., 0.]),
//!                    ([0., 0., 1., 0.], [0., 1.]),
//!                    ([0., 0., 0., 1.], [0., 1.])] {
//!     m0.push_normalized(&img).unwrap();
//!     m1.push_normalized(&txt).unwrap();
//! }
//! let objects = MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap();
//! let must = Must::build(objects, Weights::uniform(2), MustBuildOptions::default()).unwrap();
//! let query = MultiQuery::full(vec![vec![0., 0., 0.9, 0.1], vec![0., 1.]]);
//! let hits = must.search(&query, 1, 8).unwrap();
//! assert_eq!(hits[0].0, 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod framework;
pub mod index;
pub mod metrics;
pub mod oracle;
pub mod persist;
pub mod runtime;
pub mod search;
pub mod server;
pub mod shard;
pub mod weights;

pub use framework::{Must, MustBuildOptions};
pub use metrics::{recall_at, sme};
pub use oracle::{JointOracle, MustQueryScorer};
pub use runtime::{RuntimeCounters, ServeRuntime};
pub use server::{MustServer, ServeReply, ServeRequest};
pub use shard::{
    RoutePolicy, ShardAssignment, ShardRouter, ShardSpec, ShardSummary, ShardedMust, ShardedServer,
};
pub use weights::{LearnedWeights, TrainingCurve, WeightLearnConfig, WeightLearner};

/// Crate-level error type.
#[derive(Debug)]
pub enum MustError {
    /// Underlying vector-layer error.
    Vector(must_vector::VectorError),
    /// Invalid configuration.
    Config(String),
    /// I/O or (de)serialisation failure while persisting or loading an
    /// index bundle.
    ///
    /// ```
    /// use must_core::MustError;
    ///
    /// let missing = std::path::Path::new("/definitely/not/here.mustb");
    /// let Err(err) = must_core::persist::load(missing) else {
    ///     panic!("loading a missing bundle must fail");
    /// };
    /// assert!(matches!(err, MustError::Io(_)));
    /// assert!(err.to_string().contains("i/o error"));
    /// ```
    Io(String),
}

impl std::fmt::Display for MustError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Vector(e) => write!(f, "vector error: {e}"),
            Self::Config(msg) => write!(f, "configuration error: {msg}"),
            Self::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for MustError {}

impl From<must_vector::VectorError> for MustError {
    fn from(e: must_vector::VectorError) -> Self {
        Self::Vector(e)
    }
}
