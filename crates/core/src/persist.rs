//! Index persistence: serialise a built MUST instance (corpus + weights +
//! fused graph in CSR form) to disk and load it back without rebuilding —
//! what a deployment does between the offline build and online serving
//! (Fig. 4's offline/online split).

use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use must_graph::csr::CsrGraph;
use must_vector::{MultiVectorSet, Weights};
use serde::{Deserialize, Serialize};

use crate::framework::{Must, MustBuildOptions};
use crate::MustError;

/// The on-disk bundle (JSON; versioned for forward compatibility).
#[derive(Debug, Serialize, Deserialize)]
pub struct MustBundle {
    /// Format version.
    pub version: u32,
    /// The multi-vector corpus.
    pub objects: MultiVectorSet,
    /// The weights the index was built under.
    pub weights: Weights,
    /// The fused graph, frozen.
    pub graph: CsrGraph,
    /// Whether searches should prune (Lemma 4).
    pub prune: bool,
}

/// Current bundle version.
pub const BUNDLE_VERSION: u32 = 1;

/// Serialises `must` to `path`.  Only flat-graph backends are persistable
/// (HNSW persistence would need its layered form; the paper's fused index
/// is flat).
///
/// # Errors
/// [`MustError::Config`] for HNSW backends; I/O and serialisation errors
/// as [`MustError::Config`] with context.
pub fn save(must: &Must, path: &Path) -> Result<(), MustError> {
    let graph = must
        .index()
        .graph()
        .ok_or_else(|| MustError::Config("only flat-graph indexes are persistable".into()))?;
    let bundle = MustBundle {
        version: BUNDLE_VERSION,
        objects: must.objects().clone(),
        weights: must.weights().clone(),
        graph: CsrGraph::from_graph(graph),
        prune: must.prune(),
    };
    let file = std::fs::File::create(path)
        .map_err(|e| MustError::Config(format!("create {}: {e}", path.display())))?;
    let mut w = BufWriter::new(file);
    serde_json::to_writer(&mut w, &bundle)
        .map_err(|e| MustError::Config(format!("serialise: {e}")))?;
    w.flush().map_err(|e| MustError::Config(format!("flush: {e}")))?;
    Ok(())
}

/// Loads a bundle from `path` into a ready-to-search [`Must`].
///
/// # Errors
/// I/O, format-version, and consistency errors.
pub fn load(path: &Path) -> Result<Must, MustError> {
    let file = std::fs::File::open(path)
        .map_err(|e| MustError::Config(format!("open {}: {e}", path.display())))?;
    let bundle: MustBundle = serde_json::from_reader(BufReader::new(file))
        .map_err(|e| MustError::Config(format!("parse: {e}")))?;
    if bundle.version != BUNDLE_VERSION {
        return Err(MustError::Config(format!(
            "unsupported bundle version {} (expected {BUNDLE_VERSION})",
            bundle.version
        )));
    }
    if bundle.graph.len() != bundle.objects.len() {
        return Err(MustError::Config(format!(
            "bundle graph covers {} vertices but corpus has {} objects",
            bundle.graph.len(),
            bundle.objects.len()
        )));
    }
    Must::from_prebuilt(
        bundle.objects,
        bundle.weights,
        bundle.graph.to_graph(),
        MustBuildOptions { prune: bundle.prune, ..Default::default() },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_vector::{MultiQuery, VectorSetBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize) -> MultiVectorSet {
        let mut rng = StdRng::seed_from_u64(13);
        let mut m0 = VectorSetBuilder::new(8, n);
        let mut m1 = VectorSetBuilder::new(4, n);
        for _ in 0..n {
            let v0: Vec<f32> = (0..8).map(|_| rng.random::<f32>() - 0.5).collect();
            let v1: Vec<f32> = (0..4).map(|_| rng.random::<f32>() - 0.5).collect();
            m0.push_normalized(&v0).unwrap();
            m1.push_normalized(&v1).unwrap();
        }
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    #[test]
    fn save_load_round_trip_preserves_search_results() {
        let set = corpus(200);
        let must =
            Must::build(set, Weights::new(vec![0.8, 0.4]).unwrap(), MustBuildOptions::default())
                .unwrap();
        let dir = std::env::temp_dir().join("must-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.json");
        save(&must, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.objects().len(), 200);
        assert_eq!(loaded.weights(), must.weights());
        for id in [3u32, 77, 150] {
            let q = MultiQuery::full(vec![
                must.objects().modality(0).get(id).to_vec(),
                must.objects().modality(1).get(id).to_vec(),
            ]);
            let a = must.search(&q, 5, 60).unwrap();
            let b = loaded.search(&q, 5, 60).unwrap();
            assert_eq!(a, b, "loaded index must search identically");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hnsw_bundles_are_rejected() {
        use must_graph::GraphRecipe;
        let set = corpus(60);
        let must = Must::build(
            set,
            Weights::uniform(2),
            MustBuildOptions { recipe: GraphRecipe::Hnsw, ..Default::default() },
        )
        .unwrap();
        let path = std::env::temp_dir().join("must-hnsw-reject.json");
        assert!(matches!(save(&must, &path), Err(MustError::Config(_))));
    }

    #[test]
    fn corrupt_and_missing_files_error_cleanly() {
        let missing = std::env::temp_dir().join("must-definitely-missing.json");
        assert!(load(&missing).is_err());
        let garbage = std::env::temp_dir().join("must-garbage.json");
        std::fs::write(&garbage, b"not json").unwrap();
        assert!(load(&garbage).is_err());
        std::fs::remove_file(&garbage).unwrap();
    }
}
