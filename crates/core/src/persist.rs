//! Index persistence: serialise a built MUST instance (corpus + weights +
//! frozen graph) to disk and load it back without rebuilding — what a
//! deployment does between the offline build and online serving (Fig. 4's
//! offline/online split).
//!
//! The wire formats, newest first:
//!
//! * **Bundle v7** (current quantized format, [`save_quantized`]): an
//!   offset-table layout.  After the shared magic + version comes a fixed
//!   header (prune flag, dims, lane, cardinality, section count), then a
//!   table of `(offset, byte length)` pairs — offsets relative to the
//!   first byte after the table, each 32-byte aligned — and finally the
//!   six sections themselves: fused rows, segment norms, default weights,
//!   SQ8 codes, quantization parameters (`min`/`step`/`eps` per
//!   row-segment), and the index block.  [`load`] reads the whole body
//!   into one buffer and *borrows* the code section out of it zero-copy
//!   ([`must_vector::CodeStore`]); a later `insert_object` promotes the
//!   codes to an owned buffer (copy-on-write).
//! * **Bundle v6** (current sharded format, [`save_sharded`]): the v4
//!   manifest plus a **routing-summary section** (per shard: the fused
//!   centroid row and per-modality residual radii, each length-prefixed)
//!   between the id maps and the payload offset table.  Summaries load
//!   verbatim — they are *not* re-derivable after dynamic insertions,
//!   whose radius growth must survive a round-trip.
//! * **Bundle v5** (current single-shard format, [`save`]): the fused-row
//!   corpus block of v3
//!   — which has always held the **unscaled** rows; weights were never
//!   baked into storage on disk — followed by an explicit *segment-norms
//!   block* (`n · m` little-endian `f32`, `||o_k||^2` per row/modality)
//!   and the **default** [`Weights`] as their own block.  [`load`] hands
//!   rows + norms straight to [`FusedRows::from_raw_parts_with_norms`],
//!   so neither a per-modality re-copy nor a norms recomputation happens;
//!   the default weights merely seed the server's default path — any
//!   query may override them (`search_weighted`).
//! * **Bundle v3**: like v5 minus the norms block (norms are re-derived
//!   from the rows at load).  Still loadable; no longer written.
//! * **Bundle v2**: a length-prefixed little-endian binary layout — magic
//!   and version header, raw `f32` vector blocks per modality, and the
//!   index as flat arrays (CSR for flat-graph backends, the flattened
//!   layered form for HNSW).  Still loadable; no longer written.  See
//!   `DESIGN.md` §6 for the byte-level table of the binary versions.
//! * **Bundle v1** ([`save_json`]): the original JSON format, flat-graph
//!   backends only.  [`load`] sniffs the magic bytes and accepts all
//!   five single-shard formats (the sharded v4/v6 go through
//!   [`load_sharded`], which derives routing summaries for every
//!   pre-v6 bundle).
//!
//! I/O and (de)serialisation failures surface as [`MustError::Io`];
//! semantic problems (unsupported version, corpus/graph inconsistency)
//! as [`MustError::Config`].

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use must_graph::csr::CsrGraph;
use must_graph::hnsw::{Hnsw, HnswFlat};
use must_vector::{
    CodeStore, FusedRows, MultiVectorSet, QuantizedRows, SegParams, VectorSet, Weights, FUSED_LANE,
};
use serde::{Deserialize, Serialize};

use crate::framework::{Must, MustBuildOptions};
use crate::index::MustIndex;
use crate::shard::{ShardAssignment, ShardSummary, ShardedMust};
use crate::MustError;

/// The v1 on-disk bundle (JSON; kept loadable for existing deployments).
#[derive(Debug, Serialize, Deserialize)]
pub struct MustBundle {
    /// Format version.
    pub version: u32,
    /// The multi-vector corpus.
    pub objects: MultiVectorSet,
    /// The weights the index was built under.
    pub weights: Weights,
    /// The fused graph, frozen.
    pub graph: CsrGraph,
    /// Whether searches should prune (Lemma 4).
    pub prune: bool,
}

/// Version written by [`save_json`] (the legacy JSON path).
pub const BUNDLE_VERSION: u32 = 1;

/// Legacy binary version (per-modality corpus blocks); still loadable.
pub const BUNDLE_V2_VERSION: u32 = 2;

/// Legacy binary version (fused-row corpus block, no norms block); still
/// loadable.
pub const BUNDLE_V3_VERSION: u32 = 3;

/// Legacy sharded version: a shard manifest (shard count, assignment,
/// per-shard id maps and byte offsets) followed by one v3 payload per
/// shard.  Still loadable (routing summaries are derived on load); no
/// longer written.
pub const BUNDLE_V4_VERSION: u32 = 4;

/// Version written by [`save`]: the v3 layout plus an explicit
/// segment-norms block between the fused rows and the default weights.
pub const BUNDLE_V5_VERSION: u32 = 5;

/// Version written by [`save_sharded`]: the v4 manifest plus a per-shard
/// routing-summary section (centroid row + residual radii) between the id
/// maps and the payload offset table.
pub const BUNDLE_V6_VERSION: u32 = 6;

/// Version written by [`save_quantized`]: an offset-table layout carrying
/// both the f32 fused rows *and* their SQ8 companion (codes + per-segment
/// quantization parameters), with every section 32-byte aligned so the
/// loader can borrow the code section zero-copy from one read buffer.
pub const BUNDLE_V7_VERSION: u32 = 7;

/// Magic bytes opening every binary bundle (v2, v3, v5, and the sharded
/// v4/v6); [`load`] uses them to tell the binary formats from v1 JSON.
pub const BUNDLE_V2_MAGIC: [u8; 8] = *b"MUSTBNDL";

/// Sanity cap on the shard count of a v4/v6 manifest.
const MAX_SHARDS: u64 = 1 << 16;

/// Number of sections in a v7 offset table (rows, norms, weights, codes,
/// quantization parameters, index).
const V7_SECTIONS: usize = 6;

/// Alignment (bytes) of every v7 section, relative to the first byte after
/// the offset table.
const V7_ALIGN: u64 = 32;

/// Index-block tag: flat graph in CSR form.
const INDEX_TAG_CSR: u8 = 0;
/// Index-block tag: layered HNSW in flattened form.
const INDEX_TAG_HNSW: u8 = 1;

/// Sanity cap on any length prefix (elements).  Decoders additionally
/// never pre-allocate more than [`MAX_PREALLOC`] elements up front, so a
/// corrupt header cannot trigger a huge allocation — memory grows only as
/// real bytes are decoded, and a truncated file fails at its first
/// missing byte.
const MAX_ELEMS: u64 = 1 << 31;

/// Upper bound on speculative `Vec` pre-allocation while decoding.
const MAX_PREALLOC: usize = 1 << 20;

fn io<E: std::fmt::Display>(ctx: &str) -> impl FnOnce(E) -> MustError + '_ {
    move |e| MustError::Io(format!("{ctx}: {e}"))
}

// ---------------------------------------------------------------------------
// Little-endian primitives.

fn wr_u8(w: &mut impl Write, v: u8) -> Result<(), MustError> {
    w.write_all(&[v]).map_err(io("write u8"))
}

fn wr_u32(w: &mut impl Write, v: u32) -> Result<(), MustError> {
    w.write_all(&v.to_le_bytes()).map_err(io("write u32"))
}

fn wr_u64(w: &mut impl Write, v: u64) -> Result<(), MustError> {
    w.write_all(&v.to_le_bytes()).map_err(io("write u64"))
}

/// Writes a 4-byte-word block through a shared chunk buffer.
fn wr_words<T: Copy>(
    w: &mut impl Write,
    vs: &[T],
    enc: impl Fn(T) -> [u8; 4],
) -> Result<(), MustError> {
    let mut buf = Vec::with_capacity(vs.len().min(1 << 16) * 4);
    for chunk in vs.chunks(1 << 16) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&enc(v));
        }
        w.write_all(&buf).map_err(io("write block"))?;
    }
    Ok(())
}

/// Writes a length-prefixed `u32` array.
fn wr_u32s(w: &mut impl Write, vs: &[u32]) -> Result<(), MustError> {
    wr_u64(w, vs.len() as u64)?;
    wr_words(w, vs, u32::to_le_bytes)
}

fn rd_u8(r: &mut impl Read) -> Result<u8, MustError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b).map_err(io("read u8"))?;
    Ok(b[0])
}

fn rd_u32(r: &mut impl Read) -> Result<u32, MustError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(io("read u32"))?;
    Ok(u32::from_le_bytes(b))
}

fn rd_u64(r: &mut impl Read) -> Result<u64, MustError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(io("read u64"))?;
    Ok(u64::from_le_bytes(b))
}

fn checked_len(len: u64, what: &str) -> Result<usize, MustError> {
    if len >= MAX_ELEMS {
        return Err(MustError::Io(format!("corrupt {what} length {len}")));
    }
    Ok(len as usize)
}

/// Reads `len` 4-byte words, decoding each through `dec`.  Pre-allocation
/// is capped at [`MAX_PREALLOC`]: a corrupt length prefix costs at most
/// that much memory before the reader hits EOF and errors.
fn rd_words<T>(
    r: &mut impl Read,
    len: usize,
    what: &str,
    dec: impl Fn([u8; 4]) -> T,
) -> Result<Vec<T>, MustError> {
    let mut out = Vec::with_capacity(len.min(MAX_PREALLOC));
    let mut buf = vec![0u8; (1 << 16) * 4];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(1 << 16);
        let bytes = &mut buf[..take * 4];
        r.read_exact(bytes).map_err(io(what))?;
        out.extend(bytes.chunks_exact(4).map(|c| dec([c[0], c[1], c[2], c[3]])));
        remaining -= take;
    }
    Ok(out)
}

fn rd_u32s(r: &mut impl Read, what: &str) -> Result<Vec<u32>, MustError> {
    let len = checked_len(rd_u64(r)?, what)?;
    rd_words(r, len, what, u32::from_le_bytes)
}

/// Writes a length-prefixed `f32` array (the v6 summary blocks).
fn wr_f32s(w: &mut impl Write, vs: &[f32]) -> Result<(), MustError> {
    wr_u64(w, vs.len() as u64)?;
    wr_words(w, vs, f32::to_le_bytes)
}

fn rd_f32s(r: &mut impl Read, what: &str) -> Result<Vec<f32>, MustError> {
    let len = checked_len(rd_u64(r)?, what)?;
    rd_words(r, len, what, f32::from_le_bytes)
}

// ---------------------------------------------------------------------------
// Bundle v2: save.

/// Neither wire format records tombstones: a bundle is a frozen snapshot
/// of what the index *serves*.  Persisting an instance with live
/// tombstones would silently resurrect the deleted objects on load, so
/// both save paths refuse it — rebuild (Section IX) before persisting.
fn reject_tombstones(must: &Must) -> Result<(), MustError> {
    if must.deleted_count() > 0 {
        return Err(MustError::Config(format!(
            "{} tombstoned object(s) cannot be persisted; rebuild the index first \
             (bundles are frozen snapshots, paper Section IX)",
            must.deleted_count()
        )));
    }
    Ok(())
}

/// Serialises `must` to `path` in the bundle-v5 binary format.  Every
/// backend is persistable: flat-graph indexes freeze to CSR arrays, HNSW
/// to its flattened layered form.  The corpus block is the raw unscaled
/// fused-row buffer (padding included) followed by its segment-norms
/// block, so [`load`] reconstructs the storage engine with two bulk reads
/// and no recomputation; the default weights travel as their own block,
/// never baked into the rows.
///
/// # Errors
/// [`MustError::Io`] for file-system and encoding failures;
/// [`MustError::Config`] if `must` carries live tombstones (bundles are
/// frozen snapshots — rebuild before persisting).
pub fn save(must: &Must, path: &Path) -> Result<(), MustError> {
    reject_tombstones(must)?;
    let file = std::fs::File::create(path)
        .map_err(|e| MustError::Io(format!("create {}: {e}", path.display())))?;
    let mut w = BufWriter::new(file);
    w.write_all(&BUNDLE_V2_MAGIC).map_err(io("write magic"))?;
    wr_u32(&mut w, BUNDLE_V5_VERSION)?;
    write_binary_body(must, &mut w, true)?;
    w.flush().map_err(io("flush"))?;
    Ok(())
}

/// Writes the v3 payload (everything after magic + version) — the shard
/// payload format of the v4 manifest, which pins its payloads to v3.
fn write_v3_body(must: &Must, w: &mut impl Write) -> Result<(), MustError> {
    write_binary_body(must, w, false)
}

/// Writes a binary payload (everything after magic + version): prune
/// flag, fused-row corpus block, the segment-norms block when
/// `with_norms` (v5), default weights, index block.
fn write_binary_body(must: &Must, w: &mut impl Write, with_norms: bool) -> Result<(), MustError> {
    wr_u8(w, must.prune() as u8)?;

    // Corpus: the raw (unscaled) fused rows, exactly as they sit in
    // memory — dims, lane width, then n·stride floats.
    let rows = must.objects().fused();
    wr_u32(w, rows.num_modalities() as u32)?;
    for &d in rows.dims() {
        wr_u32(w, d as u32)?;
    }
    wr_u32(w, FUSED_LANE as u32)?;
    wr_u64(w, rows.len() as u64)?;
    wr_words(w, rows.raw_data(), |x| x.to_le_bytes())?;

    // Segment norms (v5): n·m floats, length implied by the header.
    if with_norms {
        wr_words(w, rows.seg_norms(), |x| x.to_le_bytes())?;
    }

    // Default weights (raw omega; squared form is recomputed on load).
    wr_words(w, must.weights().raw(), |x| x.to_le_bytes())?;

    // Index block.
    write_index_block(must, w)
}

/// Writes the index block (tag byte + backend-specific arrays) — shared by
/// the v3/v5 body writer and the v7 index section.
fn write_index_block(must: &Must, w: &mut impl Write) -> Result<(), MustError> {
    match must.index() {
        MustIndex::Flat(g) => {
            let csr = CsrGraph::from_graph(g);
            wr_u8(w, INDEX_TAG_CSR)?;
            wr_u32(w, csr.seed())?;
            wr_u32s(w, csr.offsets())?;
            wr_u32s(w, csr.edges())?;
        }
        MustIndex::Hnsw(h) => {
            let flat = h.to_flat();
            wr_u8(w, INDEX_TAG_HNSW)?;
            wr_u32(w, flat.entry)?;
            wr_u32(w, flat.max_level)?;
            wr_u32(w, flat.m)?;
            wr_u32(w, flat.ef_construction)?;
            wr_u64(w, flat.rng_seed)?;
            wr_u32s(w, &flat.levels)?;
            wr_u32s(w, &flat.offsets)?;
            wr_u32s(w, &flat.edges)?;
        }
    }
    Ok(())
}

/// Reads the index block written by [`write_index_block`].
fn read_index_block(
    r: &mut impl Read,
) -> Result<(MustIndex, must_graph::GraphRecipe), MustError> {
    let tag = rd_u8(r)?;
    match tag {
        INDEX_TAG_CSR => {
            let seed = rd_u32(r)?;
            let offsets = rd_u32s(r, "CSR offsets")?;
            let edges = rd_u32s(r, "CSR edges")?;
            let csr = CsrGraph::from_parts(offsets, edges, seed)
                .map_err(|e| MustError::Config(format!("corrupt CSR block: {e}")))?;
            Ok((MustIndex::Flat(csr.to_graph()), must_graph::GraphRecipe::Fused))
        }
        INDEX_TAG_HNSW => {
            let entry = rd_u32(r)?;
            let max_level = rd_u32(r)?;
            let m_param = rd_u32(r)?;
            let ef_construction = rd_u32(r)?;
            let rng_seed = rd_u64(r)?;
            let levels = rd_u32s(r, "HNSW levels")?;
            let offsets = rd_u32s(r, "HNSW offsets")?;
            let edges = rd_u32s(r, "HNSW edges")?;
            let flat = HnswFlat {
                levels,
                offsets,
                edges,
                entry,
                max_level,
                m: m_param,
                ef_construction,
                rng_seed,
            };
            let h = Hnsw::from_flat(&flat)
                .map_err(|e| MustError::Config(format!("corrupt HNSW block: {e}")))?;
            Ok((MustIndex::Hnsw(h), must_graph::GraphRecipe::Hnsw))
        }
        other => Err(MustError::Config(format!("unknown index tag {other}"))),
    }
}

/// Serialises `must` to `path` in the legacy v1 JSON format.  Only
/// flat-graph backends are expressible in v1 (its schema predates the
/// HNSW layer export).
///
/// # Errors
/// [`MustError::Config`] for HNSW backends and live tombstones;
/// [`MustError::Io`] for file-system and serialisation failures.
pub fn save_json(must: &Must, path: &Path) -> Result<(), MustError> {
    reject_tombstones(must)?;
    let graph = must
        .index()
        .graph()
        .ok_or_else(|| MustError::Config("v1 JSON bundles cannot express HNSW; use save()".into()))?;
    let bundle = MustBundle {
        version: BUNDLE_VERSION,
        objects: must.objects().clone(),
        weights: must.weights().clone(),
        graph: CsrGraph::from_graph(graph),
        prune: must.prune(),
    };
    let file = std::fs::File::create(path)
        .map_err(|e| MustError::Io(format!("create {}: {e}", path.display())))?;
    let mut w = BufWriter::new(file);
    serde_json::to_writer(&mut w, &bundle).map_err(io("serialise"))?;
    w.flush().map_err(io("flush"))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Bundle v7: the quantized offset-table format.

/// Serialises `must` to `path` in the bundle-v7 format, carrying both the
/// exact f32 fused rows and their SQ8 companion engine.  Uses the engine
/// already attached via [`Must::quantize`] when present; otherwise
/// quantizes on the fly (the instance itself is not mutated).
///
/// The body is an offset table over six 32-byte-aligned sections (rows,
/// segment norms, default weights, codes, quantization parameters, index),
/// so [`load`] can slurp the file once and borrow the code section
/// zero-copy.  A v7 bundle loads into a [`Must`] that serves the
/// quantized-scan + exact-re-rank path out of the box.
///
/// # Errors
/// [`MustError::Io`] for file-system and encoding failures;
/// [`MustError::Config`] for live tombstones (bundles are frozen
/// snapshots) or a stale attached engine that no longer mirrors the
/// corpus.
pub fn save_quantized(must: &Must, path: &Path) -> Result<(), MustError> {
    reject_tombstones(must)?;
    let built;
    let quant = match must.quant() {
        Some(q) => q,
        None => {
            built = must.objects().fused().quantize();
            &built
        }
    };
    let rows = must.objects().fused();
    let (n, m, stride) = (rows.len(), rows.num_modalities(), rows.stride());
    if quant.len() != n || quant.dims() != rows.dims() {
        return Err(MustError::Config(
            "attached quantized engine does not mirror the corpus".into(),
        ));
    }

    // The index section is written through the shared block writer, so its
    // byte length is only known after serialising it once up front.
    let mut index_bytes = Vec::new();
    write_index_block(must, &mut index_bytes)?;

    // Flatten the quantization parameters: (min, step, eps) per
    // (row, modality), row-major.
    let mut qparams = Vec::with_capacity(n * m * 3);
    for p in quant.params() {
        qparams.extend_from_slice(&[p.min, p.step, p.eps]);
    }

    let lens: [u64; V7_SECTIONS] = [
        (n * stride * 4) as u64, // fused rows, f32
        (n * m * 4) as u64,      // segment norms, f32
        (m * 4) as u64,          // default weights, f32
        (n * stride) as u64,     // SQ8 codes, u8
        (n * m * 12) as u64,     // quantization parameters, 3 f32 each
        index_bytes.len() as u64,
    ];
    let mut offs = [0u64; V7_SECTIONS];
    let mut cursor = 0u64;
    for (off, len) in offs.iter_mut().zip(lens) {
        cursor = cursor.div_ceil(V7_ALIGN) * V7_ALIGN;
        *off = cursor;
        cursor += len;
    }

    let file = std::fs::File::create(path)
        .map_err(|e| MustError::Io(format!("create {}: {e}", path.display())))?;
    let mut w = BufWriter::new(file);
    w.write_all(&BUNDLE_V2_MAGIC).map_err(io("write magic"))?;
    wr_u32(&mut w, BUNDLE_V7_VERSION)?;
    wr_u8(&mut w, must.prune() as u8)?;
    wr_u32(&mut w, m as u32)?;
    for &d in rows.dims() {
        wr_u32(&mut w, d as u32)?;
    }
    wr_u32(&mut w, FUSED_LANE as u32)?;
    wr_u64(&mut w, n as u64)?;
    wr_u32(&mut w, V7_SECTIONS as u32)?;
    for (off, len) in offs.iter().zip(lens) {
        wr_u64(&mut w, *off)?;
        wr_u64(&mut w, len)?;
    }

    fn pad(w: &mut impl Write, gap: u64) -> Result<(), MustError> {
        const ZEROS: [u8; V7_ALIGN as usize] = [0u8; V7_ALIGN as usize];
        w.write_all(&ZEROS[..gap as usize]).map_err(io("write padding"))
    }
    let mut written = 0u64;
    pad(&mut w, offs[0] - written)?;
    wr_words(&mut w, rows.raw_data(), f32::to_le_bytes)?;
    written = offs[0] + lens[0];
    pad(&mut w, offs[1] - written)?;
    wr_words(&mut w, rows.seg_norms(), f32::to_le_bytes)?;
    written = offs[1] + lens[1];
    pad(&mut w, offs[2] - written)?;
    wr_words(&mut w, must.weights().raw(), f32::to_le_bytes)?;
    written = offs[2] + lens[2];
    pad(&mut w, offs[3] - written)?;
    w.write_all(quant.raw_codes()).map_err(io("write codes"))?;
    written = offs[3] + lens[3];
    pad(&mut w, offs[4] - written)?;
    wr_words(&mut w, &qparams, f32::to_le_bytes)?;
    written = offs[4] + lens[4];
    pad(&mut w, offs[5] - written)?;
    w.write_all(&index_bytes).map_err(io("write index"))?;
    w.flush().map_err(io("flush"))?;
    Ok(())
}

fn f32s_from_bytes(b: &[u8]) -> Vec<f32> {
    b.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

/// Reads a v7 payload (everything after magic + version) into a
/// ready-to-search [`Must`] with the SQ8 engine attached.  The whole body
/// is read into one buffer; the code section is *borrowed* out of it
/// zero-copy (copy-on-write: a later `insert_object` promotes it).
fn read_v7_body(r: &mut impl Read) -> Result<Must, MustError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes).map_err(io("read v7 bundle"))?;
    let buf = Arc::new(bytes);
    let mut s: &[u8] = &buf;

    let prune = rd_u8(&mut s)? != 0;
    let m = checked_len(rd_u32(&mut s)? as u64, "modality count")?;
    if m == 0 {
        return Err(MustError::Config("bundle has no modalities".into()));
    }
    let mut dims = Vec::with_capacity(m.min(MAX_PREALLOC));
    for mi in 0..m {
        let dim = checked_len(rd_u32(&mut s)? as u64, "dimension")?;
        if dim == 0 {
            return Err(MustError::Config(format!("modality {mi} has zero dimension")));
        }
        dims.push(dim);
    }
    let lane = rd_u32(&mut s)? as usize;
    if lane != FUSED_LANE {
        return Err(MustError::Config(format!(
            "bundle written with fused lane {lane}, this build uses {FUSED_LANE}"
        )));
    }
    let stride: usize = dims.iter().map(|d| d.div_ceil(lane) * lane).sum();
    let n = checked_len(rd_u64(&mut s)?, "cardinality")?;
    n.checked_mul(stride)
        .filter(|t| (*t as u64) < MAX_ELEMS)
        .ok_or_else(|| MustError::Io("corrupt fused block size".into()))?;
    let n_sections = rd_u32(&mut s)? as usize;
    if n_sections != V7_SECTIONS {
        return Err(MustError::Config(format!(
            "v7 bundle declares {n_sections} sections (expected {V7_SECTIONS})"
        )));
    }
    // A truncated offset table fails right here with an I/O error.
    let mut table = [(0u64, 0u64); V7_SECTIONS];
    for entry in &mut table {
        *entry = (rd_u64(&mut s)?, rd_u64(&mut s)?);
    }
    let body_start = buf.len() - s.len();
    let body = &buf[body_start..];

    // Every section length is implied by the header; the table must agree.
    let expect: [u64; V7_SECTIONS] = [
        (n * stride * 4) as u64,
        (n * m * 4) as u64,
        (m * 4) as u64,
        (n * stride) as u64,
        (n * m * 12) as u64,
        table[5].1, // the index section is the only variable-length one
    ];
    let mut prev_end = 0u64;
    for (i, (&(off, len), &want)) in table.iter().zip(&expect).enumerate() {
        if len != want {
            return Err(MustError::Config(format!(
                "v7 section {i} holds {len} bytes (expected {want})"
            )));
        }
        if off % V7_ALIGN != 0 {
            return Err(MustError::Config(format!(
                "v7 section {i} offset {off} is not {V7_ALIGN}-byte aligned"
            )));
        }
        if off < prev_end {
            return Err(MustError::Config(format!(
                "v7 section {i} at offset {off} overlaps the previous section"
            )));
        }
        prev_end = off
            .checked_add(len)
            .ok_or_else(|| MustError::Config(format!("v7 section {i} offset overflows")))?;
    }
    if prev_end > body.len() as u64 {
        return Err(MustError::Io(format!(
            "v7 sections need {prev_end} bytes but only {} remain (truncated bundle)",
            body.len()
        )));
    }
    let sect = |i: usize| {
        let (off, len) = table[i];
        &body[off as usize..(off + len) as usize]
    };

    let data = f32s_from_bytes(sect(0));
    let norms = f32s_from_bytes(sect(1));
    let rows = FusedRows::from_raw_parts_with_norms(dims.clone(), data, norms.clone())
        .map_err(|e| MustError::Config(e.to_string()))?;
    let objects = MultiVectorSet::from_fused(rows);
    let weights = Weights::new(f32s_from_bytes(sect(2))).map_err(MustError::Vector)?;
    // The codes stay inside the read buffer: slice them zero-copy.
    let codes = CodeStore::shared(
        Arc::clone(&buf),
        body_start + table[3].0 as usize,
        table[3].1 as usize,
    )
    .map_err(|e| MustError::Config(format!("v7 code section: {e}")))?;
    let params: Vec<SegParams> = f32s_from_bytes(sect(4))
        .chunks_exact(3)
        .map(|c| SegParams { min: c[0], step: c[1], eps: c[2] })
        .collect();
    let quant = QuantizedRows::from_parts(dims, codes, params, norms)
        .map_err(|e| MustError::Config(format!("v7 quantized engine: {e}")))?;

    let mut ir = sect(5);
    let (index, recipe) = read_index_block(&mut ir)?;
    if !ir.is_empty() {
        return Err(MustError::Config(format!(
            "v7 index section has {} trailing byte(s)",
            ir.len()
        )));
    }

    let mut must = Must::from_parts(
        objects,
        weights,
        index,
        MustBuildOptions { prune, recipe, ..Default::default() },
    )?;
    must.attach_quant(quant)?;
    Ok(must)
}

// ---------------------------------------------------------------------------
// Load (both formats).

/// Loads a single-shard bundle from `path` into a ready-to-search
/// [`Must`], accepting the v7 quantized format, the v5/v3/v2 binary
/// formats, and legacy v1 JSON (sniffed via the magic bytes).  Sharded
/// v4/v6 bundles are rejected with a pointer at [`load_sharded`], which
/// accepts all of them.
///
/// # Errors
/// [`MustError::Io`] for file-system and decoding failures;
/// [`MustError::Config`] for unsupported versions and inconsistent
/// bundles.
pub fn load(path: &Path) -> Result<Must, MustError> {
    let file = std::fs::File::open(path)
        .map_err(|e| MustError::Io(format!("open {}: {e}", path.display())))?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io("read header"))?;
    if magic == BUNDLE_V2_MAGIC {
        let version = rd_u32(&mut r)?;
        if version == BUNDLE_V4_VERSION || version == BUNDLE_V6_VERSION {
            return Err(MustError::Config(format!(
                "bundle v{version} is sharded; load it via persist::load_sharded or \
                 ShardedServer::load"
            )));
        }
        if version == BUNDLE_V7_VERSION {
            return read_v7_body(&mut r);
        }
        return read_binary_body(&mut r, version);
    }
    // Not a binary bundle: re-parse the whole file as v1 JSON.
    drop(r);
    let file = std::fs::File::open(path)
        .map_err(|e| MustError::Io(format!("open {}: {e}", path.display())))?;
    let bundle: MustBundle =
        serde_json::from_reader(BufReader::new(file)).map_err(io("parse v1 JSON"))?;
    if bundle.version != BUNDLE_VERSION {
        return Err(MustError::Config(format!(
            "unsupported bundle version {} (expected {BUNDLE_VERSION})",
            bundle.version
        )));
    }
    if bundle.graph.len() != bundle.objects.len() {
        return Err(MustError::Config(format!(
            "bundle graph covers {} vertices but corpus has {} objects",
            bundle.graph.len(),
            bundle.objects.len()
        )));
    }
    Must::from_prebuilt(
        bundle.objects,
        bundle.weights,
        bundle.graph.to_graph(),
        MustBuildOptions { prune: bundle.prune, ..Default::default() },
    )
}

/// Reads a v2/v3/v5 payload (everything after magic + version) into a
/// ready-to-search [`Must`].
fn read_binary_body(r: &mut impl Read, version: u32) -> Result<Must, MustError> {
    if version != BUNDLE_V2_VERSION && version != BUNDLE_V3_VERSION && version != BUNDLE_V5_VERSION
    {
        return Err(MustError::Config(format!(
            "unsupported bundle version {version} (expected {BUNDLE_V2_VERSION}, \
             {BUNDLE_V3_VERSION}, or {BUNDLE_V5_VERSION})"
        )));
    }
    let prune = rd_u8(r)? != 0;

    let m = checked_len(rd_u32(r)? as u64, "modality count")?;
    if m == 0 {
        return Err(MustError::Config("bundle has no modalities".into()));
    }
    let objects = if version >= BUNDLE_V3_VERSION {
        // v3/v5: the corpus block *is* the fused-row buffer — read it in
        // one sweep and hand it to the engine, no per-modality re-copy.
        let mut dims = Vec::with_capacity(m.min(MAX_PREALLOC));
        for mi in 0..m {
            let dim = checked_len(rd_u32(r)? as u64, "dimension")?;
            if dim == 0 {
                return Err(MustError::Config(format!("modality {mi} has zero dimension")));
            }
            dims.push(dim);
        }
        let lane = rd_u32(r)? as usize;
        if lane != FUSED_LANE {
            return Err(MustError::Config(format!(
                "bundle written with fused lane {lane}, this build uses {FUSED_LANE}"
            )));
        }
        let stride: usize = dims.iter().map(|d| d.div_ceil(lane) * lane).sum();
        let n = checked_len(rd_u64(r)?, "cardinality")?;
        let total = n
            .checked_mul(stride)
            .filter(|t| (*t as u64) < MAX_ELEMS)
            .ok_or_else(|| MustError::Io("corrupt fused block size".into()))?;
        let data = rd_words(r, total, "fused row block", f32::from_le_bytes)?;
        let rows = if version == BUNDLE_V5_VERSION {
            // v5 carries the norms explicitly; adopt them verbatim.
            let norms = rd_words(r, n * m, "segment norm block", f32::from_le_bytes)?;
            FusedRows::from_raw_parts_with_norms(dims, data, norms)
        } else {
            // v3 predates the norms block; re-derive them from the rows.
            FusedRows::from_raw_parts(dims, data)
        }
        .map_err(|e| MustError::Config(e.to_string()))?;
        MultiVectorSet::from_fused(rows)
    } else {
        // v2: per-modality blocks, fused at load.
        let mut modalities = Vec::with_capacity(m.min(MAX_PREALLOC));
        for mi in 0..m {
            let dim = checked_len(rd_u32(r)? as u64, "dimension")?;
            if dim == 0 {
                return Err(MustError::Config(format!("modality {mi} has zero dimension")));
            }
            let n = checked_len(rd_u64(r)?, "cardinality")?;
            let total = n
                .checked_mul(dim)
                .filter(|t| (*t as u64) < MAX_ELEMS)
                .ok_or_else(|| MustError::Io("corrupt vector block size".into()))?;
            let data = rd_words(r, total, "vector block", f32::from_le_bytes)?;
            modalities.push(
                VectorSet::from_flat(dim, data).map_err(|e| MustError::Config(e.to_string()))?,
            );
        }
        MultiVectorSet::new(modalities).map_err(MustError::Vector)?
    };

    let omega = rd_words(r, m, "weights", f32::from_le_bytes)?;
    let weights = Weights::new(omega).map_err(MustError::Vector)?;

    let (index, recipe) = read_index_block(r)?;

    Must::from_parts(objects, weights, index, MustBuildOptions { prune, recipe, ..Default::default() })
}

// ---------------------------------------------------------------------------
// Bundle v4: the sharded manifest.

/// `Read` adapter that tracks the absolute byte position, so the v4 loader
/// can verify each shard payload starts exactly where the manifest says.
struct CountingReader<R> {
    inner: R,
    pos: u64,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.pos += n as u64;
        Ok(n)
    }
}

/// Serialises a [`ShardedMust`] to `path` in the bundle-v6 format: the
/// shared magic, version 6, then a **manifest** (shard count, assignment
/// tag, per-shard local→global id maps, per-shard routing summaries,
/// per-shard absolute byte offsets) followed by one v3 payload per shard.
/// Summaries are persisted verbatim rather than re-derived on load:
/// dynamic insertions widen a shard's residual radii around the *fixed*
/// build-time centroid, and that growth must survive a round-trip for
/// routed searches to keep finding the inserted objects.  A whole sharded
/// deployment round-trips through one file; [`load_sharded`] (and
/// [`crate::shard::ShardedServer::load`]) reads it back:
///
/// ```
/// use must_core::framework::MustBuildOptions;
/// use must_core::persist::{load_sharded, save_sharded};
/// use must_core::shard::{ShardSpec, ShardedMust};
/// use must_vector::{MultiVectorSet, VectorSetBuilder, Weights};
///
/// let mut m0 = VectorSetBuilder::new(4, 10);
/// for i in 0..10 {
///     m0.push_normalized(&[1.0, i as f32, 0.5, 0.25]).unwrap();
/// }
/// let objects = MultiVectorSet::new(vec![m0.finish()]).unwrap();
/// let sharded = ShardedMust::build(
///     objects, Weights::uniform(1), MustBuildOptions::default(), ShardSpec::new(2),
/// ).unwrap();
/// let path = std::env::temp_dir().join(format!("doc-v6-{}.mustb", std::process::id()));
/// save_sharded(&sharded, &path).unwrap();
/// let loaded = load_sharded(&path).unwrap();
/// std::fs::remove_file(&path).unwrap();
/// assert_eq!(loaded.num_shards(), 2);
/// assert_eq!(loaded.global_ids(0), sharded.global_ids(0));
/// assert_eq!(loaded.summary(1), sharded.summary(1));
/// ```
///
/// # Errors
/// [`MustError::Io`] for file-system and encoding failures;
/// [`MustError::Config`] if any shard carries live tombstones (bundles are
/// frozen snapshots — rebuild first, exactly as [`save`] requires).
pub fn save_sharded(sharded: &ShardedMust, path: &Path) -> Result<(), MustError> {
    write_sharded(sharded, path, BUNDLE_V6_VERSION)
}

/// [`save_sharded`] parametrised over the manifest version, so tests can
/// still produce v4 bundles and pin the legacy load path.
fn write_sharded(sharded: &ShardedMust, path: &Path, version: u32) -> Result<(), MustError> {
    use std::io::{Seek, SeekFrom};

    let s = sharded.num_shards();
    for i in 0..s {
        reject_tombstones(sharded.shard(i))?;
    }
    let file = std::fs::File::create(path)
        .map_err(|e| MustError::Io(format!("create {}: {e}", path.display())))?;
    let mut w = BufWriter::new(file);
    w.write_all(&BUNDLE_V2_MAGIC).map_err(io("write magic"))?;
    wr_u32(&mut w, version)?;
    wr_u32(&mut w, s as u32)?;
    wr_u8(&mut w, sharded.assignment().tag())?;
    for i in 0..s {
        wr_u32s(&mut w, sharded.global_ids(i))?;
    }
    if version >= BUNDLE_V6_VERSION {
        for i in 0..s {
            let summary = sharded.summary(i);
            wr_f32s(&mut w, summary.centroid())?;
            wr_f32s(&mut w, summary.radii())?;
        }
    }
    // Stream the payloads (the corpus-sized part of the bundle) straight
    // to the file — never a second in-memory copy — recording where each
    // lands, then seek back and patch the placeholder offset table.
    let offsets_at = w.stream_position().map_err(io("tell offsets"))?;
    for _ in 0..s {
        wr_u64(&mut w, 0)?;
    }
    let mut offsets = Vec::with_capacity(s);
    for i in 0..s {
        offsets.push(w.stream_position().map_err(io("tell payload"))?);
        write_v3_body(sharded.shard(i), &mut w)?;
    }
    w.seek(SeekFrom::Start(offsets_at)).map_err(io("seek to offsets"))?;
    for offset in offsets {
        wr_u64(&mut w, offset)?;
    }
    w.flush().map_err(io("flush"))?;
    Ok(())
}

/// Loads *any* bundle from `path` into a [`ShardedMust`]: the sharded
/// v6/v4 manifests directly (v6 adopts its persisted routing summaries;
/// v4 — and every pre-v6 format — derives them from the shard rows), and
/// every single-shard format (v5/v3/v2 binary, v1 JSON) as one shard with
/// the identity id map — so a sharded deployment can adopt existing
/// bundles without a rewrite.
///
/// # Errors
/// [`MustError::Io`] for file-system and decoding failures;
/// [`MustError::Config`] for unsupported versions, corrupt manifests
/// (bad assignment tag, overlapping id maps, payloads not at their
/// recorded offsets), and inconsistent shard payloads.
pub fn load_sharded(path: &Path) -> Result<ShardedMust, MustError> {
    let file = std::fs::File::open(path)
        .map_err(|e| MustError::Io(format!("open {}: {e}", path.display())))?;
    let mut r = CountingReader { inner: BufReader::new(file), pos: 0 };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(io("read header"))?;
    if magic == BUNDLE_V2_MAGIC {
        let version = rd_u32(&mut r)?;
        if version == BUNDLE_V4_VERSION || version == BUNDLE_V6_VERSION {
            return read_sharded_body(&mut r, version);
        }
    }
    // Any single-shard format: defer to `load` (which re-sniffs from the
    // start) and wrap the result as one shard covering ids 0..n.
    drop(r);
    let must = load(path)?;
    let n = must.objects().len() as u32;
    ShardedMust::from_parts(vec![must], vec![(0..n).collect()], ShardAssignment::RoundRobin)
}

/// Reads a v4/v6 manifest + payloads (everything after magic + version).
fn read_sharded_body(
    r: &mut CountingReader<impl Read>,
    version: u32,
) -> Result<ShardedMust, MustError> {
    let shard_count = u64::from(rd_u32(r)?);
    if shard_count == 0 || shard_count > MAX_SHARDS {
        return Err(MustError::Config(format!("corrupt shard count {shard_count}")));
    }
    let s = shard_count as usize;
    let assignment = ShardAssignment::from_tag(rd_u8(r)?)
        .ok_or_else(|| MustError::Config("unknown shard assignment tag".into()))?;
    let mut global_ids = Vec::with_capacity(s.min(MAX_PREALLOC));
    for _ in 0..s {
        global_ids.push(rd_u32s(r, "shard id map")?);
    }
    let summaries = if version >= BUNDLE_V6_VERSION {
        let mut summaries = Vec::with_capacity(s.min(MAX_PREALLOC));
        for _ in 0..s {
            let centroid = rd_f32s(r, "summary centroid")?;
            let radii = rd_f32s(r, "summary radii")?;
            summaries.push(ShardSummary::from_parts(centroid, radii)?);
        }
        Some(summaries)
    } else {
        None
    };
    let mut offsets = Vec::with_capacity(s.min(MAX_PREALLOC));
    for _ in 0..s {
        offsets.push(rd_u64(r)?);
    }
    let mut shards = Vec::with_capacity(s.min(MAX_PREALLOC));
    for (i, &offset) in offsets.iter().enumerate() {
        if r.pos != offset {
            return Err(MustError::Config(format!(
                "shard {i} payload recorded at byte {offset} but reader is at {}",
                r.pos
            )));
        }
        shards.push(read_binary_body(r, BUNDLE_V3_VERSION)?);
    }
    match summaries {
        Some(sums) => ShardedMust::from_parts_with_summaries(shards, global_ids, assignment, sums),
        // Pre-v6 bundles carry no summaries; derive them from the rows.
        None => ShardedMust::from_parts(shards, global_ids, assignment),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_graph::GraphRecipe;
    use must_vector::{MultiQuery, VectorSetBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize) -> MultiVectorSet {
        let mut rng = StdRng::seed_from_u64(13);
        let mut m0 = VectorSetBuilder::new(8, n);
        let mut m1 = VectorSetBuilder::new(4, n);
        for _ in 0..n {
            let v0: Vec<f32> = (0..8).map(|_| rng.random::<f32>() - 0.5).collect();
            let v1: Vec<f32> = (0..4).map(|_| rng.random::<f32>() - 0.5).collect();
            m0.push_normalized(&v0).unwrap();
            m1.push_normalized(&v1).unwrap();
        }
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("must-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn assert_identical_searches(a: &Must, b: &Must, ids: &[u32]) {
        for &id in ids {
            let q = MultiQuery::full(vec![
                a.objects().modality(0).get(id).to_vec(),
                a.objects().modality(1).get(id).to_vec(),
            ]);
            let ra = a.search(&q, 5, 60).unwrap();
            let rb = b.search(&q, 5, 60).unwrap();
            assert_eq!(ra, rb, "loaded index must search identically (query {id})");
        }
    }

    #[test]
    fn binary_save_load_round_trip_preserves_search_results() {
        let set = corpus(200);
        let must =
            Must::build(set, Weights::new(vec![0.8, 0.4]).unwrap(), MustBuildOptions::default())
                .unwrap();
        let path = tmp("bundle-v2.mustb");
        save(&must, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.objects().len(), 200);
        assert_eq!(loaded.weights(), must.weights());
        assert_identical_searches(&must, &loaded, &[3, 77, 150]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_json_save_load_round_trip_still_works() {
        let set = corpus(200);
        let must =
            Must::build(set, Weights::new(vec![0.8, 0.4]).unwrap(), MustBuildOptions::default())
                .unwrap();
        let path = tmp("bundle-v1.json");
        save_json(&must, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.objects().len(), 200);
        assert_eq!(loaded.weights(), must.weights());
        assert_identical_searches(&must, &loaded, &[3, 77, 150]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hnsw_round_trips_through_v2_but_not_v1() {
        let set = corpus(120);
        let must = Must::build(
            set,
            Weights::uniform(2),
            MustBuildOptions { recipe: GraphRecipe::Hnsw, ..Default::default() },
        )
        .unwrap();
        // v1 JSON cannot express the layered form.
        assert!(matches!(save_json(&must, &tmp("hnsw-reject.json")), Err(MustError::Config(_))));
        // v2 binary round-trips it, preserving dynamic insertion support.
        let path = tmp("hnsw-v2.mustb");
        save(&must, &path).unwrap();
        let mut loaded = load(&path).unwrap();
        assert_identical_searches(&must, &loaded, &[5, 60, 119]);
        let new0: Vec<f32> = (0..8).map(|i| if i == 3 { 1.0 } else { 0.01 }).collect();
        let new1: Vec<f32> = (0..4).map(|i| if i == 2 { 1.0 } else { 0.01 }).collect();
        let id = loaded.insert_object(&[new0, new1]).unwrap();
        assert_eq!(id, 120, "reloaded HNSW stays dynamic");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_v3_bundles_still_load() {
        // `save` writes v5 now (rows + explicit norms block); a v3 bundle
        // (rows only, norms re-derived at load) must keep loading and
        // serving identically.  `write_v3_body` is exactly the payload the
        // old saver produced — it still backs every v4 shard payload.
        let set = corpus(110);
        let must =
            Must::build(set, Weights::new(vec![0.7, 0.6]).unwrap(), MustBuildOptions::default())
                .unwrap();
        let path = tmp("legacy-v3.mustb");
        {
            let file = std::fs::File::create(&path).unwrap();
            let mut w = BufWriter::new(file);
            w.write_all(&BUNDLE_V2_MAGIC).unwrap();
            wr_u32(&mut w, BUNDLE_V3_VERSION).unwrap();
            write_v3_body(&must, &mut w).unwrap();
            w.flush().unwrap();
        }
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.objects().len(), 110);
        assert_eq!(loaded.weights(), must.weights());
        assert_eq!(
            loaded.objects().fused().seg_norms(),
            must.objects().fused().seg_norms(),
            "re-derived norms must equal the stored engine's"
        );
        assert_identical_searches(&must, &loaded, &[1, 55, 109]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v5_round_trip_preserves_norms_and_weighted_serving() {
        let set = corpus(90);
        let must =
            Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let path = tmp("bundle-v5-weighted.mustb");
        save(&must, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(
            loaded.objects().fused().seg_norms(),
            must.objects().fused().seg_norms(),
            "v5 adopts the persisted norms verbatim"
        );
        // A weight override over the loaded snapshot serves exactly like
        // one over the in-memory original.
        let a = crate::server::MustServer::freeze(must);
        let b = crate::server::MustServer::freeze(loaded);
        let w = Weights::from_squared(vec![0.85, 0.15]).unwrap();
        for id in [0u32, 44, 89] {
            let q = MultiQuery::full(vec![
                a.objects().modality(0).get(id).to_vec(),
                a.objects().modality(1).get(id).to_vec(),
            ]);
            let ra = a.search_weighted(&q, &w, 5, 60).unwrap();
            let rb = b.search_weighted(&q, &w, 5, 60).unwrap();
            assert_eq!(ra.results, rb.results, "query {id}");
            assert_eq!(ra.stats, rb.stats, "query {id}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_v2_bundles_still_load() {
        // `save` writes v3 now; hand-craft a v2 bundle (per-modality
        // corpus blocks) and check the sniffing loader still accepts it
        // and serves identical results.
        let set = corpus(120);
        let must =
            Must::build(set, Weights::new(vec![0.6, 0.9]).unwrap(), MustBuildOptions::default())
                .unwrap();
        let csr = CsrGraph::from_graph(must.index().graph().expect("flat backend"));
        let path = tmp("legacy-v2.mustb");
        {
            let file = std::fs::File::create(&path).unwrap();
            let mut w = BufWriter::new(file);
            w.write_all(&BUNDLE_V2_MAGIC).unwrap();
            wr_u32(&mut w, BUNDLE_V2_VERSION).unwrap();
            wr_u8(&mut w, must.prune() as u8).unwrap();
            let objects = must.objects();
            wr_u32(&mut w, objects.num_modalities() as u32).unwrap();
            for mi in 0..objects.num_modalities() {
                let m = objects.modality(mi);
                wr_u32(&mut w, m.dim() as u32).unwrap();
                wr_u64(&mut w, m.len() as u64).unwrap();
                let mut flat = Vec::with_capacity(m.len() * m.dim());
                for (_, v) in m.iter() {
                    flat.extend_from_slice(v);
                }
                wr_words(&mut w, &flat, |x: f32| x.to_le_bytes()).unwrap();
            }
            wr_words(&mut w, must.weights().raw(), |x: f32| x.to_le_bytes()).unwrap();
            wr_u8(&mut w, INDEX_TAG_CSR).unwrap();
            wr_u32(&mut w, csr.seed()).unwrap();
            wr_u32s(&mut w, csr.offsets()).unwrap();
            wr_u32s(&mut w, csr.edges()).unwrap();
            w.flush().unwrap();
        }
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.objects().len(), 120);
        assert_eq!(loaded.weights(), must.weights());
        assert_identical_searches(&must, &loaded, &[1, 60, 119]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_is_smaller_than_v1_json() {
        let set = corpus(300);
        let must = Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let p1 = tmp("size-v1.json");
        let p2 = tmp("size-v2.mustb");
        save_json(&must, &p1).unwrap();
        save(&must, &p2).unwrap();
        let s1 = std::fs::metadata(&p1).unwrap().len();
        let s2 = std::fs::metadata(&p2).unwrap().len();
        // v5 carries the explicit norms block (n·m floats) on top of the
        // rows, so the pin is 2x rather than the pre-norms 2.5x.
        assert!(
            s2 * 2 <= s1,
            "binary bundle must be at least 2x smaller than JSON: {s2} vs {s1}"
        );
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p2).unwrap();
    }

    #[test]
    fn corrupt_and_missing_files_error_cleanly() {
        let missing = std::env::temp_dir().join("must-definitely-missing.mustb");
        assert!(matches!(load(&missing), Err(MustError::Io(_))));
        let garbage = tmp("garbage.mustb");
        std::fs::write(&garbage, b"not json and not binary").unwrap();
        assert!(matches!(load(&garbage), Err(MustError::Io(_))));
        // A truncated v2 bundle fails as an I/O error, not a panic.
        let truncated = tmp("truncated.mustb");
        let mut bytes = BUNDLE_V2_MAGIC.to_vec();
        bytes.extend_from_slice(&BUNDLE_V2_VERSION.to_le_bytes());
        std::fs::write(&truncated, bytes).unwrap();
        assert!(matches!(load(&truncated), Err(MustError::Io(_))));
        // A v2 header with an absurd length prefix fails before allocating
        // — including exactly at the cap boundary.
        let huge = tmp("huge.mustb");
        for modality_count in [u32::MAX, 1u32 << 31] {
            let mut bytes = BUNDLE_V2_MAGIC.to_vec();
            bytes.extend_from_slice(&BUNDLE_V2_VERSION.to_le_bytes());
            bytes.push(1); // prune
            bytes.extend_from_slice(&modality_count.to_le_bytes());
            std::fs::write(&huge, bytes).unwrap();
            assert!(matches!(load(&huge), Err(MustError::Io(_))), "count {modality_count}");
        }
        // A plausible header whose *array* length prefix lies (claims far
        // more edges than the file holds) must hit EOF, not OOM: memory is
        // bounded by MAX_PREALLOC regardless of the claimed length.
        let lying = tmp("lying.mustb");
        let mut bytes = BUNDLE_V2_MAGIC.to_vec();
        bytes.extend_from_slice(&BUNDLE_V2_VERSION.to_le_bytes());
        bytes.push(1); // prune
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one modality
        bytes.extend_from_slice(&2u32.to_le_bytes()); // dim 2
        bytes.extend_from_slice(&(1u64 << 29).to_le_bytes()); // n: a lie
        std::fs::write(&lying, bytes).unwrap();
        assert!(matches!(load(&lying), Err(MustError::Io(_))));
        for p in [garbage, truncated, huge, lying] {
            std::fs::remove_file(&p).unwrap();
        }
    }

    #[test]
    fn v7_round_trips_the_quantized_engine_zero_copy() {
        let set = corpus(150);
        let mut must = Must::build(
            set,
            Weights::new(vec![0.8, 0.4]).unwrap(),
            MustBuildOptions { recipe: GraphRecipe::Hnsw, ..Default::default() },
        )
        .unwrap();
        must.quantize();
        let path = tmp("bundle-v7.mustb");
        save_quantized(&must, &path).unwrap();
        let mut loaded = load(&path).unwrap();
        assert_eq!(loaded.objects().len(), 150);
        assert_eq!(loaded.weights(), must.weights());
        assert_eq!(
            loaded.objects().fused().seg_norms(),
            must.objects().fused().seg_norms(),
            "v7 adopts the persisted norms verbatim"
        );
        let (orig, thawed) = (must.quant().unwrap(), loaded.quant().unwrap());
        assert!(thawed.is_shared(), "v7 codes must borrow from the read buffer");
        assert_eq!(thawed.raw_codes(), orig.raw_codes());
        assert_eq!(thawed.params(), orig.params());
        assert_eq!(thawed.seg_norms(), orig.seg_norms());
        assert_identical_searches(&must, &loaded, &[3, 77, 149]);
        // Dynamic insertion after a zero-copy load promotes the shared
        // codes to an owned buffer (copy-on-write) and keeps the engines
        // in lockstep.
        let new0: Vec<f32> = (0..8).map(|i| if i == 1 { 1.0 } else { 0.02 }).collect();
        let new1: Vec<f32> = (0..4).map(|i| if i == 0 { 1.0 } else { 0.02 }).collect();
        let id = loaded.insert_object(&[new0, new1]).unwrap();
        assert_eq!(id, 150);
        let q = loaded.quant().unwrap();
        assert!(!q.is_shared(), "insertion must promote the borrowed codes");
        assert_eq!(q.len(), 151);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v7_saves_without_a_pre_attached_engine() {
        // `save_quantized` quantizes on the fly when the instance never
        // called `quantize()`; the bundle is byte-identical either way.
        let set = corpus(60);
        let mut with = Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let p_without = tmp("bundle-v7-fly.mustb");
        save_quantized(&with, &p_without).unwrap();
        with.quantize();
        let p_with = tmp("bundle-v7-pre.mustb");
        save_quantized(&with, &p_with).unwrap();
        assert_eq!(std::fs::read(&p_without).unwrap(), std::fs::read(&p_with).unwrap());
        let loaded = load(&p_without).unwrap();
        assert!(loaded.quant().is_some());
        for p in [p_without, p_with] {
            std::fs::remove_file(&p).unwrap();
        }
    }

    #[test]
    fn v7_loads_as_one_shard_through_the_sharded_loader() {
        let set = corpus(50);
        let must = Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let path = tmp("bundle-v7-sharded-compat.mustb");
        save_quantized(&must, &path).unwrap();
        let sharded = load_sharded(&path).unwrap();
        assert_eq!(sharded.num_shards(), 1);
        assert_eq!(sharded.len(), 50);
        assert!(sharded.shard(0).quant().is_some(), "the shard keeps its SQ8 engine");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tombstoned_instances_refuse_to_persist() {
        let set = corpus(80);
        let mut must = Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        assert!(must.mark_deleted(42));
        let path = tmp("tombstone.mustb");
        assert!(matches!(save(&must, &path), Err(MustError::Config(_))));
        assert!(matches!(save_json(&must, &path), Err(MustError::Config(_))));
        // Restoring the tombstone makes the instance persistable again.
        assert!(must.restore(42));
        save(&must, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.deleted_count(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn future_version_is_a_config_error() {
        let p = tmp("future.mustb");
        let mut bytes = BUNDLE_V2_MAGIC.to_vec();
        bytes.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&p, bytes).unwrap();
        assert!(matches!(load(&p), Err(MustError::Config(_))));
        std::fs::remove_file(&p).unwrap();
    }

    // -----------------------------------------------------------------
    // Bundle v4 (sharded).

    use crate::shard::{ShardSpec, ShardedServer};

    fn assert_identical_sharded_searches(a: &ShardedServer, corpus: &MultiVectorSet, b: &ShardedServer, ids: &[u32]) {
        for &id in ids {
            let q = MultiQuery::full(vec![
                corpus.modality(0).get(id).to_vec(),
                corpus.modality(1).get(id).to_vec(),
            ]);
            let ra = a.search(&q, 5, 60).unwrap();
            let rb = b.search(&q, 5, 60).unwrap();
            assert_eq!(ra.results, rb.results, "query {id}");
            assert_eq!(ra.stats, rb.stats, "query {id}");
        }
    }

    #[test]
    fn sharded_bundle_v6_round_trips_every_backend() {
        let set = corpus(120);
        for recipe in GraphRecipe::all() {
            let sharded = ShardedMust::build(
                set.clone(),
                Weights::new(vec![0.8, 0.4]).unwrap(),
                MustBuildOptions { gamma: 8, recipe, ..Default::default() },
                ShardSpec::hashed(3),
            )
            .unwrap();
            let path = tmp(&format!("bundle-v6-{}.mustb", recipe.label()));
            save_sharded(&sharded, &path).unwrap();
            let loaded = load_sharded(&path).unwrap();
            assert_eq!(loaded.num_shards(), 3, "{}", recipe.label());
            assert_eq!(loaded.len(), 120, "{}", recipe.label());
            assert_eq!(loaded.assignment(), ShardAssignment::Hash);
            for s in 0..3 {
                assert_eq!(loaded.global_ids(s), sharded.global_ids(s), "{}", recipe.label());
                // v6 carries the summaries verbatim.
                assert_eq!(loaded.summary(s), sharded.summary(s), "{}", recipe.label());
            }
            let direct = ShardedServer::freeze(sharded);
            let thawed = ShardedServer::freeze(loaded);
            assert_identical_sharded_searches(&direct, &set, &thawed, &[2, 61, 119]);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn legacy_v4_bundles_load_with_derived_summaries() {
        let set = corpus(96);
        let sharded = ShardedMust::build(
            set.clone(),
            Weights::new(vec![0.8, 0.4]).unwrap(),
            MustBuildOptions::default(),
            ShardSpec::new(3),
        )
        .unwrap();
        let path = tmp("bundle-v4-legacy.mustb");
        write_sharded(&sharded, &path, BUNDLE_V4_VERSION).unwrap();
        let loaded = load_sharded(&path).unwrap();
        assert_eq!(loaded.num_shards(), 3);
        for s in 0..3 {
            // A v4 manifest has no summary section; the loader derives
            // summaries from the rows, matching a fresh build's exactly.
            assert_eq!(loaded.summary(s), sharded.summary(s));
        }
        let direct = ShardedServer::freeze(sharded);
        let thawed = ShardedServer::freeze(loaded);
        assert_identical_sharded_searches(&direct, &set, &thawed, &[0, 47, 95]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn single_shard_formats_load_as_one_shard() {
        // v3 binary, v2 is covered by the hand-crafted fixture above, and
        // v1 JSON must all come up as a 1-shard deployment with the
        // identity id map.
        let set = corpus(90);
        let must =
            Must::build(set, Weights::new(vec![0.6, 0.9]).unwrap(), MustBuildOptions::default())
                .unwrap();
        let p3 = tmp("sharded-compat-v3.mustb");
        save(&must, &p3).unwrap();
        let p1 = tmp("sharded-compat-v1.json");
        save_json(&must, &p1).unwrap();
        for p in [&p3, &p1] {
            let sharded = load_sharded(p).unwrap();
            assert_eq!(sharded.num_shards(), 1);
            assert_eq!(sharded.len(), 90);
            let want: Vec<u32> = (0..90).collect();
            assert_eq!(sharded.global_ids(0), &want[..]);
            // Pre-v6 bundles carry no summaries: the loader derives one
            // from the rows, identical to computing it directly.
            let derived = crate::shard::ShardSummary::compute(sharded.shard(0).objects().fused());
            assert_eq!(sharded.summary(0), &derived);
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn v6_reload_preserves_dynamic_insertion_and_grown_radii() {
        let set = corpus(80);
        let mut sharded = ShardedMust::build(
            set,
            Weights::uniform(2),
            MustBuildOptions { recipe: GraphRecipe::Hnsw, ..Default::default() },
            ShardSpec::new(2),
        )
        .unwrap();
        // Insert *before* saving: the target shard's radii grow around the
        // fixed centroid, and v6 must persist that growth verbatim (a
        // re-derivation on load would recentre and shrink it).
        sharded.insert_object(&[vec![1.0; 8], vec![1.0; 4]]).unwrap();
        let path = tmp("bundle-v6-hnsw-insert.mustb");
        save_sharded(&sharded, &path).unwrap();
        let mut loaded = load_sharded(&path).unwrap();
        for s in 0..2 {
            assert_eq!(loaded.summary(s), sharded.summary(s), "shard {s}");
        }
        let id = loaded
            .insert_object(&[vec![1.0; 8], vec![1.0; 4]])
            .expect("reloaded HNSW shards stay dynamic");
        assert_eq!(id, 81, "global ids keep growing densely after reload");
        assert_eq!(loaded.len(), 82);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn single_shard_loader_rejects_sharded_bundles_with_a_pointer() {
        let set = corpus(40);
        let sharded = ShardedMust::build(
            set,
            Weights::uniform(2),
            MustBuildOptions::default(),
            ShardSpec::new(2),
        )
        .unwrap();
        for version in [BUNDLE_V4_VERSION, BUNDLE_V6_VERSION] {
            let path = tmp(&format!("bundle-v{version}-reject.mustb"));
            write_sharded(&sharded, &path, version).unwrap();
            let Err(err) = load(&path) else { panic!("load() must reject v{version}") };
            assert!(err.to_string().contains("load_sharded"), "{err}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn corrupt_v4_manifests_error_cleanly() {
        // Unknown assignment tag.
        let bad_tag = tmp("v4-bad-tag.mustb");
        let mut bytes = BUNDLE_V2_MAGIC.to_vec();
        bytes.extend_from_slice(&BUNDLE_V4_VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one shard
        bytes.push(9); // no such assignment
        std::fs::write(&bad_tag, &bytes).unwrap();
        assert!(matches!(load_sharded(&bad_tag), Err(MustError::Config(_))));

        // A manifest whose payload offset lies must be rejected before any
        // payload parse.
        let set = corpus(30);
        let sharded = ShardedMust::build(
            set,
            Weights::uniform(2),
            MustBuildOptions::default(),
            ShardSpec::new(2),
        )
        .unwrap();
        let bad_offset = tmp("v4-bad-offset.mustb");
        write_sharded(&sharded, &bad_offset, BUNDLE_V4_VERSION).unwrap();
        let mut bytes = std::fs::read(&bad_offset).unwrap();
        // First offset lives right after: magic(8) + version(4) + count(4)
        // + tag(1) + two id maps (8 + 4*15 each).
        let off_pos = 8 + 4 + 4 + 1 + 2 * (8 + 4 * 15);
        bytes[off_pos] ^= 0xFF;
        std::fs::write(&bad_offset, &bytes).unwrap();
        let Err(err) = load_sharded(&bad_offset) else { panic!("lying offset must fail") };
        assert!(matches!(err, MustError::Config(_)), "{err}");
        assert!(err.to_string().contains("payload"), "{err}");

        // A v6 summary block holding a NaN must be rejected by the summary
        // validator, not crash the router later.  The centroid starts
        // right after the same manifest prefix as above, plus the
        // centroid's own u64 length prefix.
        let bad_summary = tmp("v6-bad-summary.mustb");
        save_sharded(&sharded, &bad_summary).unwrap();
        let mut bytes = std::fs::read(&bad_summary).unwrap();
        let centroid_pos = 8 + 4 + 4 + 1 + 2 * (8 + 4 * 15) + 8;
        bytes[centroid_pos..centroid_pos + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        std::fs::write(&bad_summary, &bytes).unwrap();
        let Err(err) = load_sharded(&bad_summary) else { panic!("NaN summary must fail") };
        assert!(matches!(err, MustError::Config(_)), "{err}");
        assert!(err.to_string().contains("summary"), "{err}");

        // Zero shards.
        let zero = tmp("v4-zero-shards.mustb");
        let mut bytes = BUNDLE_V2_MAGIC.to_vec();
        bytes.extend_from_slice(&BUNDLE_V4_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&zero, &bytes).unwrap();
        assert!(matches!(load_sharded(&zero), Err(MustError::Config(_))));

        for p in [bad_tag, bad_offset, bad_summary, zero] {
            std::fs::remove_file(&p).unwrap();
        }
    }
}
