//! The fused index (Algorithm 1): a proximity graph over joint similarity,
//! built through `must-graph`'s component pipeline with pluggable backends
//! (Section VIII-G, Fig. 10).

use std::time::Instant;

use must_graph::hcnng::{build_hcnng, HcnngParams};
use must_graph::hnsw::{Hnsw, HnswParams};
use must_graph::pipeline::PipelineStats;
use must_graph::{AnnIndex, Graph, GraphRecipe};

use crate::oracle::JointOracle;
use crate::MustError;

/// A built index: either a flat graph (all pipeline recipes + HCNNG) or the
/// layered HNSW.  Cloneable so one built index can be re-wrapped under a
/// different weight configuration (the query-time-weighting tests pin
/// that a weight override over a shared index equals a re-freeze).
#[derive(Clone)]
pub enum MustIndex {
    /// Flat adjacency graph with a fixed seed.
    Flat(Graph),
    /// Hierarchical navigable small-world graph.
    Hnsw(Hnsw),
}

impl MustIndex {
    /// View as the search-capable trait object.
    #[must_use]
    pub fn as_ann(&self) -> &dyn AnnIndex {
        match self {
            Self::Flat(g) => g,
            Self::Hnsw(h) => h,
        }
    }

    /// The flat graph, when applicable (case studies inspect neighbours).
    #[must_use]
    pub fn graph(&self) -> Option<&Graph> {
        match self {
            Self::Flat(g) => Some(g),
            Self::Hnsw(_) => None,
        }
    }

    /// Index memory footprint in bytes.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.as_ann().bytes()
    }
}

/// Construction report (feeds Figs. 7, 10(a), 14).
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Recipe used.
    pub recipe: GraphRecipe,
    /// Neighbour bound `gamma`.
    pub gamma: usize,
    /// Total wall-clock build seconds.
    pub build_secs: f64,
    /// Adjacency memory footprint in bytes.
    pub index_bytes: usize,
    /// Pipeline phase breakdown, when a pipeline recipe was used.
    pub pipeline: Option<PipelineStats>,
}

/// Index construction options.
#[derive(Debug, Clone, Copy)]
pub struct IndexOptions {
    /// Maximum neighbours per vertex (`gamma`, default 30 — Appendix H).
    pub gamma: usize,
    /// NNDescent iterations (`epsilon`, default 3 — Tab. XI).
    pub init_iterations: usize,
    /// Graph backend.
    pub recipe: GraphRecipe,
    /// Build RNG seed.
    pub rng_seed: u64,
    /// Worker threads for construction; `0` (the default) resolves to
    /// [`must_graph::par::build_threads`] (`MUST_BUILD_THREADS`-capped
    /// available parallelism).  Sharded builds pass an explicit share so
    /// concurrent shard builds never exceed the machine budget.
    pub threads: usize,
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self {
            gamma: 30,
            init_iterations: 3,
            recipe: GraphRecipe::Fused,
            rng_seed: 0x1D3,
            threads: 0,
        }
    }
}

/// Builds the fused index over `oracle` (Algorithm 1 / the chosen backend).
///
/// # Errors
/// Returns [`MustError::Config`] for degenerate options.
pub fn build_index(oracle: &JointOracle<'_>, opts: IndexOptions) -> Result<(MustIndex, BuildReport), MustError> {
    if opts.gamma == 0 {
        return Err(MustError::Config("gamma must be positive".into()));
    }
    use must_graph::SimilarityOracle as _;
    if oracle.len() == 0 {
        return Err(MustError::Config("cannot index an empty object set".into()));
    }
    let t0 = Instant::now();
    let threads = if opts.threads == 0 { must_graph::par::build_threads() } else { opts.threads };
    let (index, pipeline) = match opts.recipe {
        GraphRecipe::Hnsw => {
            // Wave-scheduled parallel insertion: thread-count invariant,
            // so the budget is purely a wall-clock knob.
            let h = Hnsw::build_with_threads(
                oracle,
                HnswParams {
                    m: (opts.gamma / 2).max(4),
                    ef_construction: (opts.gamma * 4).max(64),
                    rng_seed: opts.rng_seed,
                },
                threads,
            );
            (MustIndex::Hnsw(h), None)
        }
        GraphRecipe::Hcnng => {
            let g = build_hcnng(
                oracle,
                HcnngParams { rng_seed: opts.rng_seed, threads, ..HcnngParams::default() },
            );
            (MustIndex::Flat(g), None)
        }
        recipe => {
            let mut builder = recipe
                .pipeline(opts.gamma, opts.rng_seed)
                .expect("pipeline recipe");
            builder.init_iterations = opts.init_iterations;
            builder.threads = threads;
            let (g, stats) = builder.build(oracle);
            (MustIndex::Flat(g), Some(stats))
        }
    };
    let report = BuildReport {
        recipe: opts.recipe,
        gamma: opts.gamma,
        build_secs: t0.elapsed().as_secs_f64(),
        index_bytes: index.bytes(),
        pipeline,
    };
    Ok((index, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_vector::{MultiVectorSet, VectorSetBuilder, Weights};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize) -> MultiVectorSet {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m0 = VectorSetBuilder::new(8, n);
        let mut m1 = VectorSetBuilder::new(4, n);
        for _ in 0..n {
            let v0: Vec<f32> = (0..8).map(|_| rng.random::<f32>() - 0.5).collect();
            let v1: Vec<f32> = (0..4).map(|_| rng.random::<f32>() - 0.5).collect();
            m0.push_normalized(&v0).unwrap();
            m1.push_normalized(&v1).unwrap();
        }
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    #[test]
    fn builds_all_backends() {
        let set = corpus(300);
        let oracle = JointOracle::new(&set, Weights::uniform(2)).unwrap();
        for recipe in GraphRecipe::all() {
            let (index, report) = build_index(
                &oracle,
                IndexOptions { gamma: 10, recipe, ..IndexOptions::default() },
            )
            .unwrap();
            assert_eq!(index.as_ann().len(), 300, "{}", recipe.label());
            assert!(report.build_secs > 0.0);
            assert!(report.index_bytes > 0);
            match recipe {
                GraphRecipe::Hnsw => assert!(index.graph().is_none()),
                _ => assert!(index.graph().is_some()),
            }
        }
    }

    #[test]
    fn rejects_zero_gamma_and_empty_sets() {
        let set = corpus(10);
        let oracle = JointOracle::new(&set, Weights::uniform(2)).unwrap();
        assert!(build_index(&oracle, IndexOptions { gamma: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn larger_gamma_means_larger_index() {
        let set = corpus(400);
        let oracle = JointOracle::new(&set, Weights::uniform(2)).unwrap();
        let (_, small) =
            build_index(&oracle, IndexOptions { gamma: 6, ..Default::default() }).unwrap();
        let (_, large) =
            build_index(&oracle, IndexOptions { gamma: 20, ..Default::default() }).unwrap();
        assert!(
            large.index_bytes > small.index_bytes,
            "{} vs {}",
            large.index_bytes,
            small.index_bytes
        );
    }
}
