//! The contention-free serving runtime: per-worker request lanes, work
//! stealing, and batch affinity.
//!
//! [`MustServer::serve`]'s original loop funnelled every request through
//! one shared `std::sync::mpsc` receiver behind a mutex, so every dequeue
//! contended on the same lock and cache line no matter how many workers
//! served — the committed bench showed 2 threads *losing* to 1.  This
//! module replaces that hot path:
//!
//! * **Per-worker lanes.**  Each worker owns a bounded-contention lane
//!   (`Mutex<VecDeque>` touched by one producer round-robin step and one
//!   consumer in the common case).  Submission round-robins across lanes,
//!   so producers and workers almost never collide on a lock.
//! * **Work stealing.**  A worker whose own lane runs dry steals the
//!   oldest job from the currently **longest** lane (lane depths are
//!   advertised in atomics, so victim selection never takes a lock).
//!   Tail latency stops depending on which lane a burst happened to land
//!   in.
//! * **Batch affinity.**  A [`ServeRuntime::submit_batch`] call lands on
//!   one lane as a single job unit: its queries run back-to-back on one
//!   worker's warm scratch instead of interleaving with unrelated
//!   requests — and a steal moves the *whole* unit, never a slice of it.
//! * **Drain-on-shutdown.**  [`ServeRuntime::shutdown`] wakes every
//!   worker and joins them only after all lanes are empty: every
//!   submitted request gets exactly one reply, pinned by the stress test
//!   in `tests/serving.rs`.
//!
//! ## Why bit-identity survives work stealing
//!
//! A served query's result is a pure function of `(snapshot, query,
//! weights, k, l)` — the per-query RNG seed is a serving constant and the
//! scratch state is reset per search ([`crate::server`]'s contract).
//! Stealing only changes *which* worker runs a query, never the work the
//! query performs, so replies are bit-identical to serial execution in
//! any interleaving.  The same argument covers the sharded engine: a
//! [`ShardedWorker`] searches its shards in a fixed order whichever
//! runtime worker drives it.
//!
//! The runtime is generic over a [`ServeEngine`] — both [`MustServer`]
//! and [`ShardedServer`] implement it, so single-shard and scatter-gather
//! deployments share one serve loop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use must_vector::{MultiQuery, Weights};

use crate::search::SearchOutcome;
use crate::server::{MustServer, ServeReply, ServeRequest, ServerWorker};
use crate::shard::{ShardedServer, ShardedWorker};
use crate::MustError;

/// A serving snapshot the runtime can drive: cheaply cloneable (the clone
/// is an `Arc` bump), shareable across threads, and able to mint a
/// reusable per-thread worker.
pub trait ServeEngine: Clone + Send + 'static {
    /// The per-thread search state (scratch buffers survive across
    /// queries; the snapshot itself is shared, never copied).
    type Worker<'a>: EngineWorker
    where
        Self: 'a;

    /// Mints a worker bound to this snapshot.
    fn serve_worker(&self) -> Self::Worker<'_>;
}

/// The one operation the runtime needs from an engine's worker: answer a
/// query under the snapshot's default weights or a per-request override.
pub trait EngineWorker {
    /// Runs one query; `weights: None` means the snapshot's defaults.
    ///
    /// # Errors
    /// Propagates per-query validation errors (arity/dimension
    /// mismatches); the runtime forwards them in the reply rather than
    /// tearing anything down.
    fn run_query(
        &mut self,
        query: &MultiQuery,
        weights: Option<&Weights>,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError>;
}

impl EngineWorker for ServerWorker<'_> {
    fn run_query(
        &mut self,
        query: &MultiQuery,
        weights: Option<&Weights>,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        match weights {
            Some(w) => self.search_weighted(query, w, k, l),
            None => self.search(query, k, l),
        }
    }
}

impl ServeEngine for MustServer {
    type Worker<'a> = ServerWorker<'a>;

    fn serve_worker(&self) -> Self::Worker<'_> {
        self.worker()
    }
}

impl EngineWorker for ShardedWorker<'_> {
    fn run_query(
        &mut self,
        query: &MultiQuery,
        weights: Option<&Weights>,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        match weights {
            Some(w) => self.search_weighted(query, w, k, l),
            None => self.search(query, k, l),
        }
    }
}

impl ServeEngine for ShardedServer {
    type Worker<'a> = ShardedWorker<'a>;

    fn serve_worker(&self) -> Self::Worker<'_> {
        self.worker()
    }
}

/// One queued query: the request plus an optional weight override.
struct Unit {
    id: u64,
    query: MultiQuery,
    weights: Option<Weights>,
    k: usize,
    l: usize,
}

impl Unit {
    fn from_request(req: ServeRequest, weights: Option<Weights>) -> Self {
        Self { id: req.id, query: req.query, weights, k: req.k, l: req.l }
    }
}

/// One lane entry: a single query or a whole batch (the affinity unit —
/// it is queued, stolen, and executed as one piece).
enum Job {
    Single(Unit),
    Batch(Vec<Unit>),
}

impl Job {
    fn units(&self) -> usize {
        match self {
            Self::Single(_) => 1,
            Self::Batch(b) => b.len(),
        }
    }
}

/// One worker's lane plus its lightweight counters.  `depth` mirrors the
/// queued unit count so victim selection and [`ServeRuntime::lane_depths`]
/// never touch the queue lock.
struct Lane {
    queue: Mutex<VecDeque<Job>>,
    depth: AtomicUsize,
    executed: AtomicU64,
    stolen: AtomicU64,
}

impl Lane {
    fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            depth: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        }
    }

    fn push(&self, job: Job) {
        let units = job.units();
        let mut q = self.queue.lock().expect("lane poisoned");
        q.push_back(job);
        // Under the lock, so depth never over-reports against the queue.
        // SeqCst: paired with the parking handshake in `next_job` (see
        // the store-buffer argument there).
        self.depth.fetch_add(units, Ordering::SeqCst);
    }

    fn pop(&self) -> Option<Job> {
        let mut q = self.queue.lock().expect("lane poisoned");
        let job = q.pop_front()?;
        self.depth.fetch_sub(job.units(), Ordering::Release);
        Some(job)
    }
}

struct Shared {
    lanes: Vec<Lane>,
    shutdown: AtomicBool,
    /// Workers currently parked; producers skip the wake lock entirely
    /// while this is zero (the loaded steady state).
    sleepers: AtomicUsize,
    wake_lock: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    /// Wakes parked workers after a push; free when nobody sleeps.
    /// SeqCst load: paired with the parking handshake in `next_job`
    /// (see the store-buffer argument there).
    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.wake_lock.lock().expect("wake lock poisoned");
            self.wake.notify_all();
        }
    }

    /// Picks the deepest lane other than `me` (ties toward the lowest
    /// index) without taking any lock; `None` when all are empty.
    fn longest_other_lane(&self, me: usize) -> Option<usize> {
        let mut best = None;
        let mut best_depth = 0;
        for (i, lane) in self.lanes.iter().enumerate() {
            if i == me {
                continue;
            }
            let d = lane.depth.load(Ordering::Acquire);
            if d > best_depth {
                best_depth = d;
                best = Some(i);
            }
        }
        best
    }

    /// Dequeues the next job for worker `me`: own lane first, then steal
    /// from the longest other lane.  Returns `None` only after shutdown
    /// once every lane is drained.
    fn next_job(&self, me: usize) -> Option<Job> {
        // A scan that races the shutdown flag proves nothing: a producer
        // may push and then set the flag *between* our empty scan and
        // our flag load.  So `None` is only returned when a scan that
        // *started after* observing `shutdown` comes up empty — that
        // observation (Acquire) happens-after every pre-shutdown push
        // (which the Release store in `begin_shutdown` orders behind),
        // so the post-observation scan cannot miss a drainable job.
        let mut saw_shutdown = false;
        loop {
            if let Some(job) = self.lanes[me].pop() {
                return Some(job);
            }
            if let Some(victim) = self.longest_other_lane(me) {
                if let Some(job) = self.lanes[victim].pop() {
                    self.lanes[me].stolen.fetch_add(job.units() as u64, Ordering::Relaxed);
                    return Some(job);
                }
                // Someone else drained the victim first; rescan.
                continue;
            }
            if saw_shutdown {
                // Empty scan performed entirely after seeing the flag:
                // every lane is truly drained.
                return None;
            }
            if self.shutdown.load(Ordering::Acquire) {
                saw_shutdown = true;
                continue;
            }
            // Park until a producer pushes or shutdown begins.  The
            // sleepers counter and `notify` form a store-buffer pair
            // (producer: push depth, load sleepers; worker: add
            // sleepers, load depth) — SeqCst on those four accesses
            // guarantees at least one side sees the other, so either
            // the producer notifies (under `wake_lock`, which we hold
            // until `wait` — the notify cannot slip between our recheck
            // and the wait) or our recheck sees the pushed depth and we
            // skip the wait.  Hence the untimed wait: no lost wake-ups,
            // and an idle runtime burns no CPU on periodic polling.
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            let guard = self.wake_lock.lock().expect("wake lock poisoned");
            let must_recheck = self.shutdown.load(Ordering::Acquire)
                || self.lanes.iter().any(|l| l.depth.load(Ordering::SeqCst) > 0);
            if !must_recheck {
                drop(self.wake.wait(guard).expect("wake lock poisoned"));
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// A snapshot of the runtime's per-worker counters, for observability
/// (the `serve_runtime` example prints them live).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Queued (not yet started) query units per lane.
    pub lane_depths: Vec<usize>,
    /// Query units each worker has completed.
    pub executed: Vec<u64>,
    /// Query units each worker obtained by stealing from another lane.
    pub stolen: Vec<u64>,
}

/// The contention-free serve loop: a fixed pool of workers, one lane
/// each, driven by any number of producer threads through `&self`
/// submission.  See the module docs for the design and the determinism
/// argument.
///
/// Replies flow to the `Sender<ServeReply>` given at [`ServeRuntime::start`];
/// a dropped receiver is tolerated (remaining requests still drain, their
/// replies are discarded).
pub struct ServeRuntime {
    shared: Arc<Shared>,
    next_lane: AtomicUsize,
    handles: Vec<JoinHandle<()>>,
}

impl ServeRuntime {
    /// Starts `workers` worker threads (clamped to at least 1) over a
    /// serving snapshot.  Each worker clones the engine handle (an `Arc`
    /// bump) and keeps one reusable [`ServeEngine::Worker`] for its whole
    /// lifetime — no per-request or per-batch thread spawning.
    #[must_use]
    pub fn start<E: ServeEngine>(engine: &E, workers: usize, replies: Sender<ServeReply>) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            lanes: (0..workers).map(|_| Lane::new()).collect(),
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            wake_lock: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                let engine = engine.clone();
                let replies = replies.clone();
                std::thread::spawn(move || {
                    let mut worker = engine.serve_worker();
                    while let Some(job) = shared.next_job(me) {
                        let units = job.units() as u64;
                        match job {
                            Job::Single(u) => run_unit(&mut worker, u, &replies),
                            Job::Batch(batch) => {
                                for u in batch {
                                    run_unit(&mut worker, u, &replies);
                                }
                            }
                        }
                        shared.lanes[me].executed.fetch_add(units, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        Self { shared, next_lane: AtomicUsize::new(0), handles }
    }

    /// Number of worker threads (and lanes).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shared.lanes.len()
    }

    /// Submits one request under the snapshot's default weights
    /// (round-robin lane placement).
    pub fn submit(&self, req: ServeRequest) {
        self.push(Job::Single(Unit::from_request(req, None)));
    }

    /// Submits one request under a per-request weight override.
    pub fn submit_weighted(&self, req: ServeRequest, weights: Weights) {
        self.push(Job::Single(Unit::from_request(req, Some(weights))));
    }

    /// Submits a batch as **one affinity unit**: all its queries run
    /// back-to-back on a single worker (whichever owns — or steals — the
    /// unit), never interleaved with other traffic.
    pub fn submit_batch(&self, reqs: Vec<ServeRequest>) {
        self.push_batch(reqs, None);
    }

    /// [`ServeRuntime::submit_batch`] under one weight override for the
    /// whole batch.
    pub fn submit_batch_weighted(&self, reqs: Vec<ServeRequest>, weights: Weights) {
        self.push_batch(reqs, Some(weights));
    }

    fn push_batch(&self, reqs: Vec<ServeRequest>, weights: Option<Weights>) {
        if reqs.is_empty() {
            return;
        }
        let units: Vec<Unit> =
            reqs.into_iter().map(|r| Unit::from_request(r, weights.clone())).collect();
        self.push(Job::Batch(units));
    }

    fn push(&self, job: Job) {
        let lane = self.next_lane.fetch_add(1, Ordering::Relaxed) % self.shared.lanes.len();
        self.shared.lanes[lane].push(job);
        self.shared.notify();
    }

    /// Current counters: lane depths, executed units, and steal counts
    /// per worker.
    #[must_use]
    pub fn counters(&self) -> RuntimeCounters {
        RuntimeCounters {
            lane_depths: self
                .shared
                .lanes
                .iter()
                .map(|l| l.depth.load(Ordering::Acquire))
                .collect(),
            executed: self
                .shared
                .lanes
                .iter()
                .map(|l| l.executed.load(Ordering::Relaxed))
                .collect(),
            stolen: self.shared.lanes.iter().map(|l| l.stolen.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Queued (not yet started) query units per lane.
    #[must_use]
    pub fn lane_depths(&self) -> Vec<usize> {
        self.counters().lane_depths
    }

    /// Stops accepting the calling thread's submissions, drains every
    /// lane (workers keep stealing until all lanes are empty), joins the
    /// workers, and returns the total number of query units served.
    /// Every request submitted before this call gets exactly one reply.
    #[must_use]
    pub fn shutdown(mut self) -> usize {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            h.join().expect("runtime worker panicked");
        }
        self.shared.lanes.iter().map(|l| l.executed.load(Ordering::Relaxed)).sum::<u64>() as usize
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _guard = self.shared.wake_lock.lock().expect("wake lock poisoned");
        self.shared.wake.notify_all();
    }
}

impl Drop for ServeRuntime {
    /// Dropping without [`ServeRuntime::shutdown`] still drains and joins
    /// (so tests and panicking callers never leak detached workers).
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn run_unit<W: EngineWorker>(worker: &mut W, unit: Unit, replies: &Sender<ServeReply>) {
    let outcome = worker.run_query(&unit.query, unit.weights.as_ref(), unit.k, unit.l);
    // The caller may have stopped listening; keep draining regardless.
    let _ = replies.send(ServeReply { id: unit.id, outcome });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Must, MustBuildOptions};
    use must_vector::{MultiVectorSet, VectorSetBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn server(n: usize) -> MustServer {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m0 = VectorSetBuilder::new(8, n);
        let mut m1 = VectorSetBuilder::new(4, n);
        for _ in 0..n {
            let v0: Vec<f32> = (0..8).map(|_| rng.random::<f32>() - 0.5).collect();
            let v1: Vec<f32> = (0..4).map(|_| rng.random::<f32>() - 0.5).collect();
            m0.push_normalized(&v0).unwrap();
            m1.push_normalized(&v1).unwrap();
        }
        let set = MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap();
        let must =
            Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        MustServer::freeze(must)
    }

    fn self_query(srv: &MustServer, id: u32) -> MultiQuery {
        MultiQuery::full(vec![
            srv.objects().modality(0).get(id).to_vec(),
            srv.objects().modality(1).get(id).to_vec(),
        ])
    }

    #[test]
    fn runtime_answers_singles_and_batches_exactly_once() {
        let srv = server(120);
        let (tx, rx) = std::sync::mpsc::channel();
        let rt = ServeRuntime::start(&srv, 3, tx);
        assert_eq!(rt.workers(), 3);
        for i in 0..10u64 {
            rt.submit(ServeRequest { id: i, query: self_query(&srv, i as u32), k: 1, l: 40 });
        }
        let batch: Vec<ServeRequest> = (10..20u64)
            .map(|i| ServeRequest { id: i, query: self_query(&srv, i as u32), k: 1, l: 40 })
            .collect();
        rt.submit_batch(batch);
        assert_eq!(rt.shutdown(), 20);
        let mut seen = [false; 20];
        for rep in rx.iter() {
            assert!(
                !std::mem::replace(&mut seen[rep.id as usize], true),
                "duplicate reply for id {}",
                rep.id
            );
            let out = rep.outcome.unwrap();
            assert_eq!(out.results[0].0, rep.id as u32, "self-query resolves to itself");
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_submission_matches_direct_weighted_search() {
        let srv = server(100);
        let w = Weights::from_squared(vec![0.8, 0.2]).unwrap();
        let q = self_query(&srv, 33);
        let expect = srv.search_weighted(&q, &w, 5, 40).unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let rt = ServeRuntime::start(&srv, 2, tx);
        rt.submit_weighted(ServeRequest { id: 0, query: q, k: 5, l: 40 }, w);
        assert_eq!(rt.shutdown(), 1);
        let rep = rx.recv().unwrap();
        let out = rep.outcome.unwrap();
        assert_eq!(out.results, expect.results);
        assert_eq!(out.stats, expect.stats);
    }

    #[test]
    fn counters_account_for_every_unit() {
        let srv = server(80);
        let (tx, rx) = std::sync::mpsc::channel();
        let rt = ServeRuntime::start(&srv, 4, tx);
        for i in 0..40u64 {
            rt.submit(ServeRequest {
                id: i,
                query: self_query(&srv, (i % 80) as u32),
                k: 1,
                l: 30,
            });
        }
        let served = rt.shutdown();
        assert_eq!(served, 40);
        assert_eq!(rx.iter().count(), 40);
    }

    #[test]
    fn dropped_reply_receiver_still_drains() {
        let srv = server(60);
        let (tx, rx) = std::sync::mpsc::channel();
        drop(rx);
        let rt = ServeRuntime::start(&srv, 2, tx);
        for i in 0..8u64 {
            rt.submit(ServeRequest { id: i, query: self_query(&srv, i as u32), k: 1, l: 30 });
        }
        assert_eq!(rt.shutdown(), 8, "replies are discarded, requests still served");
    }

    /// Regression for the shutdown-drain race: with a single worker
    /// (nowhere to steal from), a push followed at once by `shutdown()`
    /// can land exactly between the worker's empty scan and its flag
    /// load.  The worker must rescan after observing the flag rather
    /// than abandon the queued request.
    #[test]
    fn submit_then_immediate_shutdown_never_drops() {
        let srv = server(60);
        for i in 0..200u64 {
            let (tx, rx) = std::sync::mpsc::channel();
            let rt = ServeRuntime::start(&srv, 1, tx);
            rt.submit(ServeRequest {
                id: i,
                query: self_query(&srv, (i % 60) as u32),
                k: 1,
                l: 30,
            });
            assert_eq!(rt.shutdown(), 1, "iteration {i}: shutdown dropped the queued request");
            assert_eq!(rx.recv().unwrap().id, i);
        }
    }

    #[test]
    fn immediate_shutdown_serves_nothing_and_does_not_hang() {
        let srv = server(50);
        let (tx, _rx) = std::sync::mpsc::channel();
        let rt = ServeRuntime::start(&srv, 3, tx);
        assert_eq!(rt.shutdown(), 0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let srv = server(50);
        let (tx, rx) = std::sync::mpsc::channel();
        let rt = ServeRuntime::start(&srv, 0, tx);
        assert_eq!(rt.workers(), 1);
        rt.submit(ServeRequest { id: 9, query: self_query(&srv, 9), k: 1, l: 30 });
        assert_eq!(rt.shutdown(), 1);
        assert_eq!(rx.recv().unwrap().id, 9);
    }
}
