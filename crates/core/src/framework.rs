//! The user-facing MUST framework (Fig. 4): multi-vector corpus in, learned
//! or user-defined weights, fused index, joint search out.

use must_graph::{GraphRecipe, SearchParams};
use must_vector::{JointDistance, MultiQuery, MultiVectorSet, ObjectId, QuantizedRows, Weights};

use crate::index::{build_index, BuildReport, IndexOptions, MustIndex};
use crate::oracle::JointOracle;
use crate::search::{brute_force_search, JointSearcher, SearchOutcome};
use crate::weights::{LearnedWeights, WeightLearnConfig, WeightLearner};
use crate::MustError;

/// Build-time options for [`Must::build`].
#[derive(Debug, Clone, Copy)]
pub struct MustBuildOptions {
    /// Neighbour bound `gamma` (Appendix H; default 30).
    pub gamma: usize,
    /// NNDescent iterations `epsilon` (Tab. XI; default 3).
    pub init_iterations: usize,
    /// Graph backend (Fig. 10; default the paper's fused pipeline).
    pub recipe: GraphRecipe,
    /// Whether searches use the Lemma-4 multi-vector computation
    /// optimisation (Fig. 10(c); default on).
    pub prune: bool,
    /// Build RNG seed.
    pub rng_seed: u64,
    /// Worker threads for index construction; `0` (the default) resolves
    /// to `MUST_BUILD_THREADS`-capped available parallelism.  Sharded
    /// builds set an explicit per-shard share so the machine-wide budget
    /// holds across concurrent shard builds.  Every backend — the wave-
    /// scheduled HNSW included — is thread-count invariant, so this knob
    /// only moves wall clock, never the built graph.
    pub threads: usize,
}

impl Default for MustBuildOptions {
    fn default() -> Self {
        Self {
            gamma: 30,
            init_iterations: 3,
            recipe: GraphRecipe::Fused,
            prune: true,
            rng_seed: 0x4D05,
            threads: 0,
        }
    }
}

/// A built MUST instance: owns the corpus, the weights, and the fused
/// index.  The corpus's own unscaled fused rows are the one and only
/// storage engine — weights are applied query-side everywhere.
pub struct Must {
    objects: MultiVectorSet,
    weights: Weights,
    index: MustIndex,
    report: BuildReport,
    prune: bool,
    /// Tombstone bitset (Section IX: deleted points stay in the graph for
    /// connectivity and are filtered from results until reconstruction).
    deleted: Vec<u64>,
    deleted_count: usize,
    /// Optional SQ8 companion engine (same corpus, `u8` codes): when
    /// present, serving walks the graph on codes and exact-re-ranks the
    /// top pool on the f32 rows.  Kept in lockstep with the corpus by
    /// [`Must::insert_object`].
    quant: Option<QuantizedRows>,
}

/// The owned parts of a [`Must`] instance, as handed to
/// [`crate::server::MustServer::freeze`].  The corpus carries its own
/// fused-row storage, so freezing never re-copies or re-scales anything.
pub struct MustParts {
    /// The multi-vector corpus (with its fused-row storage engine).
    pub objects: MultiVectorSet,
    /// The default weights the index was built under.
    pub weights: Weights,
    /// The built index.
    pub index: MustIndex,
    /// Whether searches prune (Lemma 4).
    pub prune: bool,
    /// The SQ8 companion engine, when one was attached — the serving
    /// layer's quantized-scan + exact-re-rank mode rides on it.
    pub quant: Option<QuantizedRows>,
}

impl Must {
    /// Builds the fused index over `objects` under `weights`
    /// (either learned via [`Must::learn_weights`] or user-defined —
    /// Fig. 4(g)).
    ///
    /// # Errors
    /// Propagates weight-arity and configuration errors.
    pub fn build(
        objects: MultiVectorSet,
        weights: Weights,
        opts: MustBuildOptions,
    ) -> Result<Self, MustError> {
        let (index, report) = {
            let oracle = JointOracle::new(&objects, weights.clone())?;
            build_index(
                &oracle,
                IndexOptions {
                    gamma: opts.gamma,
                    init_iterations: opts.init_iterations,
                    recipe: opts.recipe,
                    rng_seed: opts.rng_seed,
                    threads: opts.threads,
                },
            )?
        };
        let deleted = vec![0u64; objects.len().div_ceil(64)];
        Ok(Self {
            objects,
            weights,
            index,
            report,
            prune: opts.prune,
            deleted,
            deleted_count: 0,
            quant: None,
        })
    }

    /// Marks object `id` as deleted (Section IX).  The vertex stays in the
    /// graph — it may be essential for connectivity — but is filtered from
    /// all future result sets until the index is rebuilt.  Returns whether
    /// the state changed.
    pub fn mark_deleted(&mut self, id: ObjectId) -> bool {
        assert!((id as usize) < self.objects.len(), "id out of range");
        let (w, b) = (id as usize / 64, id as usize % 64);
        let was = self.deleted[w] & (1 << b) != 0;
        if !was {
            self.deleted[w] |= 1 << b;
            self.deleted_count += 1;
        }
        !was
    }

    /// Undoes [`Must::mark_deleted`].  Returns whether the state changed.
    pub fn restore(&mut self, id: ObjectId) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        let was = self.deleted[w] & (1 << b) != 0;
        if was {
            self.deleted[w] &= !(1 << b);
            self.deleted_count -= 1;
        }
        was
    }

    /// Whether object `id` is tombstoned.
    #[must_use]
    pub fn is_deleted(&self, id: ObjectId) -> bool {
        self.deleted
            .get(id as usize / 64)
            .is_some_and(|w| w & (1 << (id as usize % 64)) != 0)
    }

    /// Number of tombstoned objects.
    #[must_use]
    pub fn deleted_count(&self) -> usize {
        self.deleted_count
    }

    /// Dynamically inserts a new object (Section IX).  Supported by the
    /// HNSW backend, which handles incremental insertion; flat pipeline
    /// recipes require periodic reconstruction, exactly as the paper
    /// discusses, and return a configuration error.
    ///
    /// # Errors
    /// [`MustError::Config`] for non-HNSW backends; vector errors for
    /// malformed rows.
    pub fn insert_object(&mut self, rows: &[Vec<f32>]) -> Result<ObjectId, MustError> {
        if !matches!(self.index, MustIndex::Hnsw(_)) {
            return Err(MustError::Config(
                "dynamic insertion requires the HNSW backend; flat graphs need periodic \
                 reconstruction (paper Section IX)"
                    .into(),
            ));
        }
        let id = self.objects.push_object(rows)?;
        self.deleted.resize(self.objects.len().div_ceil(64), 0);
        // The corpus's fused storage grew in place; re-entering index
        // construction is a cheap rebind, not a copy.
        let Self { objects, weights, index, quant, .. } = self;
        if let Some(q) = quant {
            // Keep the codes in lockstep, encoding the *normalised* values
            // the corpus actually stored.  A zero-copy-loaded engine
            // promotes to owned codes here (copy-on-write).
            let fused = objects.fused();
            let normalized: Vec<&[f32]> =
                (0..fused.num_modalities()).map(|k| fused.modality_slice(id, k)).collect();
            q.push_row(&normalized)?;
        }
        let oracle = JointOracle::new(objects, weights.clone())?;
        match index {
            MustIndex::Hnsw(h) => h.insert_new(&oracle, id, 0x1A5E),
            MustIndex::Flat(_) => unreachable!("checked above"),
        }
        Ok(id)
    }

    /// Reassembles a [`Must`] from persisted parts without rebuilding
    /// (see [`crate::persist`]).
    ///
    /// # Errors
    /// Weight-arity and graph/corpus consistency errors.
    pub fn from_prebuilt(
        objects: MultiVectorSet,
        weights: Weights,
        graph: must_graph::Graph,
        opts: MustBuildOptions,
    ) -> Result<Self, MustError> {
        Self::from_parts(objects, weights, MustIndex::Flat(graph), opts)
    }

    /// Reassembles a [`Must`] from a persisted corpus, weights, and a
    /// prebuilt index of either backend shape (flat graph or layered HNSW)
    /// — the bundle-v2 load path.
    ///
    /// # Errors
    /// Weight-arity and graph/corpus consistency errors.
    pub fn from_parts(
        objects: MultiVectorSet,
        weights: Weights,
        index: MustIndex,
        opts: MustBuildOptions,
    ) -> Result<Self, MustError> {
        if weights.modalities() != objects.num_modalities() {
            return Err(MustError::Config("weight arity mismatch".into()));
        }
        if index.as_ann().len() != objects.len() {
            return Err(MustError::Config("graph/corpus cardinality mismatch".into()));
        }
        let report = BuildReport {
            recipe: opts.recipe,
            gamma: opts.gamma,
            build_secs: 0.0,
            index_bytes: index.bytes(),
            pipeline: None,
        };
        let deleted = vec![0u64; objects.len().div_ceil(64)];
        Ok(Self {
            objects,
            weights,
            index,
            report,
            prune: opts.prune,
            deleted,
            deleted_count: 0,
            quant: None,
        })
    }

    /// Decomposes the instance into its owned [`MustParts`] — how
    /// [`crate::server::MustServer`] takes ownership of a freshly loaded
    /// bundle without re-cloning the corpus.  Tombstone state is
    /// discarded: serving snapshots are frozen at reconstruction time,
    /// matching the paper's offline/online split.
    #[must_use]
    pub fn into_parts(self) -> MustParts {
        MustParts {
            objects: self.objects,
            weights: self.weights,
            index: self.index,
            prune: self.prune,
            quant: self.quant,
        }
    }

    /// Builds and attaches the SQ8 companion engine from the current
    /// corpus (idempotent: re-quantizes in place).  After this,
    /// [`Must::into_parts`] carries the codes into serving and
    /// [`crate::persist::save_quantized`] persists them as bundle v7.
    pub fn quantize(&mut self) {
        self.quant = Some(self.objects.fused().quantize());
    }

    /// The attached SQ8 engine, if any.
    #[must_use]
    pub fn quant(&self) -> Option<&QuantizedRows> {
        self.quant.as_ref()
    }

    /// Attaches an externally built SQ8 engine (the bundle-v7 load path).
    ///
    /// # Errors
    /// [`MustError::Config`] when the engine does not mirror the corpus
    /// (cardinality or layout mismatch).
    pub fn attach_quant(&mut self, quant: QuantizedRows) -> Result<(), MustError> {
        if quant.len() != self.objects.len() || quant.dims() != self.objects.dims() {
            return Err(MustError::Config(
                "quantized engine does not mirror the corpus".into(),
            ));
        }
        self.quant = Some(quant);
        Ok(())
    }

    /// Runs the vector-weight-learning model on `anchors`
    /// (query, true-object) pairs over `objects`, before building
    /// (Section VI).
    #[must_use]
    pub fn learn_weights(
        objects: &MultiVectorSet,
        anchors: &[(&MultiQuery, ObjectId)],
        config: &WeightLearnConfig,
    ) -> LearnedWeights {
        WeightLearner::new(objects, anchors, config).train(config)
    }

    /// Number of objects in the corpus (tombstoned objects included —
    /// they stay in the graph until reconstruction).
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the corpus holds no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The corpus.
    #[must_use]
    pub fn objects(&self) -> &MultiVectorSet {
        &self.objects
    }

    /// The weights in force.
    #[must_use]
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The construction report.
    #[must_use]
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// The built index.
    #[must_use]
    pub fn index(&self) -> &MustIndex {
        &self.index
    }

    /// Whether searches prune multi-vector computations.
    #[must_use]
    pub fn prune(&self) -> bool {
        self.prune
    }

    /// Toggles the Lemma-4 optimisation (the Fig. 10(c) ablation).
    pub fn set_prune(&mut self, prune: bool) {
        self.prune = prune;
    }

    /// Creates a reusable searcher (allocation-free across a batch): the
    /// corpus's fused storage is shared, never copied.
    #[must_use]
    pub fn searcher(&self) -> MustSearcher<'_> {
        MustSearcher {
            joint: JointDistance::new(&self.objects, self.weights.clone())
                .expect("weight arity validated when this instance was built"),
            inner: JointSearcher::new(),
            must: self,
        }
    }

    /// One-off top-`k` search with pool size `l` (Algorithm 2).
    /// For query batches prefer [`Must::searcher`].
    ///
    /// # Errors
    /// Propagates arity/dimension mismatches.
    pub fn search(
        &self,
        query: &MultiQuery,
        k: usize,
        l: usize,
    ) -> Result<Vec<(ObjectId, f32)>, MustError> {
        Ok(self.searcher().search(query, k, l)?.results)
    }

    /// Exact joint top-`k` (`MUST--`), excluding tombstoned objects.
    ///
    /// # Errors
    /// Propagates arity/dimension mismatches.
    pub fn brute_force(&self, query: &MultiQuery, k: usize) -> Result<SearchOutcome, MustError> {
        let joint = JointDistance::new(&self.objects, self.weights.clone())?;
        let mut out = brute_force_search(&joint, query, k + self.deleted_count, self.prune)?;
        if self.deleted_count > 0 {
            out.results.retain(|(id, _)| !self.is_deleted(*id));
        }
        out.results.truncate(k);
        Ok(out)
    }
}

/// Reusable search handle bound to a [`Must`] instance.
pub struct MustSearcher<'a> {
    joint: JointDistance<'a>,
    inner: JointSearcher,
    must: &'a Must,
}

impl MustSearcher<'_> {
    /// Top-`k` search with pool size `l`, excluding tombstoned objects.
    ///
    /// # Errors
    /// Propagates arity/dimension mismatches.
    pub fn search(&mut self, query: &MultiQuery, k: usize, l: usize) -> Result<SearchOutcome, MustError> {
        self.search_with_params(query, SearchParams::new(k, l.max(k)))
    }

    /// Same, with explicit [`SearchParams`] (seed-only initialisation etc.).
    ///
    /// # Errors
    /// Propagates arity/dimension mismatches.
    pub fn search_with_params(
        &mut self,
        query: &MultiQuery,
        params: SearchParams,
    ) -> Result<SearchOutcome, MustError> {
        let deleted = self.must.deleted_count();
        let wanted = params.k;
        let mut params = params;
        if deleted > 0 {
            // Over-fetch so tombstone filtering still yields k results.
            params.k = wanted + deleted;
            params.l = params.l.max(params.k);
        }
        let mut out =
            self.inner.search(self.must.index(), &self.joint, query, params, self.must.prune())?;
        if deleted > 0 {
            out.results.retain(|(id, _)| !self.must.is_deleted(*id));
            out.results.truncate(wanted);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_vector::VectorSetBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize) -> MultiVectorSet {
        let mut rng = StdRng::seed_from_u64(77);
        let mut m0 = VectorSetBuilder::new(8, n);
        let mut m1 = VectorSetBuilder::new(4, n);
        for _ in 0..n {
            let v0: Vec<f32> = (0..8).map(|_| rng.random::<f32>() - 0.5).collect();
            let v1: Vec<f32> = (0..4).map(|_| rng.random::<f32>() - 0.5).collect();
            m0.push_normalized(&v0).unwrap();
            m1.push_normalized(&v1).unwrap();
        }
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    fn self_query(set: &MultiVectorSet, id: ObjectId) -> MultiQuery {
        MultiQuery::full(vec![
            set.modality(0).get(id).to_vec(),
            set.modality(1).get(id).to_vec(),
        ])
    }

    #[test]
    fn end_to_end_build_and_search() {
        let set = corpus(300);
        let must = Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let mut searcher = must.searcher();
        let mut hits = 0;
        for t in 0..20u32 {
            let id = t * 14;
            let q = self_query(must.objects(), id);
            let out = searcher.search(&q, 1, 60).unwrap();
            if out.results[0].0 == id {
                hits += 1;
            }
        }
        assert!(hits >= 19, "self-queries must be found: {hits}/20");
    }

    #[test]
    fn brute_force_and_index_agree_at_high_l() {
        let set = corpus(250);
        let must = Must::build(set, Weights::new(vec![0.8, 0.4]).unwrap(), MustBuildOptions::default())
            .unwrap();
        let q = self_query(must.objects(), 123);
        let exact = must.brute_force(&q, 5).unwrap();
        let approx = must.search(&q, 5, 120).unwrap();
        assert_eq!(exact.results[0].0, approx[0].0);
    }

    #[test]
    fn weight_arity_mismatch_is_an_error() {
        let set = corpus(50);
        assert!(Must::build(set, Weights::uniform(3), MustBuildOptions::default()).is_err());
    }

    #[test]
    fn prune_toggle_preserves_results() {
        let set = corpus(200);
        let mut must =
            Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let q = self_query(must.objects(), 42);
        let with = must.search(&q, 5, 50).unwrap();
        must.set_prune(false);
        let without = must.search(&q, 5, 50).unwrap();
        let ids = |v: &[(u32, f32)]| v.iter().map(|r| r.0).collect::<Vec<_>>();
        assert_eq!(ids(&with), ids(&without), "Lemma 4 is lossless");
    }

    #[test]
    fn partial_queries_search_with_masked_weights() {
        let set = corpus(150);
        let must = Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let q = MultiQuery::partial(vec![Some(must.objects().modality(0).get(7).to_vec()), None]);
        let res = must.search(&q, 3, 80).unwrap();
        assert_eq!(res[0].0, 7, "target-only query still routes to the anchor");
    }

    #[test]
    fn deleted_objects_vanish_from_results_until_restored() {
        let set = corpus(200);
        let mut must = Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let q = self_query(must.objects(), 42);
        assert_eq!(must.search(&q, 1, 60).unwrap()[0].0, 42);
        assert!(must.mark_deleted(42));
        assert!(!must.mark_deleted(42), "double delete is a no-op");
        assert_eq!(must.deleted_count(), 1);
        let res = must.search(&q, 5, 60).unwrap();
        assert!(res.iter().all(|(id, _)| *id != 42), "tombstone filtered");
        assert_eq!(res.len(), 5, "over-fetch keeps k results");
        let bf = must.brute_force(&q, 5).unwrap();
        assert!(bf.results.iter().all(|(id, _)| *id != 42));
        assert!(must.restore(42));
        assert_eq!(must.search(&q, 1, 60).unwrap()[0].0, 42);
    }

    #[test]
    fn hnsw_backend_supports_dynamic_insertion() {
        let set = corpus(150);
        let mut must = Must::build(
            set,
            Weights::uniform(2),
            MustBuildOptions { recipe: GraphRecipe::Hnsw, ..Default::default() },
        )
        .unwrap();
        // Insert a brand-new object and find it immediately.
        let new0: Vec<f32> = (0..8).map(|i| if i == 3 { 1.0 } else { 0.01 }).collect();
        let new1: Vec<f32> = (0..4).map(|i| if i == 2 { 1.0 } else { 0.01 }).collect();
        let id = must.insert_object(&[new0.clone(), new1.clone()]).unwrap();
        assert_eq!(id, 150);
        assert_eq!(must.objects().len(), 151);
        let q = MultiQuery::full(vec![new0, new1]);
        let res = must.search(&q, 1, 80).unwrap();
        assert_eq!(res[0].0, id, "freshly inserted object must be findable");
    }

    #[test]
    fn flat_backends_reject_dynamic_insertion() {
        let set = corpus(80);
        let mut must = Must::build(set, Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let err = must.insert_object(&[vec![1.0; 8], vec![1.0; 4]]).unwrap_err();
        assert!(matches!(err, crate::MustError::Config(_)));
        assert_eq!(must.objects().len(), 80, "corpus untouched on rejection");
    }

    #[test]
    fn hnsw_backend_works_through_the_framework() {
        let set = corpus(250);
        let must = Must::build(
            set,
            Weights::uniform(2),
            MustBuildOptions { recipe: GraphRecipe::Hnsw, ..Default::default() },
        )
        .unwrap();
        let q = self_query(must.objects(), 99);
        let res = must.search(&q, 1, 60).unwrap();
        assert_eq!(res[0].0, 99);
    }
}
