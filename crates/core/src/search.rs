//! The joint search (Algorithm 2) over the fused index, the brute-force
//! searcher (`MUST--`), and exact ground-truth computation for the
//! semi-synthetic workloads.

use std::time::Instant;

use must_graph::search::{beam_search, SearchScratch};
use must_graph::{QueryScorer, SearchParams, SearchStats};
use must_vector::{JointDistance, MultiQuery, MultiVectorSet, ObjectId, Weights};

use crate::index::MustIndex;
use crate::oracle::MustQueryScorer;
use crate::MustError;

/// One search outcome with instrumentation.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Top-`k` `(id, joint similarity)`, best first.
    pub results: Vec<(ObjectId, f32)>,
    /// Graph-search statistics.
    pub stats: SearchStats,
    /// Per-modality kernel evaluations (the Lemma-4 ablation counter).
    pub kernel_evals: u64,
    /// Wall-clock seconds.
    pub secs: f64,
}

/// Reusable search state (visited stamps + result pool) — allocation-free
/// steady state across a query batch, as the response-time experiments
/// require.
#[derive(Default)]
pub struct JointSearcher {
    scratch: SearchScratch,
    query_counter: u64,
}

impl JointSearcher {
    /// Creates a fresh searcher.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs Algorithm 2 for `query` on `index`.
    ///
    /// `prune` toggles the Lemma-4 multi-vector computation optimisation.
    ///
    /// # Errors
    /// Propagates query/corpus arity mismatches.
    pub fn search(
        &mut self,
        index: &MustIndex,
        joint: &JointDistance<'_>,
        query: &MultiQuery,
        params: SearchParams,
        prune: bool,
    ) -> Result<SearchOutcome, MustError> {
        let scorer = MustQueryScorer::from_joint(joint, query, prune)?;
        let t0 = Instant::now();
        self.query_counter += 1;
        let rng_seed = 0x9A5E ^ self.query_counter;
        let res = match index {
            MustIndex::Flat(g) => beam_search(g, &scorer, params, &mut self.scratch, rng_seed),
            MustIndex::Hnsw(h) => h.search_with_scratch(&scorer, params, &mut self.scratch),
        };
        Ok(SearchOutcome {
            results: res.results,
            stats: res.stats,
            kernel_evals: scorer.kernel_evals(),
            secs: t0.elapsed().as_secs_f64(),
        })
    }
}

/// Brute-force joint top-`k` (the `MUST--` baseline): scans every object,
/// still benefiting from the Lemma-4 pruning against the running top-`k`
/// threshold.
///
/// # Errors
/// Propagates query/corpus arity mismatches.
pub fn brute_force_search(
    joint: &JointDistance<'_>,
    query: &MultiQuery,
    k: usize,
    prune: bool,
) -> Result<SearchOutcome, MustError> {
    let scorer = MustQueryScorer::from_joint(joint, query, prune)?;
    let t0 = Instant::now();
    let n = joint.set().len();
    let mut top: Vec<(ObjectId, f32)> = Vec::with_capacity(k + 1);
    let mut stats = SearchStats::default();
    for id in 0..n as u32 {
        stats.evaluated += 1;
        let threshold = if top.len() == k {
            top[k - 1].1
        } else {
            f32::NEG_INFINITY
        };
        match scorer.score_pruned(id, threshold) {
            Some(s) => {
                if top.len() < k || s > threshold {
                    let pos = top.partition_point(|t| t.1 >= s);
                    top.insert(pos, (id, s));
                    if top.len() > k {
                        top.pop();
                    }
                }
            }
            None => stats.pruned += 1,
        }
    }
    Ok(SearchOutcome {
        results: top,
        stats,
        kernel_evals: scorer.kernel_evals(),
        secs: t0.elapsed().as_secs_f64(),
    })
}

/// Exact top-`k` ground truth for a batch of queries under `weights`
/// (the protocol of the efficiency experiments: Figs. 6–8, Tab. VII).
/// Parallel over queries.
pub fn exact_ground_truth(
    set: &MultiVectorSet,
    weights: &Weights,
    queries: &[MultiQuery],
    k: usize,
) -> Result<Vec<Vec<ObjectId>>, MustError> {
    let joint = JointDistance::new(set, weights.clone())?;
    let threads = must_graph::par::build_threads();
    let out = must_graph::par::par_map(queries.len(), threads, |qi| {
        brute_force_search(&joint, &queries[qi], k, true)
            .map(|o| o.results.into_iter().map(|(id, _)| id).collect::<Vec<_>>())
    });
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{build_index, IndexOptions};
    use crate::oracle::JointOracle;
    use must_vector::VectorSetBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize) -> MultiVectorSet {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m0 = VectorSetBuilder::new(8, n);
        let mut m1 = VectorSetBuilder::new(4, n);
        for _ in 0..n {
            let v0: Vec<f32> = (0..8).map(|_| rng.random::<f32>() - 0.5).collect();
            let v1: Vec<f32> = (0..4).map(|_| rng.random::<f32>() - 0.5).collect();
            m0.push_normalized(&v0).unwrap();
            m1.push_normalized(&v1).unwrap();
        }
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    fn query_for(set: &MultiVectorSet, id: ObjectId) -> MultiQuery {
        MultiQuery::full(vec![
            set.modality(0).get(id).to_vec(),
            set.modality(1).get(id).to_vec(),
        ])
    }

    #[test]
    fn brute_force_finds_self_as_top1() {
        let set = corpus(200);
        let joint = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        for id in [0u32, 57, 199] {
            let q = query_for(&set, id);
            let out = brute_force_search(&joint, &q, 3, true).unwrap();
            assert_eq!(out.results[0].0, id);
        }
    }

    #[test]
    fn pruned_and_unpruned_brute_force_agree() {
        let set = corpus(150);
        let joint = JointDistance::new(&set, Weights::new(vec![0.9, 0.3]).unwrap()).unwrap();
        for id in [5u32, 99] {
            let q = query_for(&set, id);
            let a = brute_force_search(&joint, &q, 10, true).unwrap();
            let b = brute_force_search(&joint, &q, 10, false).unwrap();
            let ids_a: Vec<u32> = a.results.iter().map(|r| r.0).collect();
            let ids_b: Vec<u32> = b.results.iter().map(|r| r.0).collect();
            assert_eq!(ids_a, ids_b, "Lemma 4 must be lossless");
            assert!(a.kernel_evals <= b.kernel_evals, "pruning must save kernels");
        }
    }

    #[test]
    fn graph_search_reaches_brute_force_at_large_l() {
        let set = corpus(400);
        let weights = Weights::uniform(2);
        let oracle = JointOracle::new(&set, weights.clone()).unwrap();
        let (index, _) =
            build_index(&oracle, IndexOptions { gamma: 12, ..Default::default() }).unwrap();
        let joint = JointDistance::new(&set, weights).unwrap();
        let mut searcher = JointSearcher::new();
        let mut hits = 0;
        let total = 25;
        for t in 0..total {
            let id = (t * 16) as u32 % 400;
            let q = query_for(&set, id);
            let exact = brute_force_search(&joint, &q, 1, true).unwrap();
            let approx = searcher
                .search(&index, &joint, &q, SearchParams::new(1, 100), true)
                .unwrap();
            if approx.results[0].0 == exact.results[0].0 {
                hits += 1;
            }
        }
        assert!(hits >= total - 1, "recall {hits}/{total}");
    }

    #[test]
    fn exact_ground_truth_is_consistent_with_brute_force() {
        let set = corpus(120);
        let w = Weights::uniform(2);
        let queries: Vec<MultiQuery> = (0..6).map(|i| query_for(&set, i * 17)).collect();
        let gt = exact_ground_truth(&set, &w, &queries, 5).unwrap();
        assert_eq!(gt.len(), 6);
        let joint = JointDistance::new(&set, w).unwrap();
        for (q, g) in queries.iter().zip(&gt) {
            let bf = brute_force_search(&joint, q, 5, false).unwrap();
            let ids: Vec<u32> = bf.results.iter().map(|r| r.0).collect();
            assert_eq!(&ids, g);
        }
    }

    #[test]
    fn partial_query_searches_with_masked_weights() {
        let set = corpus(200);
        let joint = JointDistance::new(&set, Weights::uniform(2)).unwrap();
        // Text-only query (t = 1, auxiliary only).
        let q = MultiQuery::partial(vec![None, Some(set.modality(1).get(42).to_vec())]);
        let out = brute_force_search(&joint, &q, 1, true).unwrap();
        assert_eq!(out.results[0].0, 42);
    }
}
