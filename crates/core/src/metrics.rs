//! Evaluation metrics: `Recall@k(k')` (Eq. 1) and the similarity
//! measurement error `SME` (Eq. 4).

use must_vector::{MultiVectorSet, ObjectId};

/// `Recall@k(k') = |R ∩ G| / k'` where `R` is the top-`k` result ids and
/// `G` the ground-truth ids (Eq. 1).
///
/// Passing more than `k` results is allowed; only the first `k` count.
#[must_use]
pub fn recall_at(results: &[ObjectId], ground_truth: &[ObjectId], k: usize) -> f64 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    let hits = results
        .iter()
        .take(k)
        .filter(|id| ground_truth.contains(id))
        .count();
    hits as f64 / ground_truth.len() as f64
}

/// `SME(a, r) = 1 - IP(phi_0(a_0), phi_0(r_0))` (Eq. 4): how far the
/// returned object's target-modality content is from the ground truth's.
#[must_use]
pub fn sme(objects: &MultiVectorSet, truth: ObjectId, returned: ObjectId) -> f64 {
    1.0 - objects.modality(0).ip(truth, returned) as f64
}

/// Aggregates recall and SME over a workload.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkloadAccuracy {
    /// Mean `Recall@k(k')`.
    pub recall: f64,
    /// Mean SME of the top-1 result against the first ground-truth object.
    pub sme: f64,
    /// Number of queries aggregated.
    pub queries: usize,
}

/// Accumulator for [`WorkloadAccuracy`].
#[derive(Debug, Default)]
pub struct AccuracyAccumulator {
    recall_sum: f64,
    sme_sum: f64,
    n: usize,
}

impl AccuracyAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query's results.
    pub fn record(
        &mut self,
        objects: &MultiVectorSet,
        results: &[ObjectId],
        ground_truth: &[ObjectId],
        k: usize,
    ) {
        self.recall_sum += recall_at(results, ground_truth, k);
        if let (Some(&top), Some(&truth)) = (results.first(), ground_truth.first()) {
            self.sme_sum += sme(objects, truth, top);
        } else {
            self.sme_sum += 1.0; // no result: maximal error
        }
        self.n += 1;
    }

    /// Finalises the means.
    #[must_use]
    pub fn finish(self) -> WorkloadAccuracy {
        if self.n == 0 {
            return WorkloadAccuracy::default();
        }
        WorkloadAccuracy {
            recall: self.recall_sum / self.n as f64,
            sme: self.sme_sum / self.n as f64,
            queries: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_vector::VectorSetBuilder;

    fn objects() -> MultiVectorSet {
        let mut m0 = VectorSetBuilder::new(3, 3);
        m0.push_normalized(&[1.0, 0.0, 0.0]).unwrap();
        m0.push_normalized(&[0.6, 0.8, 0.0]).unwrap();
        m0.push_normalized(&[0.0, 0.0, 1.0]).unwrap();
        MultiVectorSet::new(vec![m0.finish()]).unwrap()
    }

    #[test]
    fn recall_counts_hits_within_k() {
        assert_eq!(recall_at(&[1, 2, 3], &[2], 1), 0.0);
        assert_eq!(recall_at(&[1, 2, 3], &[2], 2), 1.0);
        assert_eq!(recall_at(&[1, 2, 3], &[2, 9], 3), 0.5);
        assert_eq!(recall_at(&[], &[1], 5), 0.0);
        assert_eq!(recall_at(&[1], &[], 5), 0.0, "no ground truth yields 0");
    }

    #[test]
    fn recall_at_10_of_10_truths_all_found() {
        let truths: Vec<u32> = (0..10).collect();
        let results: Vec<u32> = (0..10).rev().collect();
        assert_eq!(recall_at(&results, &truths, 10), 1.0);
    }

    #[test]
    fn sme_is_zero_for_exact_hit_and_positive_otherwise() {
        let objs = objects();
        assert!(sme(&objs, 0, 0) < 1e-6);
        let e = sme(&objs, 0, 1);
        assert!((e - 0.4).abs() < 1e-5, "1 - 0.6 expected, got {e}");
        assert!((sme(&objs, 0, 2) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn accumulator_averages() {
        let objs = objects();
        let mut acc = AccuracyAccumulator::new();
        acc.record(&objs, &[0], &[0], 1); // hit, sme 0
        acc.record(&objs, &[1], &[0], 1); // miss, sme 0.4
        let out = acc.finish();
        assert_eq!(out.queries, 2);
        assert!((out.recall - 0.5).abs() < 1e-9);
        assert!((out.sme - 0.2).abs() < 1e-5);
    }

    #[test]
    fn empty_accumulator_is_zeroed() {
        let out = AccuracyAccumulator::new().finish();
        assert_eq!(out, WorkloadAccuracy::default());
    }
}
