//! Sharded scatter-gather serving: split a corpus into `S` independently
//! built shards, search them all per query, and merge the per-shard top-`k`
//! by exact joint similarity.
//!
//! The paper's offline/online split (Fig. 4) extends naturally to many
//! offline-built shards merged online: build time, memory, and insertion
//! contention all scale with a single monolithic engine, so a
//! production deployment partitions the corpus and builds every partition
//! in parallel.  The pieces:
//!
//! * [`ShardRouter`] — the deterministic object→shard assignment
//!   ([`ShardAssignment::RoundRobin`] or [`ShardAssignment::Hash`]) and the
//!   corpus splitter.
//! * [`ShardedMust`] — the build-side object: one [`Must`] per shard, built
//!   in parallel (`MUST_BUILD_THREADS` governs the worker budget across
//!   *and* within shards), plus the local→global id maps.  Dynamic
//!   insertion routes each new object to the currently smallest shard.
//! * [`ShardedServer`] — the online side: one frozen [`MustServer`] per
//!   shard behind a single [`Arc`].  A query fans out to every shard
//!   (scatter), runs the existing per-shard beam search, and the per-shard
//!   top-`k` lists merge into one global top-`k` (gather).
//! * [`ShardSummary`] + [`RoutePolicy`] — selective routing.  Every shard
//!   carries a summary (per-modality centroid segments plus residual
//!   radii); [`ShardedServer::with_routing`] scores a query against each
//!   summary under the active `ω²` weights and scatters to only the
//!   top-`r` shards, optionally with a reduced per-shard beam `l_shard`.
//!   `r = S` reproduces the full fan-out bit-identically.  Pair it with
//!   [`ShardAssignment::Clustered`] so shard membership is spatially
//!   coherent — under random assignment every shard holds a uniform slice
//!   of any query's neighbours and `r < S` routing must lose recall.
//!   Clustered membership additionally *replicates* boundary objects into
//!   their runner-up shards (closure assignment): per-shard beam cost
//!   scales with the beam, not the shard size, so the overlap buys
//!   low-fan-out coverage at almost no query-time cost, and the gather
//!   step drops the duplicate copies.
//!
//! ## Determinism contract
//!
//! Per-shard searches inherit [`MustServer`]'s fixed-seed determinism, and
//! the gather step orders candidates by `(similarity desc, global id asc)`
//! — a total order — so a sharded query's results are a pure function of
//! the query: bit-identical across thread counts, scatter strategies, and
//! repeated runs, exactly like the single-shard server.  Routing preserves
//! this: the router's scores are a pure function of `(query, weights,
//! summaries)` and ties break toward the lower shard index, so the set of
//! shards searched — and therefore the merged result — is deterministic
//! too.  Similarities
//! themselves are bit-identical to the unsharded engine's because a shard
//! row holds the same `f32` values at the same lane offsets as the
//! corresponding global row, so the fused dot product performs the same
//! float operations in the same order.
//!
//! ```
//! use must_core::framework::MustBuildOptions;
//! use must_core::shard::{ShardSpec, ShardedMust, ShardedServer};
//! use must_vector::{MultiQuery, MultiVectorSet, VectorSetBuilder, Weights};
//!
//! // 8 objects x 2 modalities, split over 2 shards, served scatter-gather.
//! let mut m0 = VectorSetBuilder::new(4, 8);
//! let mut m1 = VectorSetBuilder::new(2, 8);
//! for i in 0..8u32 {
//!     let mut img = [0.1f32; 4];
//!     img[(i % 4) as usize] = 1.0;
//!     m0.push_normalized(&img).unwrap();
//!     m1.push_normalized(&[1.0, i as f32 / 8.0]).unwrap();
//! }
//! let objects = MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap();
//! let sharded = ShardedMust::build(
//!     objects,
//!     Weights::uniform(2),
//!     MustBuildOptions::default(),
//!     ShardSpec::new(2),
//! )
//! .unwrap();
//! assert_eq!(sharded.num_shards(), 2);
//! assert_eq!(sharded.len(), 8);
//! let server = ShardedServer::freeze(sharded);
//! let query = MultiQuery::full(vec![vec![0.1, 1.0, 0.1, 0.1], vec![1.0, 0.125]]);
//! let out = server.search(&query, 1, 8).unwrap();
//! assert_eq!(out.results[0].0, 1); // global id, not a shard-local one
//! ```

use std::sync::Arc;
use std::time::Instant;

use must_graph::par;
use must_graph::{SearchParams, SearchStats};
use must_vector::{kernels, FusedRows, MultiQuery, MultiVectorSet, ObjectId, VectorSet, Weights};

use crate::framework::{Must, MustBuildOptions};
use crate::search::SearchOutcome;
use crate::server::{fan_out_batch, MustServer, ServerWorker};
use crate::MustError;

/// Deterministic object→shard assignment policy.
///
/// ```
/// use must_core::shard::ShardAssignment;
///
/// // Round-robin cycles through shards in id order…
/// assert_eq!(ShardAssignment::RoundRobin.shard_of(5, 4), 1);
/// // …while hashing scatters contiguous ids (but stays deterministic).
/// assert_eq!(
///     ShardAssignment::Hash.shard_of(5, 4),
///     ShardAssignment::Hash.shard_of(5, 4),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAssignment {
    /// Object `id` goes to shard `id % S` — perfectly balanced for the
    /// initial corpus.
    RoundRobin,
    /// Object `id` goes to shard `splitmix64(id) % S` — decorrelates shard
    /// membership from insertion order, so range-clustered corpora spread
    /// evenly.
    Hash,
    /// Objects go to the shard whose weighted fused centroid they are most
    /// similar to (deterministic balanced k-means over the fused rows,
    /// capacity `ceil(1.25 · n / S)` per shard), and *boundary* objects
    /// are additionally **replicated** into their strongest runner-up
    /// shards (closure assignment — shard membership overlaps, costing
    /// ~1.6× rows for coverage no disjoint partition reaches).
    /// Membership depends on the *data*, not the id, so
    /// [`ShardAssignment::shard_of`] is undefined — use
    /// [`ShardRouter::split_weighted`].  This is the assignment that
    /// makes selective routing ([`RoutePolicy`]) effective: each shard
    /// covers a coherent region and holds copies of the borderline
    /// objects nearby, so a query's neighbours concentrate in few shards.
    Clustered,
}

impl ShardAssignment {
    /// The shard object `id` belongs to, out of `shards`.
    ///
    /// # Panics
    /// Panics when `shards` is zero, or for
    /// [`ShardAssignment::Clustered`], whose assignment is data-dependent
    /// (split a corpus via [`ShardRouter::split_weighted`] instead).
    #[must_use]
    pub fn shard_of(self, id: ObjectId, shards: usize) -> usize {
        assert!(shards > 0, "shard count must be positive");
        match self {
            Self::RoundRobin => id as usize % shards,
            Self::Clustered => {
                panic!("clustered assignment is data-dependent; use ShardRouter::split_weighted")
            }
            Self::Hash => {
                // SplitMix64 finaliser: cheap, well-mixed, stable across
                // platforms (the assignment is part of the bundle format).
                let mut x = u64::from(id).wrapping_add(0x9E37_79B9_7F4A_7C15);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                // Reduce in u64: truncating to usize first would change
                // assignments on 32-bit targets.
                ((x ^ (x >> 31)) % shards as u64) as usize
            }
        }
    }

    /// Stable wire tag (bundle v4/v6 manifests).
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Self::RoundRobin => 0,
            Self::Hash => 1,
            Self::Clustered => 2,
        }
    }

    /// Inverse of [`ShardAssignment::tag`]; `None` for unknown tags.
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Self::RoundRobin),
            1 => Some(Self::Hash),
            2 => Some(Self::Clustered),
            _ => None,
        }
    }
}

/// How to split a corpus: shard count plus assignment policy.
///
/// ```
/// use must_core::shard::{ShardAssignment, ShardSpec};
///
/// let spec = ShardSpec::new(4);
/// assert_eq!(spec.shards, 4);
/// assert_eq!(spec.assignment, ShardAssignment::RoundRobin);
/// assert_eq!(ShardSpec::hashed(2).assignment, ShardAssignment::Hash);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec {
    /// Number of shards `S >= 1`.
    pub shards: usize,
    /// Assignment policy.
    pub assignment: ShardAssignment,
}

impl ShardSpec {
    /// A round-robin spec over `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self { shards, assignment: ShardAssignment::RoundRobin }
    }

    /// A hash-assigned spec over `shards` shards.
    #[must_use]
    pub fn hashed(shards: usize) -> Self {
        Self { shards, assignment: ShardAssignment::Hash }
    }

    /// A clustered spec over `shards` shards (balanced k-means membership
    /// — the natural partner of [`RoutePolicy`] selective routing).
    #[must_use]
    pub fn clustered(shards: usize) -> Self {
        Self { shards, assignment: ShardAssignment::Clustered }
    }
}

/// Splits a corpus into per-shard corpora under a [`ShardSpec`].
///
/// ```
/// use must_core::shard::{ShardRouter, ShardSpec};
/// use must_vector::{MultiVectorSet, VectorSetBuilder};
///
/// let mut m0 = VectorSetBuilder::new(2, 5);
/// for i in 0..5 {
///     m0.push_normalized(&[1.0, i as f32]).unwrap();
/// }
/// let set = MultiVectorSet::new(vec![m0.finish()]).unwrap();
/// let router = ShardRouter::new(ShardSpec::new(2)).unwrap();
/// let pieces = router.split(&set);
/// // Round-robin: shard 0 gets ids {0, 2, 4}, shard 1 gets {1, 3}.
/// assert_eq!(pieces[0].1, vec![0, 2, 4]);
/// assert_eq!(pieces[1].1, vec![1, 3]);
/// assert_eq!(pieces[0].0.len() + pieces[1].0.len(), 5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    spec: ShardSpec,
}

impl ShardRouter {
    /// Validates and wraps a spec.
    ///
    /// # Errors
    /// [`MustError::Config`] when the spec asks for zero shards.
    pub fn new(spec: ShardSpec) -> Result<Self, MustError> {
        if spec.shards == 0 {
            return Err(MustError::Config("shard count must be at least 1".into()));
        }
        Ok(Self { spec })
    }

    /// The spec in force.
    #[must_use]
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The shard object `id` belongs to.
    ///
    /// # Panics
    /// Panics for [`ShardAssignment::Clustered`] (data-dependent — see
    /// [`ShardRouter::split_weighted`]).
    #[must_use]
    pub fn shard_of(&self, id: ObjectId) -> usize {
        self.spec.assignment.shard_of(id, self.spec.shards)
    }

    /// Splits `objects` into `S` per-shard corpora, each paired with its
    /// local→global id map (`map[local] = global`).  Vector values are
    /// copied bit-exact, so per-shard similarities equal the unsharded
    /// engine's.  Id-based assignments partition the corpus; clustered
    /// specs may *overlap* (closure replication of boundary objects).
    /// Clustered specs cluster under uniform weights; use
    /// [`ShardRouter::split_weighted`] to cluster under the serving
    /// weights.
    #[must_use]
    pub fn split(&self, objects: &MultiVectorSet) -> Vec<(MultiVectorSet, Vec<ObjectId>)> {
        self.split_weighted(objects, None)
    }

    /// [`ShardRouter::split`] with explicit clustering weights: a
    /// [`ShardAssignment::Clustered`] spec groups objects by weighted
    /// fused similarity to `S` balanced k-means centroids (weights falling
    /// back to uniform when absent or of mismatched arity — the arity
    /// error then surfaces from the per-shard build, as it would
    /// unsharded).  Id-based assignments ignore `weights`.  Membership is
    /// deterministic: farthest-point seeding, fixed Lloyd rounds, and a
    /// margin-ordered balanced pass with all ties broken by id/index.
    #[must_use]
    pub fn split_weighted(
        &self,
        objects: &MultiVectorSet,
        weights: Option<&Weights>,
    ) -> Vec<(MultiVectorSet, Vec<ObjectId>)> {
        self.split_counted(objects, weights)
            .into_iter()
            .map(|(corpus, ids, _)| (corpus, ids))
            .collect()
    }

    /// [`ShardRouter::split_weighted`] that additionally reports each
    /// shard's *primary* member count: clustered shards lay their rows out
    /// primaries-first (closure replicas after), and the build path
    /// computes routing summaries over only that prefix.
    fn split_counted(
        &self,
        objects: &MultiVectorSet,
        weights: Option<&Weights>,
    ) -> Vec<(MultiVectorSet, Vec<ObjectId>, usize)> {
        let s = self.spec.shards;
        let members: Vec<(Vec<ObjectId>, usize)> = if self.spec.assignment
            == ShardAssignment::Clustered
        {
            let m = objects.num_modalities().max(1);
            let uniform;
            let w = match weights {
                Some(w) if w.modalities() == objects.num_modalities() => w,
                _ => {
                    uniform = Weights::uniform(m);
                    &uniform
                }
            };
            cluster_members(objects.fused(), w, s)
        } else {
            let mut members: Vec<Vec<ObjectId>> = vec![Vec::new(); s];
            for id in 0..objects.len() as ObjectId {
                members[self.shard_of(id)].push(id);
            }
            members
                .into_iter()
                .map(|m| {
                    let p = m.len();
                    (m, p)
                })
                .collect()
        };
        members
            .into_iter()
            .map(|(ids, primaries)| {
                let sets: Vec<VectorSet> = objects
                    .dims()
                    .iter()
                    .enumerate()
                    .map(|(k, &dim)| {
                        let view = objects.modality(k);
                        let mut flat = Vec::with_capacity(ids.len() * dim);
                        for &id in &ids {
                            flat.extend_from_slice(view.get(id));
                        }
                        VectorSet::from_flat(dim, flat).expect("split rows are well-formed")
                    })
                    .collect();
                let corpus = MultiVectorSet::new(sets).expect("equal cardinalities by construction");
                (corpus, ids, primaries)
            })
            .collect()
    }
}

/// Fixed Lloyd refinement rounds for [`ShardAssignment::Clustered`].  A
/// constant rather than a knob: clustered membership is a pure function of
/// `(corpus, weights, S)` and is recorded in bundles, so it must not vary
/// across builds of the same corpus.  Twenty rounds converges measurably
/// tighter partitions than eight on the committed MIT-States sweep
/// (routing coverage at fan-out 3 rises ~0.4 pt) at negligible build
/// cost next to the graph construction it precedes.
const CLUSTER_ROUNDS: usize = 20;

/// Capacity slack for the balanced pass: each cluster may hold up to
/// `ceil(1.25 · n / S)` members.  A hard `ceil(n / S)` cap forcibly
/// reassigns every overflow member of a natural cluster to a foreign
/// shard, splitting exactly the neighbourhoods selective routing needs
/// intact — measured on the committed sweep, the strict cap costs ~2 pt
/// of fan-out-1 routing coverage while the slack keeps shard sizes
/// within 25 % of even.
const CLUSTER_CAP_NUM: usize = 5;
/// Denominator of the capacity-slack fraction (`5/4` = 25 % slack).
const CLUSTER_CAP_DEN: usize = 4;

/// Closure-replication threshold, as a fraction of each object's
/// best-to-worst centroid-score spread (`2/5`): after the balanced pass,
/// an object is *replicated* into up to [`CLOSURE_MAX_REPLICAS`]
/// runner-up clusters whose centroid score is within `0.4 · spread` of
/// its best.  Boundary objects — exactly the ones whose neighbourhoods a
/// disjoint partition splits — then exist in every shard a router is
/// likely to send their queries to, which is what lifts low-fan-out
/// routing coverage past what any disjoint partition can reach (the best
/// disjoint fan-out-2 coverage measured on the committed MIT-States
/// sweep tops out near 0.96; replication takes it past 0.99).
/// Graph-search cost per shard scales with the beam width, not the shard
/// size, so the extra rows cost memory and build time but almost no
/// query latency — which is why the threshold errs generous.
const CLOSURE_FRAC_NUM: usize = 2;
/// Denominator of [`CLOSURE_FRAC_NUM`].
const CLOSURE_FRAC_DEN: usize = 5;
/// Most runner-up clusters one object may be replicated into.
const CLOSURE_MAX_REPLICAS: usize = 3;

/// A centroid row with every modality segment pre-multiplied by its `ω²`
/// weight, so one contiguous dot product against a fused row yields the
/// Lemma-1 weighted similarity (padding lanes are zero on both sides).
fn prescale_centroid(rows: &FusedRows, centroid: &[f32], weights: &Weights) -> Vec<f32> {
    let mut scaled = centroid.to_vec();
    for k in 0..rows.num_modalities() {
        let (a, b) = rows.segment_bounds(k);
        let w = weights.sq(k);
        for x in &mut scaled[a..b] {
            *x *= w;
        }
    }
    scaled
}

/// Deterministic balanced k-means membership over the fused rows: seeds by
/// farthest-point, refines centroids for [`CLUSTER_ROUNDS`] Lloyd rounds,
/// then assigns points in descending best-vs-second-margin order to their
/// most-similar cluster with spare capacity (`ceil(1.25 · n / S)` per
/// cluster — see [`CLUSTER_CAP_NUM`]), and finally *replicates* boundary
/// objects into their strongest runner-up clusters
/// ([`CLOSURE_FRAC_NUM`]) — so the returned member lists **overlap**.
/// All ties break by id or cluster index, so membership is reproducible
/// across thread counts and platforms.  Returns `S` member lists, each
/// laid out as ascending-id primaries followed by ascending-id replicas,
/// paired with its primary count (summaries are computed over the primary
/// prefix only); corpora smaller than `S` fall back to round-robin.
fn cluster_members(rows: &FusedRows, weights: &Weights, s: usize) -> Vec<(Vec<ObjectId>, usize)> {
    let n = rows.len();
    if n < s || s <= 1 {
        let mut members: Vec<Vec<ObjectId>> = vec![Vec::new(); s];
        for id in 0..n as ObjectId {
            members[id as usize % s.max(1)].push(id);
        }
        return members.into_iter().map(|m| { let p = m.len(); (m, p) }).collect();
    }
    let sim = |i: usize, scaled: &[f32]| kernels::ip_prescaled_segments(rows.row(i as ObjectId), scaled);

    // Farthest-point seeding: start from row 0, then repeatedly take the
    // row least similar to its closest chosen seed (tie → lowest id).
    let mut chosen = vec![false; n];
    chosen[0] = true;
    let mut seeds = vec![0usize];
    let first = prescale_centroid(rows, rows.row(0), weights);
    let mut nearest: Vec<f32> = (0..n).map(|i| sim(i, &first)).collect();
    while seeds.len() < s {
        let next = (0..n)
            .filter(|&i| !chosen[i])
            .min_by(|&a, &b| nearest[a].total_cmp(&nearest[b]).then(a.cmp(&b)))
            .expect("n >= s leaves unchosen rows");
        chosen[next] = true;
        seeds.push(next);
        let scaled = prescale_centroid(rows, rows.row(next as ObjectId), weights);
        for (i, near) in nearest.iter_mut().enumerate() {
            *near = near.max(sim(i, &scaled));
        }
    }

    // Lloyd rounds: assign to the most-similar centroid (tie → lowest
    // cluster), recompute means; an emptied cluster keeps its centroid.
    let mut centroids: Vec<Vec<f32>> =
        seeds.iter().map(|&i| rows.row(i as ObjectId).to_vec()).collect();
    let mut assign = vec![0usize; n];
    for _ in 0..CLUSTER_ROUNDS {
        let scaled: Vec<Vec<f32>> =
            centroids.iter().map(|c| prescale_centroid(rows, c, weights)).collect();
        for (i, slot) in assign.iter_mut().enumerate() {
            let mut best = (sim(i, &scaled[0]), 0usize);
            for (c, sc) in scaled.iter().enumerate().skip(1) {
                let v = sim(i, sc);
                if v > best.0 {
                    best = (v, c);
                }
            }
            *slot = best.1;
        }
        let mut sums = vec![vec![0.0f32; rows.stride()]; s];
        let mut counts = vec![0usize; s];
        for (i, &c) in assign.iter().enumerate() {
            counts[c] += 1;
            for (dst, src) in sums[c].iter_mut().zip(rows.row(i as ObjectId)) {
                *dst += src;
            }
        }
        for (c, sum) in sums.into_iter().enumerate() {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f32;
                centroids[c] = sum.into_iter().map(|x| x * inv).collect();
            }
        }
    }

    // Balanced greedy assignment: points with the clearest favourite
    // (largest best-vs-second margin) claim a slot first, each going to
    // its most-similar cluster that still has capacity.
    let scaled: Vec<Vec<f32>> =
        centroids.iter().map(|c| prescale_centroid(rows, c, weights)).collect();
    let mut sims = vec![0.0f32; n * s];
    let mut order: Vec<(f32, usize)> = Vec::with_capacity(n);
    for i in 0..n {
        let (mut best, mut second) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
        for (c, sc) in scaled.iter().enumerate() {
            let v = sim(i, sc);
            sims[i * s + c] = v;
            if v > best {
                second = best;
                best = v;
            } else if v > second {
                second = v;
            }
        }
        order.push((best - second, i));
    }
    order.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let cap = (n * CLUSTER_CAP_NUM).div_ceil(s * CLUSTER_CAP_DEN).max(n.div_ceil(s));
    let mut members: Vec<Vec<ObjectId>> = vec![Vec::new(); s];
    let mut prefs: Vec<usize> = (0..s).collect();
    for &(_, i) in &order {
        prefs.sort_unstable_by(|&a, &b| sims[i * s + b].total_cmp(&sims[i * s + a]).then(a.cmp(&b)));
        let c = *prefs.iter().find(|&&c| members[c].len() < cap).expect("cap * S >= n");
        members[c].push(i as ObjectId);
    }
    // `n >= s` guarantees enough points to populate every cluster; steal
    // the best-fitting member from the largest donor if one ended empty.
    for c in 0..s {
        while members[c].is_empty() {
            let donor = (0..s)
                .max_by(|&a, &b| members[a].len().cmp(&members[b].len()).then(b.cmp(&a)))
                .expect("at least one cluster");
            if members[donor].len() <= 1 {
                break;
            }
            let pos = (0..members[donor].len())
                .max_by(|&a, &b| {
                    let (ia, ib) = (members[donor][a] as usize, members[donor][b] as usize);
                    sims[ia * s + c].total_cmp(&sims[ib * s + c]).then(ib.cmp(&ia))
                })
                .expect("donor is non-empty");
            let moved = members[donor].remove(pos);
            members[c].push(moved);
        }
    }
    // Closure replication: copy boundary objects into their strongest
    // runner-up clusters (within [`CLOSURE_FRAC_NUM`]/[`CLOSURE_FRAC_DEN`]
    // of the object's score spread, capped at twice the balanced
    // capacity).  Primaries sort first so replicas land after them —
    // summaries cover only the primary prefix.  Id-order iteration and
    // index tie-breaks keep membership deterministic.
    let mut primary = vec![0usize; n];
    for (c, ids) in members.iter().enumerate() {
        for &id in ids {
            primary[id as usize] = c;
        }
    }
    for ids in &mut members {
        ids.sort_unstable();
    }
    let counts: Vec<usize> = members.iter().map(Vec::len).collect();
    let rep_cap = 2 * cap;
    let frac = CLOSURE_FRAC_NUM as f32 / CLOSURE_FRAC_DEN as f32;
    for i in 0..n {
        let row = &sims[i * s..(i + 1) * s];
        let best = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let worst = row.iter().fold(f32::INFINITY, |a, &b| a.min(b));
        let thr = best - frac * (best - worst);
        let mut cands: Vec<usize> =
            (0..s).filter(|&c| c != primary[i] && row[c] >= thr).collect();
        cands.sort_unstable_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
        for &c in cands.iter().take(CLOSURE_MAX_REPLICAS) {
            if members[c].len() < rep_cap {
                members[c].push(i as ObjectId);
            }
        }
    }
    // Id-order iteration already appended each replica tail ascending.
    members.into_iter().zip(counts).collect()
}

/// A shard's routing summary: the mean fused row (`centroid`, padding
/// lanes zero) plus, per modality, the largest L2 distance from any member
/// row's segment to the centroid's (`radii[k]`).  Clustered shards summarise
/// only their **primary** members: closure replicas are described by their
/// own primary shard's summary (see [`ShardSummary::compute`]'s prefix
/// variant), so the bound stays tight enough to tell shards apart.
///
/// Stored **unweighted**: for a query segment `q_k`, Cauchy–Schwarz bounds
/// any member `x`'s inner product by
/// `IP(q_k, x_k) <= IP(q_k, c_k) + ||q_k|| * radii[k]`, and the router
/// applies the active `ω²` weights query-side via
/// [`Weights::weighted_sum`] — exactly where the fused query row applies
/// them — so one summary serves every weight override without rebuilding.
///
/// Summaries are derived from the rows at build/load time and persisted in
/// bundle v6.  After [`ShardedMust::insert_object`] the centroid stays
/// **fixed** and only the target shard's radii grow, which keeps the bound
/// valid (a re-derived centroid would shift every residual); this is why
/// v6 stores summaries verbatim instead of re-deriving them on load.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    centroid: Vec<f32>,
    radii: Vec<f32>,
}

impl ShardSummary {
    /// Derives the summary of a shard's fused rows.
    #[must_use]
    pub fn compute(rows: &FusedRows) -> Self {
        Self::compute_prefix(rows, rows.len())
    }

    /// Derives the summary of the first `count` rows — the build path for
    /// clustered shards, whose rows are laid out primary-members-first:
    /// closure replicas are *excluded* from the summary because each is
    /// already covered by its own primary shard's summary, and folding the
    /// deliberately-borderline replicas in would widen every centroid and
    /// radius until the shards' summaries all look alike and the router
    /// cannot tell them apart.
    fn compute_prefix(rows: &FusedRows, count: usize) -> Self {
        let count = count.min(rows.len()).max(1);
        let mut centroid = vec![0.0f32; rows.stride()];
        for id in 0..count as ObjectId {
            for (dst, src) in centroid.iter_mut().zip(rows.row(id)) {
                *dst += src;
            }
        }
        let inv = 1.0 / count as f32;
        for x in &mut centroid {
            *x *= inv;
        }
        let mut summary = Self { centroid, radii: vec![0.0; rows.num_modalities()] };
        for id in 0..count as ObjectId {
            summary.grow(rows, id);
        }
        summary
    }

    /// Reassembles a summary from persisted parts (the bundle-v6 load
    /// path).
    ///
    /// # Errors
    /// [`MustError::Config`] on non-finite values or negative radii.
    pub fn from_parts(centroid: Vec<f32>, radii: Vec<f32>) -> Result<Self, MustError> {
        if centroid.iter().any(|x| !x.is_finite())
            || radii.iter().any(|r| !r.is_finite() || *r < 0.0)
        {
            return Err(MustError::Config(
                "shard summary holds non-finite or negative values".into(),
            ));
        }
        Ok(Self { centroid, radii })
    }

    /// The mean fused row (stride-length, padding lanes zero).
    #[must_use]
    pub fn centroid(&self) -> &[f32] {
        &self.centroid
    }

    /// Per-modality residual radii (largest member-to-centroid segment L2).
    #[must_use]
    pub fn radii(&self) -> &[f32] {
        &self.radii
    }

    /// Widens the radii to cover row `local` (the centroid stays fixed —
    /// see the type docs for why).
    fn grow(&mut self, rows: &FusedRows, local: ObjectId) {
        for (k, radius) in self.radii.iter_mut().enumerate() {
            let (a, b) = rows.segment_bounds(k);
            let d = kernels::l2_sq(rows.segment(local, k), &self.centroid[a..b]).sqrt();
            *radius = radius.max(d);
        }
    }
}

/// The selective-routing knob: scatter each query to the `fan_out`
/// highest-scoring shards, optionally shrinking the per-shard beam to
/// `l_shard`.
///
/// `fan_out >= S` skips scoring entirely and, with `l_shard: None`,
/// reproduces the full fan-out **bit-identically** — routing then selects
/// every shard in index order, each shard runs the exact same search, and
/// the gather merge is the same total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutePolicy {
    /// Number of shards to search per query (`r`); clamped to at least 1
    /// and at most `S` at use.
    pub fan_out: usize,
    /// Per-shard beam pool override; `None` keeps the caller's `l`.  The
    /// saved budget is where routed QPS comes from: `r` shards at
    /// `l_shard` cost roughly `r * l_shard` beam slots versus the full
    /// fan-out's `S * l`.  Values below `k` are raised to `k` (a pool
    /// smaller than the result list cannot exist).
    pub l_shard: Option<usize>,
}

impl RoutePolicy {
    /// Route to the top-`fan_out` shards, keeping the caller's beam width.
    #[must_use]
    pub fn new(fan_out: usize) -> Self {
        Self { fan_out: fan_out.max(1), l_shard: None }
    }

    /// Route to the top-`fan_out` shards with per-shard beam `l_shard`.
    #[must_use]
    pub fn with_beam(fan_out: usize, l_shard: usize) -> Self {
        Self { fan_out: fan_out.max(1), l_shard: Some(l_shard) }
    }
}

/// The build-side sharded instance: one [`Must`] per shard plus the
/// local→global id maps.  See the module docs for the full dataflow.
pub struct ShardedMust {
    shards: Vec<Must>,
    global_ids: Vec<Vec<ObjectId>>,
    assignment: ShardAssignment,
    summaries: Vec<ShardSummary>,
    /// Distinct global objects (≤ the sum of shard sizes: clustered
    /// closure replication stores boundary objects in several shards).
    total: usize,
}

impl ShardedMust {
    /// Splits `objects` under `spec` and builds every shard's fused engine
    /// and graph **in parallel**: the `MUST_BUILD_THREADS` budget is
    /// divided between concurrent shard builds and each build's internal
    /// workers, so small shard counts still saturate the machine while
    /// the machine-wide cap holds.
    ///
    /// Each shard derives its build seed from `opts.rng_seed` and the shard
    /// index, so the result is deterministic for a given `(corpus, opts,
    /// spec)` regardless of thread count.  With `spec.shards == 1` the
    /// single shard's build is identical to `Must::build` with the same
    /// options.
    ///
    /// # Errors
    /// [`MustError::Config`] when the spec is degenerate (zero shards, or
    /// more shards than objects, which would leave a shard empty);
    /// propagates per-shard build errors.
    pub fn build(
        objects: MultiVectorSet,
        weights: Weights,
        opts: MustBuildOptions,
        spec: ShardSpec,
    ) -> Result<Self, MustError> {
        let router = ShardRouter::new(spec)?;
        if objects.is_empty() {
            return Err(MustError::Config("cannot shard an empty object set".into()));
        }
        if spec.shards > objects.len() {
            return Err(MustError::Config(format!(
                "{} shards over {} objects would leave shards empty",
                spec.shards,
                objects.len()
            )));
        }
        let distinct = objects.len();
        let pieces = router.split_counted(&objects, Some(&weights));
        drop(objects);
        let mut global_ids = Vec::with_capacity(pieces.len());
        let mut primaries = Vec::with_capacity(pieces.len());
        let corpora: Vec<std::sync::Mutex<Option<MultiVectorSet>>> = pieces
            .into_iter()
            .map(|(corpus, ids, primary)| {
                if corpus.is_empty() {
                    return Err(MustError::Config(
                        "assignment left a shard empty; use fewer shards or round-robin".into(),
                    ));
                }
                global_ids.push(ids);
                primaries.push(primary);
                Ok(std::sync::Mutex::new(Some(corpus)))
            })
            .collect::<Result<_, _>>()?;

        // Split the machine budget: `outer` shard builds run concurrently
        // and each gets `inner` workers, so the total never exceeds the
        // `MUST_BUILD_THREADS` cap (graph builds are thread-count
        // invariant, so the split does not affect results).  An explicit
        // `opts.threads` is honoured per shard unchanged.
        let total = par::build_threads();
        let outer = total.min(corpora.len());
        let inner = if opts.threads == 0 { (total / outer).max(1) } else { opts.threads };
        let built = par::par_map(corpora.len(), outer, |s| {
            let corpus = corpora[s]
                .lock()
                .expect("no prior panic")
                .take()
                .expect("each shard corpus is taken once");
            let opts = MustBuildOptions { threads: inner, ..Self::shard_opts(opts, s) };
            Must::build(corpus, weights.clone(), opts)
        });
        let shards = built.into_iter().collect::<Result<Vec<_>, _>>()?;
        let summaries = shards
            .iter()
            .zip(&primaries)
            .map(|(sh, &p)| ShardSummary::compute_prefix(sh.objects().fused(), p))
            .collect();
        Ok(Self { shards, global_ids, assignment: spec.assignment, summaries, total: distinct })
    }

    /// Build options for shard `s`: the caller's options with a
    /// shard-decorrelated RNG seed (shard 0 keeps the original seed, so a
    /// 1-shard build reproduces the unsharded one exactly).
    #[must_use]
    pub fn shard_opts(opts: MustBuildOptions, s: usize) -> MustBuildOptions {
        MustBuildOptions {
            rng_seed: opts.rng_seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..opts
        }
    }

    /// Reassembles a sharded instance from prebuilt shards and their
    /// local→global maps — the load path for bundles v1–v5, which carry no
    /// summaries: routing summaries are **derived** from the shard rows
    /// here.  (Correct only when no post-derivation insertions happened
    /// before the save; bundle v6 persists summaries verbatim for exactly
    /// that reason — see [`ShardedMust::from_parts_with_summaries`].)
    ///
    /// # Errors
    /// [`MustError::Config`] when a map's length disagrees with its shard's
    /// corpus, a global id repeats within one shard, the maps' union does
    /// not densely cover `0..total` (ids may repeat *across* shards —
    /// clustered closure replication does), or the shards disagree on
    /// weights (every shard must serve the same joint similarity).
    pub fn from_parts(
        shards: Vec<Must>,
        global_ids: Vec<Vec<ObjectId>>,
        assignment: ShardAssignment,
    ) -> Result<Self, MustError> {
        Self::assemble(shards, global_ids, assignment, None)
    }

    /// [`ShardedMust::from_parts`] with persisted summaries (the bundle-v6
    /// load path): summaries are adopted verbatim instead of re-derived,
    /// preserving radii grown by pre-save insertions.
    ///
    /// # Errors
    /// Everything [`ShardedMust::from_parts`] rejects, plus summaries
    /// whose count or per-shard shape disagrees with the shards.
    pub fn from_parts_with_summaries(
        shards: Vec<Must>,
        global_ids: Vec<Vec<ObjectId>>,
        assignment: ShardAssignment,
        summaries: Vec<ShardSummary>,
    ) -> Result<Self, MustError> {
        Self::assemble(shards, global_ids, assignment, Some(summaries))
    }

    fn assemble(
        shards: Vec<Must>,
        global_ids: Vec<Vec<ObjectId>>,
        assignment: ShardAssignment,
        summaries: Option<Vec<ShardSummary>>,
    ) -> Result<Self, MustError> {
        if shards.is_empty() {
            return Err(MustError::Config("a sharded instance needs at least one shard".into()));
        }
        if shards.len() != global_ids.len() {
            return Err(MustError::Config(format!(
                "{} shards but {} id maps",
                shards.len(),
                global_ids.len()
            )));
        }
        // Clustered closure replication stores boundary objects in several
        // shards, so ids may repeat *across* maps; the dense-id invariant
        // insert_object relies on becomes "the union of the maps is
        // exactly 0..total" for the distinct-object count `total`.
        let bound: usize = global_ids.iter().map(Vec::len).sum();
        let mut seen = vec![0u64; bound.div_ceil(64)];
        for (shard, ids) in shards.iter().zip(&global_ids) {
            if shard.objects().len() != ids.len() {
                return Err(MustError::Config(format!(
                    "shard holds {} objects but its id map covers {}",
                    shard.objects().len(),
                    ids.len()
                )));
            }
            if shard.weights() != shards[0].weights() {
                return Err(MustError::Config("shards disagree on weights".into()));
            }
            let mut in_shard = vec![0u64; bound.div_ceil(64)];
            for &id in ids {
                let idx = id as usize;
                let (w, b) = (idx / 64, idx % 64);
                if idx >= bound || in_shard[w] & (1 << b) != 0 {
                    return Err(MustError::Config(format!(
                        "global id {id} out of range or repeated within a shard"
                    )));
                }
                in_shard[w] |= 1 << b;
                seen[w] |= 1 << b;
            }
        }
        let total = global_ids.iter().flatten().map(|&id| id as usize + 1).max().unwrap_or(0);
        if (0..total).any(|idx| seen[idx / 64] & (1 << (idx % 64)) == 0) {
            return Err(MustError::Config(
                "global ids must densely cover 0..total across the shards".into(),
            ));
        }
        let summaries = match summaries {
            Some(sums) => {
                if sums.len() != shards.len() {
                    return Err(MustError::Config(format!(
                        "{} shards but {} routing summaries",
                        shards.len(),
                        sums.len()
                    )));
                }
                for (shard, sum) in shards.iter().zip(&sums) {
                    let rows = shard.objects().fused();
                    if sum.centroid.len() != rows.stride()
                        || sum.radii.len() != rows.num_modalities()
                    {
                        return Err(MustError::Config(format!(
                            "routing summary shape ({} centroid floats, {} radii) does not \
                             match the shard layout ({} stride, {} modalities)",
                            sum.centroid.len(),
                            sum.radii.len(),
                            rows.stride(),
                            rows.num_modalities()
                        )));
                    }
                }
                sums
            }
            None => shards.iter().map(|sh| ShardSummary::compute(sh.objects().fused())).collect(),
        };
        Ok(Self { shards, global_ids, assignment, summaries, total })
    }

    /// Number of shards `S`.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Distinct objects across all shards (closure replicas counted once).
    #[must_use]
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether no shard holds any object.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The build-side instance of shard `s`.
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn shard(&self, s: usize) -> &Must {
        &self.shards[s]
    }

    /// Shard `s`'s local→global id map (`map[local] = global`).
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn global_ids(&self, s: usize) -> &[ObjectId] {
        &self.global_ids[s]
    }

    /// The assignment policy the corpus was split under (recorded in the
    /// bundle manifest; insertions use size-based routing instead).
    #[must_use]
    pub fn assignment(&self) -> ShardAssignment {
        self.assignment
    }

    /// Shard `s`'s routing summary.
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn summary(&self, s: usize) -> &ShardSummary {
        &self.summaries[s]
    }

    /// The weights in force (identical across shards by construction).
    #[must_use]
    pub fn weights(&self) -> &Weights {
        self.shards[0].weights()
    }

    /// Dynamically inserts a new object (Section IX), routing it to the
    /// currently **smallest shard** (ties break toward the lowest index),
    /// which keeps shard sizes balanced as the corpus grows.  Returns the
    /// new *global* id.
    ///
    /// # Errors
    /// [`MustError::Config`] when the chosen shard's backend does not
    /// support dynamic insertion (only HNSW does — flat graphs need
    /// periodic reconstruction); vector errors for malformed rows.
    /// Nothing changes on error:
    ///
    /// ```
    /// use must_core::framework::MustBuildOptions;
    /// use must_core::shard::{ShardSpec, ShardedMust};
    /// use must_core::MustError;
    /// use must_vector::{MultiVectorSet, VectorSetBuilder, Weights};
    ///
    /// let mut m0 = VectorSetBuilder::new(2, 6);
    /// for i in 0..6 {
    ///     m0.push_normalized(&[1.0, i as f32]).unwrap();
    /// }
    /// let objects = MultiVectorSet::new(vec![m0.finish()]).unwrap();
    /// // The default recipe builds flat graphs, which cannot grow online.
    /// let mut sharded = ShardedMust::build(
    ///     objects, Weights::uniform(1), MustBuildOptions::default(), ShardSpec::new(2),
    /// ).unwrap();
    /// let err = sharded.insert_object(&[vec![0.6, 0.8]]).unwrap_err();
    /// assert!(matches!(err, MustError::Config(_)));
    /// assert_eq!(sharded.len(), 6, "nothing changed on rejection");
    /// ```
    pub fn insert_object(&mut self, rows: &[Vec<f32>]) -> Result<ObjectId, MustError> {
        let target = (0..self.shards.len())
            .min_by_key(|&s| self.global_ids[s].len())
            .expect("at least one shard");
        let global = self.len() as ObjectId;
        self.shards[target].insert_object(rows)?;
        self.global_ids[target].push(global);
        self.total += 1;
        // Keep the routing bound valid: widen the target's radii around
        // its *fixed* centroid so the new row is covered (re-deriving the
        // centroid would shift every other member's residual).
        let fused = self.shards[target].objects().fused();
        let local = fused.len() as ObjectId - 1;
        self.summaries[target].grow(fused, local);
        Ok(global)
    }
}

/// The gather state every serving handle shares: frozen per-shard servers,
/// the local→global maps (plus a precomputed is-identity flag per map),
/// and the routing summaries.
struct ShardedCore {
    shards: Vec<MustServer>,
    global_ids: Vec<Vec<ObjectId>>,
    /// `identity[s]` ⇔ `global_ids[s][local] == local` for every local id
    /// — true for any single-shard bundle, where gather can skip the remap
    /// entirely.
    identity: Vec<bool>,
    summaries: Vec<ShardSummary>,
    /// Distinct global objects (see [`ShardedMust::len`]).
    total: usize,
}

impl ShardedCore {
    /// The shards to search for `query` under `weights`: the `fan_out`
    /// summaries with the highest weighted upper bound
    /// `Σ_k ω²_k (IP(q_k, c_k) + ‖q_k‖ · radius_k)`, returned in ascending
    /// shard order.  `fan_out >= S` skips scoring (full fan-out);
    /// malformed queries also fan out fully so the per-shard search
    /// reports the same error it would unrouted.
    fn route(&self, query: &MultiQuery, weights: &Weights, fan_out: usize) -> Vec<usize> {
        let s = self.shards.len();
        if fan_out >= s {
            return (0..s).collect();
        }
        let rows = self.shards[0].objects().fused();
        let m = rows.num_modalities();
        if query.num_slots() != m || weights.modalities() != m {
            return (0..s).collect();
        }
        // Per-modality query norms, shared across shards; a slot of the
        // wrong dimension scores zero and lets the search surface the
        // dimension error itself.
        let probes: Vec<Option<(&[f32], f32)>> = (0..m)
            .map(|k| {
                query
                    .slot(k)
                    .filter(|q| q.len() == rows.dims()[k])
                    .map(|q| (q, kernels::ip(q, q).max(0.0).sqrt()))
            })
            .collect();
        let mut terms = vec![0.0f32; m];
        let mut scored: Vec<(f32, usize)> = (0..s)
            .map(|i| {
                let summary = &self.summaries[i];
                for (k, term) in terms.iter_mut().enumerate() {
                    *term = match probes[k] {
                        Some((q, norm)) => {
                            let (a, _) = rows.segment_bounds(k);
                            kernels::ip(q, &summary.centroid()[a..a + q.len()])
                                + norm * summary.radii()[k]
                        }
                        None => 0.0,
                    };
                }
                (weights.weighted_sum(&terms), i)
            })
            .collect();
        scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut selected: Vec<usize> =
            scored.into_iter().take(fan_out.max(1)).map(|(_, i)| i).collect();
        selected.sort_unstable();
        selected
    }

    /// Resolves a routing policy to `(shards to search, per-shard search
    /// parameters)` for one query.  `routing: None` and `fan_out >= S`
    /// both yield every shard with the caller's `l` — the bit-identical
    /// full fan-out.  Routed searches keep the standard Algorithm-2
    /// parameters (random pool init included): measured on the committed
    /// sweep, dropping the random fill for shrunk beams loses ~0.8 pt of
    /// recall for no cost win — the fill also primes the Lemma-4 pruning
    /// threshold, so its evaluations pay for themselves.
    fn plan(
        &self,
        routing: Option<RoutePolicy>,
        query: &MultiQuery,
        weights: Option<&Weights>,
        k: usize,
        l: usize,
    ) -> (Vec<usize>, SearchParams) {
        match routing {
            None => ((0..self.shards.len()).collect(), SearchParams::new(k, l.max(k))),
            Some(policy) => {
                let weights = weights.unwrap_or_else(|| self.shards[0].weights());
                let selected = self.route(query, weights, policy.fan_out);
                let ls = policy.l_shard.map_or(l, |ls| ls.max(k));
                (selected, SearchParams::new(k, ls.max(k)))
            }
        }
    }

    /// Merges `(shard index, outcome)` pairs into the global top-`k`: map
    /// local ids to global, sort by `(similarity desc, global id asc)` — a
    /// total order, so the merge is deterministic — drop closure-replica
    /// duplicates (bit-identical copies of one object score identically in
    /// every shard holding it, so duplicates sort adjacent), and truncate.
    /// Per-shard stats and kernel counts accumulate.  A lone outcome from
    /// an identity-mapped shard is already the answer (the per-shard pool
    /// returns at most `k` results in descending-similarity order), so
    /// the remap, sort, and truncate are all skipped.
    fn gather(&self, per_shard: Vec<(usize, SearchOutcome)>, k: usize, t0: Instant) -> SearchOutcome {
        if let [(s, out)] = per_shard.as_slice() {
            if self.identity[*s] {
                debug_assert!(out.results.len() <= k);
                let (_, out) = per_shard.into_iter().next().expect("exactly one outcome");
                return SearchOutcome { secs: t0.elapsed().as_secs_f64(), ..out };
            }
        }
        let total: usize = per_shard.iter().map(|(_, out)| out.results.len()).sum();
        let mut results: Vec<(ObjectId, f32)> = Vec::with_capacity(total);
        let mut stats = SearchStats::default();
        let mut kernel_evals = 0;
        for (s, out) in per_shard {
            let map = &self.global_ids[s];
            results.extend(out.results.into_iter().map(|(local, sim)| (map[local as usize], sim)));
            stats.hops += out.stats.hops;
            stats.evaluated += out.stats.evaluated;
            stats.pruned += out.stats.pruned;
            kernel_evals += out.kernel_evals;
        }
        results.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        results.dedup_by(|a, b| a.0 == b.0);
        results.truncate(k);
        SearchOutcome { results, stats, kernel_evals, secs: t0.elapsed().as_secs_f64() }
    }
}

/// The online sharded serving handle: cheap to clone, `Send + Sync`, and —
/// like [`MustServer`] — bit-deterministic: a query's merged results are a
/// pure function of the query.  See the module docs for the dataflow.
#[derive(Clone)]
pub struct ShardedServer {
    core: Arc<ShardedCore>,
    routing: Option<RoutePolicy>,
}

impl ShardedServer {
    /// Freezes a built [`ShardedMust`] into a serving snapshot, consuming
    /// it.  Each shard freezes exactly as [`MustServer::freeze`] does (flat
    /// graphs to CSR, HNSW keeps its layers).  The snapshot starts with
    /// routing disabled (full fan-out); dial it with
    /// [`ShardedServer::with_routing`].
    #[must_use]
    pub fn freeze(sharded: ShardedMust) -> Self {
        let identity = sharded
            .global_ids
            .iter()
            .map(|ids| ids.iter().enumerate().all(|(local, &global)| global as usize == local))
            .collect();
        Self {
            core: Arc::new(ShardedCore {
                shards: sharded.shards.into_iter().map(MustServer::freeze).collect(),
                global_ids: sharded.global_ids,
                identity,
                summaries: sharded.summaries,
                total: sharded.total,
            }),
            routing: None,
        }
    }

    /// Loads a persisted bundle straight into a sharded serving snapshot.
    /// Accepts the sharded bundles v4/v6 *and* every single-shard format
    /// (v1–v3, v5), which load as one shard with the identity id map.
    ///
    /// # Errors
    /// Propagates [`crate::persist::load_sharded`] errors.
    pub fn load(path: &std::path::Path) -> Result<Self, MustError> {
        Ok(Self::freeze(crate::persist::load_sharded(path)?))
    }

    /// A handle over the **same** snapshot that routes every search
    /// through `policy`: queries scatter to only the `policy.fan_out`
    /// shards whose [`ShardSummary`] scores highest under the active
    /// weights (defaults or per-query overrides alike), searching each
    /// with the policy's per-shard pool.  Cheap (one [`Arc`] clone); the
    /// unrouted handle keeps serving full fan-out.  Workers minted by
    /// [`ShardedServer::worker`] — and therefore [`ShardedServer::serve`]
    /// and the batch paths — inherit the policy.
    #[must_use]
    pub fn with_routing(&self, policy: RoutePolicy) -> Self {
        Self { core: Arc::clone(&self.core), routing: Some(policy) }
    }

    /// A handle over the same snapshot with routing disabled again.
    #[must_use]
    pub fn without_routing(&self) -> Self {
        Self { core: Arc::clone(&self.core), routing: None }
    }

    /// The routing policy in force, if any.
    #[must_use]
    pub fn routing(&self) -> Option<RoutePolicy> {
        self.routing
    }

    /// Shard `s`'s routing summary.
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn summary(&self, s: usize) -> &ShardSummary {
        &self.core.summaries[s]
    }

    /// Number of shards `S`.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.core.shards.len()
    }

    /// Distinct served objects (closure replicas counted once).
    #[must_use]
    pub fn len(&self) -> usize {
        self.core.total
    }

    /// Whether the snapshot serves no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The frozen server of shard `s` (per-shard introspection).
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn shard(&self, s: usize) -> &MustServer {
        &self.core.shards[s]
    }

    /// Shard `s`'s local→global id map.
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn global_ids(&self, s: usize) -> &[ObjectId] {
        &self.core.global_ids[s]
    }

    /// One-off top-`k` search with pool size `l`: **scatters** the query
    /// over the shards concurrently (scoped threads, clamped to the
    /// available parallelism so a many-shard deployment never attempts
    /// more spawns than the machine supports), then **gathers** the
    /// per-shard top-`k` into the global top-`k` by exact joint
    /// similarity.  Results are bit-identical to the sequential
    /// [`ShardedWorker::search`] path.
    ///
    /// # Errors
    /// Propagates query/corpus arity and dimension mismatches (the first
    /// failing shard's error, by shard order).
    pub fn search(&self, query: &MultiQuery, k: usize, l: usize) -> Result<SearchOutcome, MustError> {
        let t0 = Instant::now();
        let (selected, params) = self.core.plan(self.routing, query, None, k, l);
        let workers =
            std::thread::available_parallelism().map_or(1, usize::from).min(selected.len());
        let per_shard = par::par_map(selected.len(), workers, |i| {
            self.core.shards[selected[i]].worker().search_with_params(query, params)
        });
        let per_shard: Vec<SearchOutcome> = per_shard.into_iter().collect::<Result<_, _>>()?;
        Ok(self.core.gather(selected.into_iter().zip(per_shard).collect(), k, t0))
    }

    /// [`ShardedServer::search`] under a per-query weight override: the
    /// scatter step threads the **same** `weights` to every shard (each
    /// shard worker scores with the override, not its frozen default), and
    /// the gather step merges per-shard candidates whose similarities were
    /// all computed under that same override — so the DESIGN §7
    /// bit-identity argument carries over unchanged: shard rows hold the
    /// same floats at the same lane offsets as the global rows, and the
    /// merge's `(similarity desc, id asc)` order is total.
    ///
    /// # Errors
    /// Propagates weight-arity and query/corpus mismatches (the first
    /// failing shard's error, by shard order).
    pub fn search_weighted(
        &self,
        query: &MultiQuery,
        weights: &Weights,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        let t0 = Instant::now();
        let (selected, params) = self.core.plan(self.routing, query, Some(weights), k, l);
        let workers =
            std::thread::available_parallelism().map_or(1, usize::from).min(selected.len());
        let per_shard = par::par_map(selected.len(), workers, |i| {
            self.core.shards[selected[i]].worker().search_weighted_with_params(query, weights, params)
        });
        let per_shard: Vec<SearchOutcome> = per_shard.into_iter().collect::<Result<_, _>>()?;
        Ok(self.core.gather(selected.into_iter().zip(per_shard).collect(), k, t0))
    }

    /// A reusable per-thread scatter-gather handle: one [`ServerWorker`]
    /// (with its own [`must_graph::SearchScratch`]) per shard, so a query
    /// batch's steady state allocates nothing inside any shard's search
    /// loop.  The handle's routing policy is baked in, which is how
    /// routing reaches [`ShardedServer::serve`] and the batch paths.
    #[must_use]
    pub fn worker(&self) -> ShardedWorker<'_> {
        ShardedWorker {
            workers: self.core.shards.iter().map(MustServer::worker).collect(),
            core: &self.core,
            routing: self.routing,
        }
    }

    /// Searches `queries` with `threads` workers (atomic chunk claiming,
    /// one reusable [`ShardedWorker`] per thread) and returns outcomes in
    /// input order.  `threads` is clamped to `[1, queries.len()]`.
    /// Results are bit-identical for every thread count.
    ///
    /// # Errors
    /// Per-query errors are returned in the corresponding slot.
    #[must_use]
    pub fn search_batch(
        &self,
        queries: &[MultiQuery],
        k: usize,
        l: usize,
        threads: usize,
    ) -> Vec<Result<SearchOutcome, MustError>> {
        fan_out_batch(queries, threads, || {
            let mut worker = self.worker();
            move |q: &MultiQuery| worker.search(q, k, l)
        })
    }

    /// Blocking request/reply serve loop over the whole sharded
    /// deployment: the sharded twin of [`MustServer::serve`], backed by
    /// the same [`crate::runtime::ServeRuntime`].  Each runtime worker
    /// holds one [`ShardedWorker`] for its entire lifetime — per-shard
    /// scratch stays warm across the stream instead of being re-created
    /// by per-batch scoped threads — and searches the shards sequentially
    /// per query, so parallelism comes from concurrent queries, not from
    /// per-query scatter spawns.  Returns the number of requests served
    /// once the request channel is closed and drained.
    #[must_use]
    pub fn serve(
        &self,
        requests: std::sync::mpsc::Receiver<crate::server::ServeRequest>,
        replies: std::sync::mpsc::Sender<crate::server::ServeReply>,
        threads: usize,
    ) -> usize {
        let runtime = crate::runtime::ServeRuntime::start(self, threads, replies);
        for req in requests {
            runtime.submit(req);
        }
        runtime.shutdown()
    }

    /// [`ShardedServer::search_batch`] under a per-batch weight override
    /// (see [`ShardedServer::search_weighted`] for the merge argument).
    ///
    /// # Errors
    /// Per-query errors are returned in the corresponding slot.
    #[must_use]
    pub fn search_batch_weighted(
        &self,
        queries: &[MultiQuery],
        weights: &Weights,
        k: usize,
        l: usize,
        threads: usize,
    ) -> Vec<Result<SearchOutcome, MustError>> {
        fan_out_batch(queries, threads, || {
            let mut worker = self.worker();
            move |q: &MultiQuery| worker.search_weighted(q, weights, k, l)
        })
    }
}

/// Reusable per-thread scatter-gather state bound to a [`ShardedServer`]
/// snapshot: shard `s`'s search always runs on worker `s`, so each shard's
/// scratch (visited stamps + result pool) is reused across the whole query
/// stream.
pub struct ShardedWorker<'a> {
    workers: Vec<ServerWorker<'a>>,
    core: &'a ShardedCore,
    routing: Option<RoutePolicy>,
}

impl ShardedWorker<'_> {
    /// Top-`k` search with pool size `l`: the routed shards are searched
    /// sequentially on the calling thread (batch parallelism comes from
    /// [`ShardedServer::search_batch`]), then gathered.  Bit-identical to
    /// the scattered [`ShardedServer::search`] under the same policy.
    ///
    /// # Errors
    /// Propagates query/corpus arity and dimension mismatches.
    pub fn search(
        &mut self,
        query: &MultiQuery,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        let t0 = Instant::now();
        let (selected, params) = self.core.plan(self.routing, query, None, k, l);
        let mut per_shard = Vec::with_capacity(selected.len());
        for s in selected {
            per_shard.push((s, self.workers[s].search_with_params(query, params)?));
        }
        Ok(self.core.gather(per_shard, k, t0))
    }

    /// Top-`k` search under a per-query weight override, sequential
    /// per-shard variant — bit-identical to the scattered
    /// [`ShardedServer::search_weighted`] under the same policy (the
    /// router scores summaries with the override too).
    ///
    /// # Errors
    /// Propagates weight-arity and query/corpus mismatches.
    pub fn search_weighted(
        &mut self,
        query: &MultiQuery,
        weights: &Weights,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        let t0 = Instant::now();
        let (selected, params) = self.core.plan(self.routing, query, Some(weights), k, l);
        let mut per_shard = Vec::with_capacity(selected.len());
        for s in selected {
            per_shard.push((s, self.workers[s].search_weighted_with_params(query, weights, params)?));
        }
        Ok(self.core.gather(per_shard, k, t0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_graph::GraphRecipe;
    use must_vector::VectorSetBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize) -> MultiVectorSet {
        let mut rng = StdRng::seed_from_u64(99);
        let mut m0 = VectorSetBuilder::new(8, n);
        let mut m1 = VectorSetBuilder::new(4, n);
        for _ in 0..n {
            let v0: Vec<f32> = (0..8).map(|_| rng.random::<f32>() - 0.5).collect();
            let v1: Vec<f32> = (0..4).map(|_| rng.random::<f32>() - 0.5).collect();
            m0.push_normalized(&v0).unwrap();
            m1.push_normalized(&v1).unwrap();
        }
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    fn self_query(set: &MultiVectorSet, id: ObjectId) -> MultiQuery {
        MultiQuery::full(vec![
            set.modality(0).get(id).to_vec(),
            set.modality(1).get(id).to_vec(),
        ])
    }

    // The sharded handle must be shareable and sendable across threads.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedServer>();
    };

    #[test]
    fn underfull_shards_merge_to_the_exact_global_top_k() {
        // k exceeds every shard's cardinality: 24 objects over 8 shards is
        // 3 per shard, and the caller asks for 10.  Each shard can only
        // contribute 3 candidates, so the merged answer is the exact global
        // top-10 by brute force — the capacity hint, dedup, and truncate in
        // `gather` all run on a pool smaller than `k`.
        let set = corpus(24);
        let eng = must_vector::JointDistance::new(&set, Weights::uniform(2)).unwrap();
        // Clustered closure replication stores boundary objects in several
        // shards, so the merged pool really does hold duplicates that the
        // dedup must collapse *before* the truncate.
        for spec in [ShardSpec::new(8), ShardSpec::hashed(8), ShardSpec::clustered(8)] {
            let sharded = ShardedMust::build(
                set.clone(),
                Weights::uniform(2),
                MustBuildOptions { gamma: 4, ..Default::default() },
                spec,
            )
            .unwrap();
            let server = ShardedServer::freeze(sharded);
            for id in [0u32, 11, 23] {
                let q = self_query(&set, id);
                let out = server.search(&q, 10, 60).unwrap();
                assert_eq!(out.results.len(), 10, "query {id} ({spec:?})");
                let qe = eng.query(&q).unwrap();
                let mut exact: Vec<(ObjectId, f32)> = (0..24).map(|o| (o, qe.ip(o))).collect();
                exact.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                exact.truncate(10);
                let got: Vec<ObjectId> = out.results.iter().map(|r| r.0).collect();
                let want: Vec<ObjectId> = exact.iter().map(|r| r.0).collect();
                assert_eq!(got, want, "query {id} ({spec:?}): merged top-10 must be exact");
                let unique: std::collections::HashSet<ObjectId> = got.iter().copied().collect();
                assert_eq!(unique.len(), 10, "query {id} ({spec:?}): no duplicate survives");
            }
        }
    }

    #[test]
    fn round_robin_split_covers_every_object_exactly_once() {
        let set = corpus(103);
        for spec in [ShardSpec::new(4), ShardSpec::hashed(4)] {
            let router = ShardRouter::new(spec).unwrap();
            let pieces = router.split(&set);
            assert_eq!(pieces.len(), 4);
            let mut seen = [false; 103];
            for (piece, ids) in &pieces {
                assert_eq!(piece.len(), ids.len());
                for (local, &global) in ids.iter().enumerate() {
                    assert!(!std::mem::replace(&mut seen[global as usize], true));
                    // Rows must be copied bit-exact.
                    assert_eq!(
                        piece.modality(0).get(local as ObjectId),
                        set.modality(0).get(global)
                    );
                }
            }
            assert!(seen.iter().all(|&s| s), "{spec:?} must cover the corpus");
        }
    }

    #[test]
    fn sharded_self_queries_resolve_to_global_ids() {
        let set = corpus(200);
        let sharded = ShardedMust::build(
            set.clone(),
            Weights::uniform(2),
            MustBuildOptions::default(),
            ShardSpec::new(4),
        )
        .unwrap();
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.len(), 200);
        let server = ShardedServer::freeze(sharded);
        for id in [0u32, 3, 77, 199] {
            let q = self_query(&set, id);
            let out = server.search(&q, 1, 60).unwrap();
            assert_eq!(out.results[0].0, id);
        }
    }

    #[test]
    fn scattered_and_sequential_search_agree_bitwise() {
        let set = corpus(180);
        let sharded = ShardedMust::build(
            set.clone(),
            Weights::new(vec![0.7, 0.5]).unwrap(),
            MustBuildOptions::default(),
            ShardSpec::hashed(3),
        )
        .unwrap();
        let server = ShardedServer::freeze(sharded);
        let mut worker = server.worker();
        for id in [1u32, 50, 120] {
            let q = self_query(&set, id);
            let a = server.search(&q, 5, 50).unwrap();
            let b = worker.search(&q, 5, 50).unwrap();
            assert_eq!(a.results, b.results);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let set = corpus(160);
        let sharded = ShardedMust::build(
            set.clone(),
            Weights::uniform(2),
            MustBuildOptions::default(),
            ShardSpec::new(2),
        )
        .unwrap();
        let server = ShardedServer::freeze(sharded);
        let queries: Vec<MultiQuery> =
            (0..24).map(|i| self_query(&set, i * 6)).collect();
        let serial = server.search_batch(&queries, 5, 40, 1);
        for threads in [2, 5, 16] {
            let batch = server.search_batch(&queries, 5, 40, threads);
            for (a, b) in batch.iter().zip(&serial) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.results, b.results, "threads={threads}");
                assert_eq!(a.stats, b.stats, "threads={threads}");
            }
        }
    }

    #[test]
    fn insertion_routes_to_smallest_shard() {
        let set = corpus(91); // round-robin over 3: sizes 31, 30, 30
        let mut sharded = ShardedMust::build(
            set,
            Weights::uniform(2),
            MustBuildOptions { recipe: GraphRecipe::Hnsw, ..Default::default() },
            ShardSpec::new(3),
        )
        .unwrap();
        assert_eq!(sharded.global_ids(0).len(), 31);
        let new0: Vec<f32> = (0..8).map(|i| if i == 3 { 1.0 } else { 0.01 }).collect();
        let new1: Vec<f32> = (0..4).map(|i| if i == 2 { 1.0 } else { 0.01 }).collect();
        let id = sharded.insert_object(&[new0.clone(), new1.clone()]).unwrap();
        assert_eq!(id, 91, "global ids keep growing densely");
        // Smallest shard was 1 (30 objects, lowest index tie-break).
        assert_eq!(sharded.global_ids(1).len(), 31);
        assert_eq!(*sharded.global_ids(1).last().unwrap(), 91);
        assert_eq!(sharded.len(), 92);
        // The inserted object is findable through the frozen server.
        let server = ShardedServer::freeze(sharded);
        let q = MultiQuery::full(vec![new0, new1]);
        let out = server.search(&q, 1, 80).unwrap();
        assert_eq!(out.results[0].0, 91);
    }

    #[test]
    fn flat_backends_reject_sharded_insertion() {
        let set = corpus(60);
        let mut sharded = ShardedMust::build(
            set,
            Weights::uniform(2),
            MustBuildOptions::default(),
            ShardSpec::new(2),
        )
        .unwrap();
        assert!(matches!(
            sharded.insert_object(&[vec![1.0; 8], vec![1.0; 4]]),
            Err(MustError::Config(_))
        ));
        assert_eq!(sharded.len(), 60, "nothing changes on rejection");
    }

    #[test]
    fn degenerate_specs_are_config_errors() {
        let set = corpus(10);
        assert!(matches!(
            ShardedMust::build(
                set.clone(),
                Weights::uniform(2),
                MustBuildOptions::default(),
                ShardSpec::new(0)
            ),
            Err(MustError::Config(_))
        ));
        assert!(matches!(
            ShardedMust::build(
                set,
                Weights::uniform(2),
                MustBuildOptions::default(),
                ShardSpec::new(11)
            ),
            Err(MustError::Config(_))
        ));
    }

    #[test]
    fn from_parts_validates_maps_and_weights() {
        let a = Must::build(corpus(20), Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let b = Must::build(corpus(20), Weights::uniform(2), MustBuildOptions::default()).unwrap();
        // Cross-shard overlap is legal (clustered closure replication
        // stores boundary objects in several shards): 20 + 20 rows over
        // ids 0..30 assemble into 30 distinct objects.
        let overlapping = ShardedMust::from_parts(
            vec![a, b],
            vec![(0..20).collect(), (10..30).collect()],
            ShardAssignment::RoundRobin,
        )
        .expect("overlapping maps with dense union are valid");
        assert_eq!(overlapping.len(), 30, "replicas count once");
        // …but the union must stay dense: a gap breaks the id allocator.
        let (a, b) = {
            let mut shards = overlapping.shards.into_iter();
            (shards.next().unwrap(), shards.next().unwrap())
        };
        let Err(err) = ShardedMust::from_parts(
            vec![a, b],
            vec![(0..20).collect(), (21..41).collect()],
            ShardAssignment::RoundRobin,
        ) else {
            panic!("a gap in the id union must be rejected");
        };
        assert!(matches!(err, MustError::Config(_)));
        // A duplicate *within* one shard is always corrupt.
        let e = Must::build(corpus(20), Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let mut dup: Vec<u32> = (0..20).collect();
        dup[19] = 0;
        assert!(matches!(
            ShardedMust::from_parts(vec![e], vec![dup], ShardAssignment::RoundRobin),
            Err(MustError::Config(_))
        ));
        // Mismatched map length must be rejected.
        let c = Must::build(corpus(20), Weights::uniform(2), MustBuildOptions::default()).unwrap();
        assert!(matches!(
            ShardedMust::from_parts(vec![c], vec![(0..19).collect()], ShardAssignment::Hash),
            Err(MustError::Config(_))
        ));
        // An id past the corpus but inside the last partial bitmap word
        // must be rejected too (10 objects: only ids 0..10 are valid,
        // yet 63 still indexes bitmap word 0).
        let d = Must::build(corpus(10), Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let mut ids: Vec<u32> = (0..10).collect();
        ids[9] = 63;
        assert!(matches!(
            ShardedMust::from_parts(vec![d], vec![ids], ShardAssignment::RoundRobin),
            Err(MustError::Config(_))
        ));
    }
}
