//! Sharded scatter-gather serving: split a corpus into `S` independently
//! built shards, search them all per query, and merge the per-shard top-`k`
//! by exact joint similarity.
//!
//! The paper's offline/online split (Fig. 4) extends naturally to many
//! offline-built shards merged online: build time, memory, and insertion
//! contention all scale with a single monolithic engine, so a
//! production deployment partitions the corpus and builds every partition
//! in parallel.  The pieces:
//!
//! * [`ShardRouter`] — the deterministic object→shard assignment
//!   ([`ShardAssignment::RoundRobin`] or [`ShardAssignment::Hash`]) and the
//!   corpus splitter.
//! * [`ShardedMust`] — the build-side object: one [`Must`] per shard, built
//!   in parallel (`MUST_BUILD_THREADS` governs the worker budget across
//!   *and* within shards), plus the local→global id maps.  Dynamic
//!   insertion routes each new object to the currently smallest shard.
//! * [`ShardedServer`] — the online side: one frozen [`MustServer`] per
//!   shard behind a single [`Arc`].  A query fans out to every shard
//!   (scatter), runs the existing per-shard beam search, and the per-shard
//!   top-`k` lists merge into one global top-`k` (gather).
//!
//! ## Determinism contract
//!
//! Per-shard searches inherit [`MustServer`]'s fixed-seed determinism, and
//! the gather step orders candidates by `(similarity desc, global id asc)`
//! — a total order — so a sharded query's results are a pure function of
//! the query: bit-identical across thread counts, scatter strategies, and
//! repeated runs, exactly like the single-shard server.  Similarities
//! themselves are bit-identical to the unsharded engine's because a shard
//! row holds the same `f32` values at the same lane offsets as the
//! corresponding global row, so the fused dot product performs the same
//! float operations in the same order.
//!
//! ```
//! use must_core::framework::MustBuildOptions;
//! use must_core::shard::{ShardSpec, ShardedMust, ShardedServer};
//! use must_vector::{MultiQuery, MultiVectorSet, VectorSetBuilder, Weights};
//!
//! // 8 objects x 2 modalities, split over 2 shards, served scatter-gather.
//! let mut m0 = VectorSetBuilder::new(4, 8);
//! let mut m1 = VectorSetBuilder::new(2, 8);
//! for i in 0..8u32 {
//!     let mut img = [0.1f32; 4];
//!     img[(i % 4) as usize] = 1.0;
//!     m0.push_normalized(&img).unwrap();
//!     m1.push_normalized(&[1.0, i as f32 / 8.0]).unwrap();
//! }
//! let objects = MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap();
//! let sharded = ShardedMust::build(
//!     objects,
//!     Weights::uniform(2),
//!     MustBuildOptions::default(),
//!     ShardSpec::new(2),
//! )
//! .unwrap();
//! assert_eq!(sharded.num_shards(), 2);
//! assert_eq!(sharded.len(), 8);
//! let server = ShardedServer::freeze(sharded);
//! let query = MultiQuery::full(vec![vec![0.1, 1.0, 0.1, 0.1], vec![1.0, 0.125]]);
//! let out = server.search(&query, 1, 8).unwrap();
//! assert_eq!(out.results[0].0, 1); // global id, not a shard-local one
//! ```

use std::sync::Arc;
use std::time::Instant;

use must_graph::par;
use must_graph::SearchStats;
use must_vector::{MultiQuery, MultiVectorSet, ObjectId, VectorSet, Weights};

use crate::framework::{Must, MustBuildOptions};
use crate::search::SearchOutcome;
use crate::server::{fan_out_batch, MustServer, ServerWorker};
use crate::MustError;

/// Deterministic object→shard assignment policy.
///
/// ```
/// use must_core::shard::ShardAssignment;
///
/// // Round-robin cycles through shards in id order…
/// assert_eq!(ShardAssignment::RoundRobin.shard_of(5, 4), 1);
/// // …while hashing scatters contiguous ids (but stays deterministic).
/// assert_eq!(
///     ShardAssignment::Hash.shard_of(5, 4),
///     ShardAssignment::Hash.shard_of(5, 4),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAssignment {
    /// Object `id` goes to shard `id % S` — perfectly balanced for the
    /// initial corpus.
    RoundRobin,
    /// Object `id` goes to shard `splitmix64(id) % S` — decorrelates shard
    /// membership from insertion order, so range-clustered corpora spread
    /// evenly.
    Hash,
}

impl ShardAssignment {
    /// The shard object `id` belongs to, out of `shards`.
    ///
    /// # Panics
    /// Panics when `shards` is zero.
    #[must_use]
    pub fn shard_of(self, id: ObjectId, shards: usize) -> usize {
        assert!(shards > 0, "shard count must be positive");
        match self {
            Self::RoundRobin => id as usize % shards,
            Self::Hash => {
                // SplitMix64 finaliser: cheap, well-mixed, stable across
                // platforms (the assignment is part of the bundle format).
                let mut x = u64::from(id).wrapping_add(0x9E37_79B9_7F4A_7C15);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                // Reduce in u64: truncating to usize first would change
                // assignments on 32-bit targets.
                ((x ^ (x >> 31)) % shards as u64) as usize
            }
        }
    }

    /// Stable wire tag (bundle v4 manifest).
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Self::RoundRobin => 0,
            Self::Hash => 1,
        }
    }

    /// Inverse of [`ShardAssignment::tag`]; `None` for unknown tags.
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Self::RoundRobin),
            1 => Some(Self::Hash),
            _ => None,
        }
    }
}

/// How to split a corpus: shard count plus assignment policy.
///
/// ```
/// use must_core::shard::{ShardAssignment, ShardSpec};
///
/// let spec = ShardSpec::new(4);
/// assert_eq!(spec.shards, 4);
/// assert_eq!(spec.assignment, ShardAssignment::RoundRobin);
/// assert_eq!(ShardSpec::hashed(2).assignment, ShardAssignment::Hash);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec {
    /// Number of shards `S >= 1`.
    pub shards: usize,
    /// Assignment policy.
    pub assignment: ShardAssignment,
}

impl ShardSpec {
    /// A round-robin spec over `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self { shards, assignment: ShardAssignment::RoundRobin }
    }

    /// A hash-assigned spec over `shards` shards.
    #[must_use]
    pub fn hashed(shards: usize) -> Self {
        Self { shards, assignment: ShardAssignment::Hash }
    }
}

/// Splits a corpus into per-shard corpora under a [`ShardSpec`].
///
/// ```
/// use must_core::shard::{ShardRouter, ShardSpec};
/// use must_vector::{MultiVectorSet, VectorSetBuilder};
///
/// let mut m0 = VectorSetBuilder::new(2, 5);
/// for i in 0..5 {
///     m0.push_normalized(&[1.0, i as f32]).unwrap();
/// }
/// let set = MultiVectorSet::new(vec![m0.finish()]).unwrap();
/// let router = ShardRouter::new(ShardSpec::new(2)).unwrap();
/// let pieces = router.split(&set);
/// // Round-robin: shard 0 gets ids {0, 2, 4}, shard 1 gets {1, 3}.
/// assert_eq!(pieces[0].1, vec![0, 2, 4]);
/// assert_eq!(pieces[1].1, vec![1, 3]);
/// assert_eq!(pieces[0].0.len() + pieces[1].0.len(), 5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    spec: ShardSpec,
}

impl ShardRouter {
    /// Validates and wraps a spec.
    ///
    /// # Errors
    /// [`MustError::Config`] when the spec asks for zero shards.
    pub fn new(spec: ShardSpec) -> Result<Self, MustError> {
        if spec.shards == 0 {
            return Err(MustError::Config("shard count must be at least 1".into()));
        }
        Ok(Self { spec })
    }

    /// The spec in force.
    #[must_use]
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The shard object `id` belongs to.
    #[must_use]
    pub fn shard_of(&self, id: ObjectId) -> usize {
        self.spec.assignment.shard_of(id, self.spec.shards)
    }

    /// Splits `objects` into `S` per-shard corpora, each paired with its
    /// local→global id map (`map[local] = global`).  Vector values are
    /// copied bit-exact, so per-shard similarities equal the unsharded
    /// engine's.
    #[must_use]
    pub fn split(&self, objects: &MultiVectorSet) -> Vec<(MultiVectorSet, Vec<ObjectId>)> {
        let s = self.spec.shards;
        let mut members: Vec<Vec<ObjectId>> = vec![Vec::new(); s];
        for id in 0..objects.len() as ObjectId {
            members[self.shard_of(id)].push(id);
        }
        members
            .into_iter()
            .map(|ids| {
                let sets: Vec<VectorSet> = objects
                    .dims()
                    .iter()
                    .enumerate()
                    .map(|(k, &dim)| {
                        let view = objects.modality(k);
                        let mut flat = Vec::with_capacity(ids.len() * dim);
                        for &id in &ids {
                            flat.extend_from_slice(view.get(id));
                        }
                        VectorSet::from_flat(dim, flat).expect("split rows are well-formed")
                    })
                    .collect();
                let corpus = MultiVectorSet::new(sets).expect("equal cardinalities by construction");
                (corpus, ids)
            })
            .collect()
    }
}

/// The build-side sharded instance: one [`Must`] per shard plus the
/// local→global id maps.  See the module docs for the full dataflow.
pub struct ShardedMust {
    shards: Vec<Must>,
    global_ids: Vec<Vec<ObjectId>>,
    assignment: ShardAssignment,
}

impl ShardedMust {
    /// Splits `objects` under `spec` and builds every shard's fused engine
    /// and graph **in parallel**: the `MUST_BUILD_THREADS` budget is
    /// divided between concurrent shard builds and each build's internal
    /// workers, so small shard counts still saturate the machine while
    /// the machine-wide cap holds.
    ///
    /// Each shard derives its build seed from `opts.rng_seed` and the shard
    /// index, so the result is deterministic for a given `(corpus, opts,
    /// spec)` regardless of thread count.  With `spec.shards == 1` the
    /// single shard's build is identical to `Must::build` with the same
    /// options.
    ///
    /// # Errors
    /// [`MustError::Config`] when the spec is degenerate (zero shards, or
    /// more shards than objects, which would leave a shard empty);
    /// propagates per-shard build errors.
    pub fn build(
        objects: MultiVectorSet,
        weights: Weights,
        opts: MustBuildOptions,
        spec: ShardSpec,
    ) -> Result<Self, MustError> {
        let router = ShardRouter::new(spec)?;
        if objects.is_empty() {
            return Err(MustError::Config("cannot shard an empty object set".into()));
        }
        if spec.shards > objects.len() {
            return Err(MustError::Config(format!(
                "{} shards over {} objects would leave shards empty",
                spec.shards,
                objects.len()
            )));
        }
        let pieces = router.split(&objects);
        drop(objects);
        let mut global_ids = Vec::with_capacity(pieces.len());
        let corpora: Vec<std::sync::Mutex<Option<MultiVectorSet>>> = pieces
            .into_iter()
            .map(|(corpus, ids)| {
                if corpus.is_empty() {
                    return Err(MustError::Config(
                        "hash assignment left a shard empty; use fewer shards or round-robin"
                            .into(),
                    ));
                }
                global_ids.push(ids);
                Ok(std::sync::Mutex::new(Some(corpus)))
            })
            .collect::<Result<_, _>>()?;

        // Split the machine budget: `outer` shard builds run concurrently
        // and each gets `inner` workers, so the total never exceeds the
        // `MUST_BUILD_THREADS` cap (graph builds are thread-count
        // invariant, so the split does not affect results).  An explicit
        // `opts.threads` is honoured per shard unchanged.
        let total = par::build_threads();
        let outer = total.min(corpora.len());
        let inner = if opts.threads == 0 { (total / outer).max(1) } else { opts.threads };
        let built = par::par_map(corpora.len(), outer, |s| {
            let corpus = corpora[s]
                .lock()
                .expect("no prior panic")
                .take()
                .expect("each shard corpus is taken once");
            let opts = MustBuildOptions { threads: inner, ..Self::shard_opts(opts, s) };
            Must::build(corpus, weights.clone(), opts)
        });
        let shards = built.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(Self { shards, global_ids, assignment: spec.assignment })
    }

    /// Build options for shard `s`: the caller's options with a
    /// shard-decorrelated RNG seed (shard 0 keeps the original seed, so a
    /// 1-shard build reproduces the unsharded one exactly).
    #[must_use]
    pub fn shard_opts(opts: MustBuildOptions, s: usize) -> MustBuildOptions {
        MustBuildOptions {
            rng_seed: opts.rng_seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..opts
        }
    }

    /// Reassembles a sharded instance from prebuilt shards and their
    /// local→global maps — the bundle-v4 load path.
    ///
    /// # Errors
    /// [`MustError::Config`] when a map's length disagrees with its shard's
    /// corpus, a global id repeats across shards, or the shards disagree on
    /// weights (every shard must serve the same joint similarity).
    pub fn from_parts(
        shards: Vec<Must>,
        global_ids: Vec<Vec<ObjectId>>,
        assignment: ShardAssignment,
    ) -> Result<Self, MustError> {
        if shards.is_empty() {
            return Err(MustError::Config("a sharded instance needs at least one shard".into()));
        }
        if shards.len() != global_ids.len() {
            return Err(MustError::Config(format!(
                "{} shards but {} id maps",
                shards.len(),
                global_ids.len()
            )));
        }
        let total: usize = global_ids.iter().map(Vec::len).sum();
        let mut seen = vec![0u64; total.div_ceil(64)];
        for (shard, ids) in shards.iter().zip(&global_ids) {
            if shard.objects().len() != ids.len() {
                return Err(MustError::Config(format!(
                    "shard holds {} objects but its id map covers {}",
                    shard.objects().len(),
                    ids.len()
                )));
            }
            if shard.weights() != shards[0].weights() {
                return Err(MustError::Config("shards disagree on weights".into()));
            }
            for &id in ids {
                let idx = id as usize;
                let (w, b) = (idx / 64, idx % 64);
                // `idx < total` plus uniqueness makes the maps a
                // permutation of 0..total — the dense-id invariant
                // insert_object relies on.
                if idx >= total || seen[w] & (1 << b) != 0 {
                    return Err(MustError::Config(format!(
                        "global id {id} out of range or repeated across shards"
                    )));
                }
                seen[w] |= 1 << b;
            }
        }
        Ok(Self { shards, global_ids, assignment })
    }

    /// Number of shards `S`.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total objects across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.global_ids.iter().map(Vec::len).sum()
    }

    /// Whether no shard holds any object.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The build-side instance of shard `s`.
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn shard(&self, s: usize) -> &Must {
        &self.shards[s]
    }

    /// Shard `s`'s local→global id map (`map[local] = global`).
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn global_ids(&self, s: usize) -> &[ObjectId] {
        &self.global_ids[s]
    }

    /// The assignment policy the corpus was split under (recorded in the
    /// bundle-v4 manifest; insertions use size-based routing instead).
    #[must_use]
    pub fn assignment(&self) -> ShardAssignment {
        self.assignment
    }

    /// The weights in force (identical across shards by construction).
    #[must_use]
    pub fn weights(&self) -> &Weights {
        self.shards[0].weights()
    }

    /// Dynamically inserts a new object (Section IX), routing it to the
    /// currently **smallest shard** (ties break toward the lowest index),
    /// which keeps shard sizes balanced as the corpus grows.  Returns the
    /// new *global* id.
    ///
    /// # Errors
    /// [`MustError::Config`] when the chosen shard's backend does not
    /// support dynamic insertion (only HNSW does — flat graphs need
    /// periodic reconstruction); vector errors for malformed rows.
    /// Nothing changes on error:
    ///
    /// ```
    /// use must_core::framework::MustBuildOptions;
    /// use must_core::shard::{ShardSpec, ShardedMust};
    /// use must_core::MustError;
    /// use must_vector::{MultiVectorSet, VectorSetBuilder, Weights};
    ///
    /// let mut m0 = VectorSetBuilder::new(2, 6);
    /// for i in 0..6 {
    ///     m0.push_normalized(&[1.0, i as f32]).unwrap();
    /// }
    /// let objects = MultiVectorSet::new(vec![m0.finish()]).unwrap();
    /// // The default recipe builds flat graphs, which cannot grow online.
    /// let mut sharded = ShardedMust::build(
    ///     objects, Weights::uniform(1), MustBuildOptions::default(), ShardSpec::new(2),
    /// ).unwrap();
    /// let err = sharded.insert_object(&[vec![0.6, 0.8]]).unwrap_err();
    /// assert!(matches!(err, MustError::Config(_)));
    /// assert_eq!(sharded.len(), 6, "nothing changed on rejection");
    /// ```
    pub fn insert_object(&mut self, rows: &[Vec<f32>]) -> Result<ObjectId, MustError> {
        let target = (0..self.shards.len())
            .min_by_key(|&s| self.global_ids[s].len())
            .expect("at least one shard");
        let global = self.len() as ObjectId;
        self.shards[target].insert_object(rows)?;
        self.global_ids[target].push(global);
        Ok(global)
    }
}

/// The gather state every serving handle shares: frozen per-shard servers
/// plus the local→global maps.
struct ShardedCore {
    shards: Vec<MustServer>,
    global_ids: Vec<Vec<ObjectId>>,
}

impl ShardedCore {
    /// Merges per-shard outcomes into the global top-`k`: map local ids to
    /// global, sort by `(similarity desc, global id asc)` — a total order,
    /// so the merge is deterministic — and truncate.  Per-shard stats and
    /// kernel counts accumulate.
    fn gather(&self, per_shard: Vec<SearchOutcome>, k: usize, t0: Instant) -> SearchOutcome {
        let mut results: Vec<(ObjectId, f32)> = Vec::with_capacity(per_shard.len() * k);
        let mut stats = SearchStats::default();
        let mut kernel_evals = 0;
        for (s, out) in per_shard.into_iter().enumerate() {
            let map = &self.global_ids[s];
            results.extend(out.results.into_iter().map(|(local, sim)| (map[local as usize], sim)));
            stats.hops += out.stats.hops;
            stats.evaluated += out.stats.evaluated;
            stats.pruned += out.stats.pruned;
            kernel_evals += out.kernel_evals;
        }
        results.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        results.truncate(k);
        SearchOutcome { results, stats, kernel_evals, secs: t0.elapsed().as_secs_f64() }
    }
}

/// The online sharded serving handle: cheap to clone, `Send + Sync`, and —
/// like [`MustServer`] — bit-deterministic: a query's merged results are a
/// pure function of the query.  See the module docs for the dataflow.
#[derive(Clone)]
pub struct ShardedServer {
    core: Arc<ShardedCore>,
}

impl ShardedServer {
    /// Freezes a built [`ShardedMust`] into a serving snapshot, consuming
    /// it.  Each shard freezes exactly as [`MustServer::freeze`] does (flat
    /// graphs to CSR, HNSW keeps its layers).
    #[must_use]
    pub fn freeze(sharded: ShardedMust) -> Self {
        Self {
            core: Arc::new(ShardedCore {
                shards: sharded.shards.into_iter().map(MustServer::freeze).collect(),
                global_ids: sharded.global_ids,
            }),
        }
    }

    /// Loads a persisted bundle straight into a sharded serving snapshot.
    /// Accepts the sharded bundle v4 *and* every single-shard format
    /// (v1–v3), which load as one shard with the identity id map.
    ///
    /// # Errors
    /// Propagates [`crate::persist::load_sharded`] errors.
    pub fn load(path: &std::path::Path) -> Result<Self, MustError> {
        Ok(Self::freeze(crate::persist::load_sharded(path)?))
    }

    /// Number of shards `S`.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.core.shards.len()
    }

    /// Total served objects across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.core.global_ids.iter().map(Vec::len).sum()
    }

    /// Whether the snapshot serves no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The frozen server of shard `s` (per-shard introspection).
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn shard(&self, s: usize) -> &MustServer {
        &self.core.shards[s]
    }

    /// Shard `s`'s local→global id map.
    ///
    /// # Panics
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn global_ids(&self, s: usize) -> &[ObjectId] {
        &self.core.global_ids[s]
    }

    /// One-off top-`k` search with pool size `l`: **scatters** the query
    /// over the shards concurrently (scoped threads, clamped to the
    /// available parallelism so a many-shard deployment never attempts
    /// more spawns than the machine supports), then **gathers** the
    /// per-shard top-`k` into the global top-`k` by exact joint
    /// similarity.  Results are bit-identical to the sequential
    /// [`ShardedWorker::search`] path.
    ///
    /// # Errors
    /// Propagates query/corpus arity and dimension mismatches (the first
    /// failing shard's error, by shard order).
    pub fn search(&self, query: &MultiQuery, k: usize, l: usize) -> Result<SearchOutcome, MustError> {
        let t0 = Instant::now();
        let s = self.core.shards.len();
        let workers = std::thread::available_parallelism().map_or(1, usize::from).min(s);
        let per_shard = par::par_map(s, workers, |i| {
            self.core.shards[i].worker().search(query, k, l)
        });
        let per_shard: Vec<SearchOutcome> = per_shard.into_iter().collect::<Result<_, _>>()?;
        Ok(self.core.gather(per_shard, k, t0))
    }

    /// [`ShardedServer::search`] under a per-query weight override: the
    /// scatter step threads the **same** `weights` to every shard (each
    /// shard worker scores with the override, not its frozen default), and
    /// the gather step merges per-shard candidates whose similarities were
    /// all computed under that same override — so the DESIGN §7
    /// bit-identity argument carries over unchanged: shard rows hold the
    /// same floats at the same lane offsets as the global rows, and the
    /// merge's `(similarity desc, id asc)` order is total.
    ///
    /// # Errors
    /// Propagates weight-arity and query/corpus mismatches (the first
    /// failing shard's error, by shard order).
    pub fn search_weighted(
        &self,
        query: &MultiQuery,
        weights: &Weights,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        let t0 = Instant::now();
        let s = self.core.shards.len();
        let workers = std::thread::available_parallelism().map_or(1, usize::from).min(s);
        let per_shard = par::par_map(s, workers, |i| {
            self.core.shards[i].worker().search_weighted(query, weights, k, l)
        });
        let per_shard: Vec<SearchOutcome> = per_shard.into_iter().collect::<Result<_, _>>()?;
        Ok(self.core.gather(per_shard, k, t0))
    }

    /// A reusable per-thread scatter-gather handle: one [`ServerWorker`]
    /// (with its own [`must_graph::SearchScratch`]) per shard, so a query
    /// batch's steady state allocates nothing inside any shard's search
    /// loop.
    #[must_use]
    pub fn worker(&self) -> ShardedWorker<'_> {
        ShardedWorker {
            workers: self.core.shards.iter().map(MustServer::worker).collect(),
            core: &self.core,
        }
    }

    /// Searches `queries` with `threads` workers (atomic chunk claiming,
    /// one reusable [`ShardedWorker`] per thread) and returns outcomes in
    /// input order.  `threads` is clamped to `[1, queries.len()]`.
    /// Results are bit-identical for every thread count.
    ///
    /// # Errors
    /// Per-query errors are returned in the corresponding slot.
    #[must_use]
    pub fn search_batch(
        &self,
        queries: &[MultiQuery],
        k: usize,
        l: usize,
        threads: usize,
    ) -> Vec<Result<SearchOutcome, MustError>> {
        fan_out_batch(queries, threads, || {
            let mut worker = self.worker();
            move |q: &MultiQuery| worker.search(q, k, l)
        })
    }

    /// Blocking request/reply serve loop over the whole sharded
    /// deployment: the sharded twin of [`MustServer::serve`], backed by
    /// the same [`crate::runtime::ServeRuntime`].  Each runtime worker
    /// holds one [`ShardedWorker`] for its entire lifetime — per-shard
    /// scratch stays warm across the stream instead of being re-created
    /// by per-batch scoped threads — and searches the shards sequentially
    /// per query, so parallelism comes from concurrent queries, not from
    /// per-query scatter spawns.  Returns the number of requests served
    /// once the request channel is closed and drained.
    #[must_use]
    pub fn serve(
        &self,
        requests: std::sync::mpsc::Receiver<crate::server::ServeRequest>,
        replies: std::sync::mpsc::Sender<crate::server::ServeReply>,
        threads: usize,
    ) -> usize {
        let runtime = crate::runtime::ServeRuntime::start(self, threads, replies);
        for req in requests {
            runtime.submit(req);
        }
        runtime.shutdown()
    }

    /// [`ShardedServer::search_batch`] under a per-batch weight override
    /// (see [`ShardedServer::search_weighted`] for the merge argument).
    ///
    /// # Errors
    /// Per-query errors are returned in the corresponding slot.
    #[must_use]
    pub fn search_batch_weighted(
        &self,
        queries: &[MultiQuery],
        weights: &Weights,
        k: usize,
        l: usize,
        threads: usize,
    ) -> Vec<Result<SearchOutcome, MustError>> {
        fan_out_batch(queries, threads, || {
            let mut worker = self.worker();
            move |q: &MultiQuery| worker.search_weighted(q, weights, k, l)
        })
    }
}

/// Reusable per-thread scatter-gather state bound to a [`ShardedServer`]
/// snapshot: shard `s`'s search always runs on worker `s`, so each shard's
/// scratch (visited stamps + result pool) is reused across the whole query
/// stream.
pub struct ShardedWorker<'a> {
    workers: Vec<ServerWorker<'a>>,
    core: &'a ShardedCore,
}

impl ShardedWorker<'_> {
    /// Top-`k` search with pool size `l`: shards are searched sequentially
    /// on the calling thread (batch parallelism comes from
    /// [`ShardedServer::search_batch`]), then gathered.  Bit-identical to
    /// the scattered [`ShardedServer::search`].
    ///
    /// # Errors
    /// Propagates query/corpus arity and dimension mismatches.
    pub fn search(
        &mut self,
        query: &MultiQuery,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        let t0 = Instant::now();
        let mut per_shard = Vec::with_capacity(self.workers.len());
        for worker in &mut self.workers {
            per_shard.push(worker.search(query, k, l)?);
        }
        Ok(self.core.gather(per_shard, k, t0))
    }

    /// Top-`k` search under a per-query weight override, sequential
    /// per-shard variant — bit-identical to the scattered
    /// [`ShardedServer::search_weighted`].
    ///
    /// # Errors
    /// Propagates weight-arity and query/corpus mismatches.
    pub fn search_weighted(
        &mut self,
        query: &MultiQuery,
        weights: &Weights,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        let t0 = Instant::now();
        let mut per_shard = Vec::with_capacity(self.workers.len());
        for worker in &mut self.workers {
            per_shard.push(worker.search_weighted(query, weights, k, l)?);
        }
        Ok(self.core.gather(per_shard, k, t0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_graph::GraphRecipe;
    use must_vector::VectorSetBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize) -> MultiVectorSet {
        let mut rng = StdRng::seed_from_u64(99);
        let mut m0 = VectorSetBuilder::new(8, n);
        let mut m1 = VectorSetBuilder::new(4, n);
        for _ in 0..n {
            let v0: Vec<f32> = (0..8).map(|_| rng.random::<f32>() - 0.5).collect();
            let v1: Vec<f32> = (0..4).map(|_| rng.random::<f32>() - 0.5).collect();
            m0.push_normalized(&v0).unwrap();
            m1.push_normalized(&v1).unwrap();
        }
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    fn self_query(set: &MultiVectorSet, id: ObjectId) -> MultiQuery {
        MultiQuery::full(vec![
            set.modality(0).get(id).to_vec(),
            set.modality(1).get(id).to_vec(),
        ])
    }

    // The sharded handle must be shareable and sendable across threads.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedServer>();
    };

    #[test]
    fn round_robin_split_covers_every_object_exactly_once() {
        let set = corpus(103);
        for spec in [ShardSpec::new(4), ShardSpec::hashed(4)] {
            let router = ShardRouter::new(spec).unwrap();
            let pieces = router.split(&set);
            assert_eq!(pieces.len(), 4);
            let mut seen = [false; 103];
            for (piece, ids) in &pieces {
                assert_eq!(piece.len(), ids.len());
                for (local, &global) in ids.iter().enumerate() {
                    assert!(!std::mem::replace(&mut seen[global as usize], true));
                    // Rows must be copied bit-exact.
                    assert_eq!(
                        piece.modality(0).get(local as ObjectId),
                        set.modality(0).get(global)
                    );
                }
            }
            assert!(seen.iter().all(|&s| s), "{spec:?} must cover the corpus");
        }
    }

    #[test]
    fn sharded_self_queries_resolve_to_global_ids() {
        let set = corpus(200);
        let sharded = ShardedMust::build(
            set.clone(),
            Weights::uniform(2),
            MustBuildOptions::default(),
            ShardSpec::new(4),
        )
        .unwrap();
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.len(), 200);
        let server = ShardedServer::freeze(sharded);
        for id in [0u32, 3, 77, 199] {
            let q = self_query(&set, id);
            let out = server.search(&q, 1, 60).unwrap();
            assert_eq!(out.results[0].0, id);
        }
    }

    #[test]
    fn scattered_and_sequential_search_agree_bitwise() {
        let set = corpus(180);
        let sharded = ShardedMust::build(
            set.clone(),
            Weights::new(vec![0.7, 0.5]).unwrap(),
            MustBuildOptions::default(),
            ShardSpec::hashed(3),
        )
        .unwrap();
        let server = ShardedServer::freeze(sharded);
        let mut worker = server.worker();
        for id in [1u32, 50, 120] {
            let q = self_query(&set, id);
            let a = server.search(&q, 5, 50).unwrap();
            let b = worker.search(&q, 5, 50).unwrap();
            assert_eq!(a.results, b.results);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn batch_is_thread_count_invariant() {
        let set = corpus(160);
        let sharded = ShardedMust::build(
            set.clone(),
            Weights::uniform(2),
            MustBuildOptions::default(),
            ShardSpec::new(2),
        )
        .unwrap();
        let server = ShardedServer::freeze(sharded);
        let queries: Vec<MultiQuery> =
            (0..24).map(|i| self_query(&set, i * 6)).collect();
        let serial = server.search_batch(&queries, 5, 40, 1);
        for threads in [2, 5, 16] {
            let batch = server.search_batch(&queries, 5, 40, threads);
            for (a, b) in batch.iter().zip(&serial) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.results, b.results, "threads={threads}");
                assert_eq!(a.stats, b.stats, "threads={threads}");
            }
        }
    }

    #[test]
    fn insertion_routes_to_smallest_shard() {
        let set = corpus(91); // round-robin over 3: sizes 31, 30, 30
        let mut sharded = ShardedMust::build(
            set,
            Weights::uniform(2),
            MustBuildOptions { recipe: GraphRecipe::Hnsw, ..Default::default() },
            ShardSpec::new(3),
        )
        .unwrap();
        assert_eq!(sharded.global_ids(0).len(), 31);
        let new0: Vec<f32> = (0..8).map(|i| if i == 3 { 1.0 } else { 0.01 }).collect();
        let new1: Vec<f32> = (0..4).map(|i| if i == 2 { 1.0 } else { 0.01 }).collect();
        let id = sharded.insert_object(&[new0.clone(), new1.clone()]).unwrap();
        assert_eq!(id, 91, "global ids keep growing densely");
        // Smallest shard was 1 (30 objects, lowest index tie-break).
        assert_eq!(sharded.global_ids(1).len(), 31);
        assert_eq!(*sharded.global_ids(1).last().unwrap(), 91);
        assert_eq!(sharded.len(), 92);
        // The inserted object is findable through the frozen server.
        let server = ShardedServer::freeze(sharded);
        let q = MultiQuery::full(vec![new0, new1]);
        let out = server.search(&q, 1, 80).unwrap();
        assert_eq!(out.results[0].0, 91);
    }

    #[test]
    fn flat_backends_reject_sharded_insertion() {
        let set = corpus(60);
        let mut sharded = ShardedMust::build(
            set,
            Weights::uniform(2),
            MustBuildOptions::default(),
            ShardSpec::new(2),
        )
        .unwrap();
        assert!(matches!(
            sharded.insert_object(&[vec![1.0; 8], vec![1.0; 4]]),
            Err(MustError::Config(_))
        ));
        assert_eq!(sharded.len(), 60, "nothing changes on rejection");
    }

    #[test]
    fn degenerate_specs_are_config_errors() {
        let set = corpus(10);
        assert!(matches!(
            ShardedMust::build(
                set.clone(),
                Weights::uniform(2),
                MustBuildOptions::default(),
                ShardSpec::new(0)
            ),
            Err(MustError::Config(_))
        ));
        assert!(matches!(
            ShardedMust::build(
                set,
                Weights::uniform(2),
                MustBuildOptions::default(),
                ShardSpec::new(11)
            ),
            Err(MustError::Config(_))
        ));
    }

    #[test]
    fn from_parts_validates_maps_and_weights() {
        let a = Must::build(corpus(20), Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let b = Must::build(corpus(20), Weights::uniform(2), MustBuildOptions::default()).unwrap();
        // Overlapping global ids must be rejected.
        let Err(err) = ShardedMust::from_parts(
            vec![a, b],
            vec![(0..20).collect(), (10..30).collect()],
            ShardAssignment::RoundRobin,
        ) else {
            panic!("overlapping id maps must be rejected");
        };
        assert!(matches!(err, MustError::Config(_)));
        // Mismatched map length must be rejected.
        let c = Must::build(corpus(20), Weights::uniform(2), MustBuildOptions::default()).unwrap();
        assert!(matches!(
            ShardedMust::from_parts(vec![c], vec![(0..19).collect()], ShardAssignment::Hash),
            Err(MustError::Config(_))
        ));
        // An id past the corpus but inside the last partial bitmap word
        // must be rejected too (10 objects: only ids 0..10 are valid,
        // yet 63 still indexes bitmap word 0).
        let d = Must::build(corpus(10), Weights::uniform(2), MustBuildOptions::default()).unwrap();
        let mut ids: Vec<u32> = (0..10).collect();
        ids[9] = 63;
        assert!(matches!(
            ShardedMust::from_parts(vec![d], vec![ids], ShardAssignment::RoundRobin),
            Err(MustError::Config(_))
        ));
    }
}
