//! The vector-weight-learning model (Section VI of the paper).
//!
//! The model is `m` scalars — the modality weights `omega_i`.  Training
//! data are anchors (queries) paired with their true objects; negatives are
//! the corpus objects most similar to the anchor *under the current
//! weights* (hard negatives, Eq. 5), or random objects for the Fig. 9
//! ablation.  The contrastive loss (Eq. 6)
//!
//! ```text
//! L = mean_p -log( e^{IP(p,p+)} / (e^{IP(p,p+)} + sum_neg e^{IP(p,p-)}) )
//! ```
//!
//! has a closed-form gradient in the squared weights `u_i = omega_i^2`
//! because `IP(p, o) = sum_i u_i * s_i(p, o)` (Lemma 1):
//! `dL/du_i = mean_p [ sum_j pi_j s_i(p, j) - s_i(p, p+) ]` with `pi` the
//! softmax over `{p+} ∪ N-`, and `dL/domega_i = 2 omega_i dL/du_i`.
//!
//! The per-modality similarities `s_i(p, o)` are weight-independent, so we
//! precompute them once; every epoch (mining + gradient + recall tracking)
//! is then a cheap scan, matching the paper's observation that the model
//! trains in seconds while the embedding models train for hours.

use std::time::Instant;

use must_vector::{MultiQuery, MultiVectorSet, ObjectId, Weights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct WeightLearnConfig {
    /// Gradient-descent epochs (the paper trains for 700 iterations).
    pub epochs: usize,
    /// Learning rate (paper: 0.002; our loss is averaged per anchor so a
    /// larger default converges in fewer epochs).
    pub lr: f32,
    /// Number of negative examples `|N-|` per anchor (Fig. 13 sweeps
    /// 1..10; 10 by default).
    pub num_negatives: usize,
    /// Hard negatives (Eq. 5, mined by exact search under current weights)
    /// vs. uniform random negatives (the Fig. 9 ablation).
    pub hard_negatives: bool,
    /// Cap on the number of anchors used (subsampled deterministically).
    pub max_anchors: usize,
    /// Cap on the mining-corpus size (positives are always included).
    pub mining_corpus: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WeightLearnConfig {
    fn default() -> Self {
        Self {
            epochs: 300,
            lr: 0.08,
            num_negatives: 10,
            hard_negatives: true,
            max_anchors: 512,
            mining_corpus: 8192,
            seed: 0x3E16,
        }
    }
}

/// Per-epoch training diagnostics (the curves of Figs. 9 and 13).
#[derive(Debug, Clone, Default)]
pub struct TrainingCurve {
    /// Mean contrastive loss per epoch.
    pub loss: Vec<f64>,
    /// Top-1 recall of the positive under current weights, per epoch.
    pub recall: Vec<f64>,
}

/// The trained model output.
#[derive(Debug, Clone)]
pub struct LearnedWeights {
    /// The learned weights.
    pub weights: Weights,
    /// Training curves.
    pub curve: TrainingCurve,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
}

/// The weight learner with precomputed per-modality similarities.
pub struct WeightLearner {
    m: usize,
    /// `sims[a * corpus * m + o * m + i]` = `s_i(anchor_a, corpus_o)`.
    sims: Vec<f32>,
    corpus_len: usize,
    /// Index (into the mining corpus) of each anchor's positive.
    positives: Vec<usize>,
}

impl WeightLearner {
    /// Precomputes similarities between `anchors` (query + positive object
    /// id) and a mining corpus sampled from `set`.
    #[must_use]
    pub fn new(
        set: &MultiVectorSet,
        anchors: &[(&MultiQuery, ObjectId)],
        config: &WeightLearnConfig,
    ) -> Self {
        let m = set.num_modalities();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Deterministic anchor subsample.
        let mut anchor_idx: Vec<usize> = (0..anchors.len()).collect();
        if anchors.len() > config.max_anchors {
            for i in 0..anchor_idx.len() {
                let j = rng.random_range(i..anchor_idx.len());
                anchor_idx.swap(i, j);
            }
            anchor_idx.truncate(config.max_anchors);
        }

        // Mining corpus: every positive + random fill.
        let mut corpus: Vec<ObjectId> = anchor_idx.iter().map(|&a| anchors[a].1).collect();
        corpus.sort_unstable();
        corpus.dedup();
        while corpus.len() < config.mining_corpus.min(set.len()) {
            let id = rng.random_range(0..set.len() as u32);
            if corpus.binary_search(&id).is_err() {
                corpus.push(id);
                corpus.sort_unstable();
            }
        }

        let corpus_len = corpus.len();
        let mut sims = vec![0.0f32; anchor_idx.len() * corpus_len * m];
        let mut positives = Vec::with_capacity(anchor_idx.len());
        for (ai, &a) in anchor_idx.iter().enumerate() {
            let (query, pos_id) = (anchors[a].0, anchors[a].1);
            positives.push(corpus.binary_search(&pos_id).expect("positive is in corpus"));
            for (oi, &obj) in corpus.iter().enumerate() {
                for i in 0..m {
                    let s = match query.slot(i) {
                        Some(slot) => set.modality(i).ip_to(obj, slot),
                        None => 0.0,
                    };
                    sims[(ai * corpus_len + oi) * m + i] = s;
                }
            }
        }
        Self { m, sims, corpus_len, positives }
    }

    /// Number of anchors retained.
    #[must_use]
    pub fn num_anchors(&self) -> usize {
        self.positives.len()
    }

    #[inline]
    fn s(&self, anchor: usize, obj: usize) -> &[f32] {
        let base = (anchor * self.corpus_len + obj) * self.m;
        &self.sims[base..base + self.m]
    }

    /// Joint similarity of `(anchor, obj)` under squared weights `u`.
    #[inline]
    fn joint(&self, anchor: usize, obj: usize, u: &[f32]) -> f32 {
        self.s(anchor, obj).iter().zip(u).map(|(s, w)| s * w).sum()
    }

    /// Mines the `k` corpus objects most similar to `anchor` under `u`
    /// (Eq. 5 — the top-k result objects `R`).
    fn mine_top_k(&self, anchor: usize, u: &[f32], k: usize) -> Vec<(usize, f32)> {
        let mut top: Vec<(usize, f32)> = Vec::with_capacity(k + 1);
        for o in 0..self.corpus_len {
            let s = self.joint(anchor, o, u);
            if top.len() < k || s > top.last().map_or(f32::NEG_INFINITY, |t| t.1) {
                let pos = top.partition_point(|t| t.1 >= s);
                top.insert(pos, (o, s));
                if top.len() > k {
                    top.pop();
                }
            }
        }
        top
    }

    /// Trains the model, returning learned weights and curves.
    pub fn train(&self, config: &WeightLearnConfig) -> LearnedWeights {
        let t0 = Instant::now();
        let m = self.m;
        let n_anchors = self.positives.len();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x77);

        // Random initialisation around uniform (paper: random init).
        let mut omega: Vec<f32> = (0..m)
            .map(|_| (1.0 / m as f32).sqrt() * (0.5 + rng.random::<f32>()))
            .collect();
        let mut curve = TrainingCurve::default();

        if n_anchors == 0 {
            return LearnedWeights {
                weights: Weights::uniform(m),
                curve,
                train_secs: t0.elapsed().as_secs_f64(),
            };
        }

        for _epoch in 0..config.epochs {
            let u: Vec<f32> = omega.iter().map(|w| w * w).collect();
            let mut grad_u = vec![0.0f64; m];
            let mut loss_sum = 0.0f64;
            let mut hits = 0usize;

            for a in 0..n_anchors {
                let pos = self.positives[a];
                // Negatives: hard (top-k under current weights, excluding
                // the positive) or random.
                let negatives: Vec<usize> = if config.hard_negatives {
                    let top = self.mine_top_k(a, &u, config.num_negatives + 1);
                    if top.first().map(|t| t.0) == Some(pos) {
                        hits += 1;
                    }
                    top.into_iter()
                        .map(|(o, _)| o)
                        .filter(|&o| o != pos)
                        .take(config.num_negatives)
                        .collect()
                } else {
                    // Recall tracking needs the argmax even in random mode.
                    let top = self.mine_top_k(a, &u, 1);
                    if top.first().map(|t| t.0) == Some(pos) {
                        hits += 1;
                    }
                    (0..config.num_negatives)
                        .map(|_| loop {
                            let o = rng.random_range(0..self.corpus_len);
                            if o != pos {
                                break o;
                            }
                        })
                        .collect()
                };

                // Softmax over {pos} ∪ negatives (Eq. 6), with the usual
                // max-shift for numerical stability.
                let s_pos = self.joint(a, pos, &u);
                let s_negs: Vec<f32> =
                    negatives.iter().map(|&o| self.joint(a, o, &u)).collect();
                let max = s_negs.iter().copied().fold(s_pos, f32::max);
                let e_pos = ((s_pos - max) as f64).exp();
                let e_negs: Vec<f64> =
                    s_negs.iter().map(|&s| ((s - max) as f64).exp()).collect();
                let denom = e_pos + e_negs.iter().sum::<f64>();
                loss_sum += -(e_pos / denom).ln();

                // Gradient: sum_j pi_j s_i(j) - s_i(pos).
                let pi_pos = e_pos / denom;
                for (i, gu) in grad_u.iter_mut().enumerate() {
                    let mut g = (pi_pos - 1.0) * self.s(a, pos)[i] as f64;
                    for (e, &o) in e_negs.iter().zip(&negatives) {
                        g += (e / denom) * self.s(a, o)[i] as f64;
                    }
                    *gu += g;
                }
            }

            // omega step: dL/domega_i = 2 omega_i dL/du_i.
            for i in 0..m {
                let g = (grad_u[i] / n_anchors as f64) as f32 * 2.0 * omega[i];
                omega[i] = (omega[i] - config.lr * g).clamp(1e-3, 8.0);
            }
            curve.loss.push(loss_sum / n_anchors as f64);
            curve.recall.push(hits as f64 / n_anchors as f64);
        }

        LearnedWeights {
            weights: Weights::new(omega).expect("clamped weights are valid"),
            curve,
            train_secs: t0.elapsed().as_secs_f64(),
        }
    }
}

/// Convenience wrapper: precompute + train in one call.
#[must_use]
pub fn learn_weights(
    set: &MultiVectorSet,
    anchors: &[(&MultiQuery, ObjectId)],
    config: &WeightLearnConfig,
) -> LearnedWeights {
    WeightLearner::new(set, anchors, config).train(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_vector::VectorSetBuilder;

    /// A corpus where modality 1 (text) is discriminative and modality 0
    /// (image) is noisy/confusing: the learner must upweight modality 1.
    fn discriminative_text_setup() -> (MultiVectorSet, Vec<(MultiQuery, ObjectId)>) {
        let n = 64;
        let dim0 = 8;
        let dim1 = 8;
        let mut rng = StdRng::seed_from_u64(5);
        let mut m0 = VectorSetBuilder::new(dim0, n);
        let mut m1 = VectorSetBuilder::new(dim1, n);
        let mut texts = Vec::new();
        for _ in 0..n {
            // Image vectors nearly collapse onto one direction (ambiguous).
            let mut img = vec![0.0f32; dim0];
            img[0] = 1.0;
            for x in img.iter_mut() {
                *x += rng.random::<f32>() * 0.05;
            }
            // Text vectors are well-spread (discriminative).
            let mut txt = vec![0.0f32; dim1];
            for x in txt.iter_mut() {
                *x = rng.random::<f32>() * 2.0 - 1.0;
            }
            m0.push_normalized(&img).unwrap();
            m1.push_normalized(&txt).unwrap();
            texts.push(txt);
        }
        let set = MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap();
        // Anchors: queries whose text equals the positive's text.
        let mut anchors = Vec::new();
        for pos in 0..24u32 {
            let img_slot = set.modality(0).get(pos).to_vec();
            let txt_slot = set.modality(1).get(pos).to_vec();
            anchors.push((MultiQuery::full(vec![img_slot, txt_slot]), pos));
        }
        (set, anchors)
    }

    fn as_refs(anchors: &[(MultiQuery, ObjectId)]) -> Vec<(&MultiQuery, ObjectId)> {
        anchors.iter().map(|(q, p)| (q, *p)).collect()
    }

    #[test]
    fn learner_upweights_the_discriminative_modality() {
        let (set, anchors) = discriminative_text_setup();
        let config = WeightLearnConfig { epochs: 120, ..WeightLearnConfig::default() };
        let out = learn_weights(&set, &as_refs(&anchors), &config);
        let w = out.weights;
        assert!(
            w.sq(1) > w.sq(0),
            "text must outweigh ambiguous image: {:?}",
            w.squared()
        );
        // Training must improve recall to (near) 1 on this easy setup.
        let final_recall = *out.curve.recall.last().unwrap();
        assert!(final_recall > 0.9, "final recall {final_recall}");
    }

    #[test]
    fn loss_decreases_over_training() {
        let (set, anchors) = discriminative_text_setup();
        let config = WeightLearnConfig { epochs: 80, ..WeightLearnConfig::default() };
        let out = learn_weights(&set, &as_refs(&anchors), &config);
        let first = out.curve.loss[..5].iter().sum::<f64>() / 5.0;
        let last = out.curve.loss[out.curve.loss.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(last < first, "loss must decrease: {first} -> {last}");
    }

    #[test]
    fn hard_negatives_converge_at_least_as_fast_as_random() {
        let (set, anchors) = discriminative_text_setup();
        let refs = as_refs(&anchors);
        let epochs = 60;
        let hard = learn_weights(
            &set,
            &refs,
            &WeightLearnConfig { epochs, hard_negatives: true, ..Default::default() },
        );
        let random = learn_weights(
            &set,
            &refs,
            &WeightLearnConfig { epochs, hard_negatives: false, ..Default::default() },
        );
        // Compare mean recall over the first third of training.
        let third = epochs / 3;
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let r_hard = mean(&hard.curve.recall[..third]);
        let r_random = mean(&random.curve.recall[..third]);
        assert!(
            r_hard + 0.05 >= r_random,
            "hard negatives should not converge slower: {r_hard} vs {r_random}"
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        // Pin the analytic gradient against numerical differentiation of
        // the loss in u-space on a tiny instance.
        let (set, anchors) = discriminative_text_setup();
        let refs = as_refs(&anchors[..4]);
        let config = WeightLearnConfig {
            num_negatives: 3,
            hard_negatives: false,
            seed: 9,
            ..Default::default()
        };
        let learner = WeightLearner::new(&set, &refs, &config);
        // Fixed negatives for the check.
        let negatives: Vec<Vec<usize>> = (0..learner.num_anchors())
            .map(|a| (0..3).map(|j| (a * 7 + j * 11 + 1) % learner.corpus_len).collect())
            .collect();
        let loss = |u: &[f32]| -> f64 {
            let mut total = 0.0;
            for (a, negs) in negatives.iter().enumerate() {
                let pos = learner.positives[a];
                let s_pos = learner.joint(a, pos, u) as f64;
                let mut denom = s_pos.exp();
                for &o in negs {
                    denom += (learner.joint(a, o, u) as f64).exp();
                }
                total += -(s_pos.exp() / denom).ln();
            }
            total / learner.num_anchors() as f64
        };
        let u = [0.4f32, 0.7];
        // Analytic gradient in u.
        let mut grad = [0.0f64; 2];
        for (a, negs) in negatives.iter().enumerate() {
            let pos = learner.positives[a];
            let s_pos = learner.joint(a, pos, &u) as f64;
            let e_pos = s_pos.exp();
            let e_negs: Vec<f64> = negs
                .iter()
                .map(|&o| (learner.joint(a, o, &u) as f64).exp())
                .collect();
            let denom = e_pos + e_negs.iter().sum::<f64>();
            for (i, gr) in grad.iter_mut().enumerate() {
                let mut g = (e_pos / denom - 1.0) * learner.s(a, pos)[i] as f64;
                for (e, &o) in e_negs.iter().zip(negs) {
                    g += (e / denom) * learner.s(a, o)[i] as f64;
                }
                *gr += g / learner.num_anchors() as f64;
            }
        }
        // Numerical gradient.
        let h = 1e-3f32;
        for i in 0..2 {
            let mut up = u;
            up[i] += h;
            let mut dn = u;
            dn[i] -= h;
            let num = (loss(&up) - loss(&dn)) / (2.0 * h as f64);
            assert!(
                (num - grad[i]).abs() < 1e-3,
                "grad[{i}]: analytic {} vs numeric {num}",
                grad[i]
            );
        }
    }

    #[test]
    fn empty_anchor_set_falls_back_to_uniform() {
        let (set, _) = discriminative_text_setup();
        let out = learn_weights(&set, &[], &WeightLearnConfig::default());
        assert_eq!(out.weights, Weights::uniform(2));
    }

    #[test]
    fn training_is_deterministic() {
        let (set, anchors) = discriminative_text_setup();
        let refs = as_refs(&anchors);
        let config = WeightLearnConfig { epochs: 30, ..Default::default() };
        let a = learn_weights(&set, &refs, &config);
        let b = learn_weights(&set, &refs, &config);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.curve.loss, b.curve.loss);
    }
}
