//! The online serving layer (Fig. 4's offline/online split): a read-only,
//! `Send + Sync` handle over a frozen MUST snapshot that many threads can
//! search concurrently.
//!
//! [`Must`] owns a mutable corpus (tombstones, dynamic insertion) and its
//! searcher advances an RNG counter per query, so neither is shareable
//! across threads nor order-deterministic.  [`MustServer`] freezes the
//! corpus + weights + graph behind an [`Arc`]: flat graphs are frozen to
//! the CSR form a deployment serves from, HNSW keeps its layered form.
//! Every search derives its RNG seed from a fixed serving constant, so a
//! query's results are **bit-identical** no matter which worker runs it or
//! in what order — the concurrency tests pin this down.
//!
//! Because the fused storage is unscaled and weighting happens on the
//! query row alone, the frozen weights are merely a **default**: every
//! entry point has a `*_weighted` twin taking a per-query [`Weights`]
//! override, served from the same snapshot with zero extra state — the
//! paper's user-defined-weight scenario (Tab. IX, §VIII-F) as a serving
//! feature instead of an offline rebuild.
//!
//! Three entry points, by traffic shape:
//!
//! * [`MustServer::search`] / [`MustServer::search_weighted`] — one-off
//!   query, transient scratch state.
//! * [`MustServer::search_batch`] / [`MustServer::search_batch_weighted`]
//!   — a query slice fanned over worker threads (the throughput bench
//!   path).
//! * [`MustServer::serve`] — a blocking request/reply loop over
//!   [`std::sync::mpsc`] channels, for streams whose length is unknown
//!   up front; backed by the per-worker-lane
//!   [`crate::runtime::ServeRuntime`] (no shared dequeue lock on the hot
//!   path).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use must_graph::csr::CsrGraph;
use must_graph::hnsw::Hnsw;
use must_graph::search::{beam_search_csr, SearchScratch};
use must_graph::{AnnIndex, QueryScorer, SearchParams, SearchResult};
use must_vector::{MultiQuery, MultiVectorSet, QuantizedRows, Weights};

use crate::framework::Must;
use crate::index::MustIndex;
use crate::oracle::{MustQueryScorer, QuantizedQueryScorer};
use crate::search::SearchOutcome;
use crate::MustError;

/// Fixed RNG seed for the random pool initialisation of every served
/// query.  A *constant* (rather than `Must`'s per-searcher counter) makes
/// serving results a pure function of the query — the property that lets
/// concurrent and serial execution agree bit-for-bit.
const SERVE_RNG_SEED: u64 = 0x5E7E_D05E_ED00;

/// The frozen index a server searches: flat graphs in CSR layout, HNSW in
/// its layered form.
pub enum ServingIndex {
    /// A flat graph frozen to compressed sparse rows.
    Csr(CsrGraph),
    /// The layered HNSW graph.
    Hnsw(Hnsw),
}

impl ServingIndex {
    fn search<S: QueryScorer>(
        &self,
        scorer: &S,
        params: SearchParams,
        scratch: &mut SearchScratch,
    ) -> SearchResult {
        match self {
            Self::Csr(csr) => beam_search_csr(csr, scorer, params, scratch, SERVE_RNG_SEED),
            Self::Hnsw(h) => h.search_with_scratch(scorer, params, scratch),
        }
    }

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Csr(csr) => csr.len(),
            Self::Hnsw(h) => AnnIndex::len(h),
        }
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Display label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Csr(_) => "CSR",
            Self::Hnsw(_) => "HNSW",
        }
    }
}

struct ServerCore {
    /// The frozen corpus; its fused rows are the storage engine every
    /// worker scores against, shared via the core's [`Arc`].
    objects: MultiVectorSet,
    /// The default weights (the configuration the index was built under);
    /// any query may override them via the `*_weighted` entry points.
    weights: Weights,
    index: ServingIndex,
    prune: bool,
    /// The SQ8 companion engine, when the frozen [`Must`] carried one.
    /// Its presence flips every search into quantized-scan mode: the
    /// graph walk scores `u8` codes (widened, never-under-pruning
    /// Lemma-4 bound) and the top `4k` pool is exact-re-ranked on the
    /// retained f32 rows.
    quant: Option<QuantizedRows>,
}

/// A shared, read-only serving handle: cheap to clone, safe to search
/// from any number of threads.
#[derive(Clone)]
pub struct MustServer {
    core: Arc<ServerCore>,
}

/// One request on a [`MustServer::serve`] stream.
pub struct ServeRequest {
    /// Caller-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// The query.
    pub query: MultiQuery,
    /// Number of results wanted.
    pub k: usize,
    /// Result-pool size (`l >= k`).
    pub l: usize,
}

/// The reply to one [`ServeRequest`].
pub struct ServeReply {
    /// The request's correlation id.
    pub id: u64,
    /// The search outcome (or the per-query error).
    pub outcome: Result<SearchOutcome, MustError>,
}

impl MustServer {
    /// Freezes a built [`Must`] into a serving snapshot, consuming it.
    /// Flat graphs are converted to CSR; tombstone state is discarded
    /// (serving snapshots are immutable — rebuild and re-freeze to apply
    /// deletions, as the paper's Section IX prescribes).
    ///
    /// `Must` guarantees its weights cover the corpus, so the snapshot's
    /// default-weight invariant holds by construction and
    /// [`MustServer::worker`] is infallible.
    #[must_use]
    pub fn freeze(must: Must) -> Self {
        let parts = must.into_parts();
        debug_assert_eq!(
            parts.weights.modalities(),
            parts.objects.num_modalities(),
            "Must validates weight arity at build/load time"
        );
        let index = match parts.index {
            MustIndex::Flat(g) => ServingIndex::Csr(CsrGraph::from_graph(&g)),
            MustIndex::Hnsw(h) => ServingIndex::Hnsw(h),
        };
        Self {
            core: Arc::new(ServerCore {
                objects: parts.objects,
                weights: parts.weights,
                index,
                prune: parts.prune,
                quant: parts.quant,
            }),
        }
    }

    /// Loads a persisted bundle (v1–v3, v5, or v7 — see
    /// [`crate::persist`]) straight into a serving snapshot — the online
    /// half of the offline/online split.  v7 bundles carry the SQ8 codes,
    /// so the loaded server answers in quantized-scan + re-rank mode.
    ///
    /// # Errors
    /// Propagates [`crate::persist::load`] errors ([`MustError::Io`] /
    /// [`MustError::Config`]).
    pub fn load(path: &std::path::Path) -> Result<Self, MustError> {
        Ok(Self::freeze(crate::persist::load(path)?))
    }

    /// The frozen SQ8 engine, when this snapshot serves in
    /// quantized-scan + re-rank mode.
    #[must_use]
    pub fn quant(&self) -> Option<&QuantizedRows> {
        self.core.quant.as_ref()
    }

    /// The frozen corpus.
    #[must_use]
    pub fn objects(&self) -> &MultiVectorSet {
        &self.core.objects
    }

    /// The default weights (used when a query carries no override).
    #[must_use]
    pub fn weights(&self) -> &Weights {
        &self.core.weights
    }

    /// The frozen index.
    #[must_use]
    pub fn index(&self) -> &ServingIndex {
        &self.core.index
    }

    /// Number of served objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.core.objects.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.core.objects.is_empty()
    }

    /// One-off top-`k` search with pool size `l` under the default
    /// weights.  Deterministic: the same query always yields the same
    /// ranked ids and [`must_graph::SearchStats`], regardless of thread or
    /// arrival order.
    ///
    /// # Errors
    /// Propagates query/corpus arity and dimension mismatches.
    pub fn search(&self, query: &MultiQuery, k: usize, l: usize) -> Result<SearchOutcome, MustError> {
        self.worker().search(query, k, l)
    }

    /// One-off top-`k` search under a per-query weight override: the same
    /// frozen snapshot, the same graph, but the joint similarity is
    /// `sum_k w_k^2 IP_k` for the caller's `weights`.  Equivalent (ids
    /// identical, similarities to float tolerance) to freezing a server
    /// whose default weights are `weights` over the same index — pinned by
    /// `tests/weighted_search.rs`.
    ///
    /// # Errors
    /// Propagates weight-arity and query/corpus mismatches.
    pub fn search_weighted(
        &self,
        query: &MultiQuery,
        weights: &Weights,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        self.worker().search_weighted(query, weights, k, l)
    }

    /// A reusable per-thread search handle (allocation-free steady state:
    /// the search scratch persists across queries; the fused storage is
    /// shared, never copied).  Infallible by construction: the snapshot's
    /// weight/corpus invariant was validated at freeze time, and all
    /// per-query plumbing reports through each search's `Result`.  The
    /// visited stamps are pre-sized to this snapshot's graph here — the
    /// `O(n)` scratch allocation — so a sharded deployment's workers each
    /// carry scratch sized to their own shard.
    #[must_use]
    pub fn worker(&self) -> ServerWorker<'_> {
        let mut scratch = SearchScratch::default();
        scratch.reserve(self.core.index.len());
        ServerWorker { scratch, core: &self.core }
    }

    /// Searches `queries` with `threads` workers (atomic chunk claiming,
    /// one reusable [`ServerWorker`] per thread) and returns outcomes in
    /// input order.  `threads` is clamped to `[1, queries.len()]`.
    /// Results are bit-identical to running [`MustServer::search`]
    /// serially.
    ///
    /// # Errors
    /// Per-query errors are returned in the corresponding slot.
    #[must_use]
    pub fn search_batch(
        &self,
        queries: &[MultiQuery],
        k: usize,
        l: usize,
        threads: usize,
    ) -> Vec<Result<SearchOutcome, MustError>> {
        fan_out_batch(queries, threads, || {
            let mut worker = self.worker();
            move |q: &MultiQuery| worker.search(q, k, l)
        })
    }

    /// [`MustServer::search_batch`] under a per-batch weight override —
    /// the weight-churn serving path: switching `weights` between batches
    /// costs nothing beyond the per-query evaluator each search already
    /// builds.
    ///
    /// # Errors
    /// Per-query errors are returned in the corresponding slot.
    #[must_use]
    pub fn search_batch_weighted(
        &self,
        queries: &[MultiQuery],
        weights: &Weights,
        k: usize,
        l: usize,
        threads: usize,
    ) -> Vec<Result<SearchOutcome, MustError>> {
        fan_out_batch(queries, threads, || {
            let mut worker = self.worker();
            move |q: &MultiQuery| worker.search_weighted(q, weights, k, l)
        })
    }

    /// Blocking request/reply serve loop: fans `requests` over `threads`
    /// worker threads, sending one [`ServeReply`] per request on `replies`.
    /// Returns the number of requests served, once the request channel is
    /// closed and drained.  Replies may interleave across requests; use
    /// [`ServeRequest::id`] to correlate.  Dropped reply receivers are
    /// tolerated (remaining requests are still drained).
    ///
    /// Backed by [`crate::runtime::ServeRuntime`]: the calling thread
    /// pumps the channel into per-worker lanes (round-robin), workers
    /// steal from the longest lane when their own runs dry, and shutdown
    /// drains every lane — no shared dequeue lock anywhere on the hot
    /// path.  For finer control (weighted requests, batch affinity, lane
    /// counters) drive a [`crate::runtime::ServeRuntime`] directly.
    #[must_use]
    pub fn serve(
        &self,
        requests: Receiver<ServeRequest>,
        replies: Sender<ServeReply>,
        threads: usize,
    ) -> usize {
        let runtime = crate::runtime::ServeRuntime::start(self, threads, replies);
        for req in requests {
            runtime.submit(req);
        }
        runtime.shutdown()
    }
}

/// Shared fan-out behind the batch entry points of [`MustServer`] and
/// [`crate::shard::ShardedServer`]: `threads` is clamped to
/// `[1, queries.len()]` and each scoped thread builds one reusable worker
/// via `mk_worker`.
///
/// Work is distributed by **atomic chunk claiming**, not static slices:
/// workers repeatedly claim the next `~n/(4·threads)` queries off a
/// shared cursor until the batch is exhausted.  Static contiguous chunks
/// (`n.div_ceil(threads)` each) left the last worker with up to
/// `n/threads` extra queries on ragged batches — e.g. 17 queries over 4
/// threads ran as 5+5+5+2, with two workers idle while the tail drained.
/// Claiming bounds the imbalance to a single small chunk.
///
/// Each worker records `(original index, outcome)` pairs and the results
/// are scattered back by index afterwards, so outcomes come back in input
/// order and — because per-query work is deterministic and only *which*
/// worker runs a query changes — results are bit-identical for every
/// thread count and every claiming interleaving.
pub(crate) fn fan_out_batch<W, F>(
    queries: &[MultiQuery],
    threads: usize,
    mk_worker: F,
) -> Vec<Result<SearchOutcome, MustError>>
where
    F: Fn() -> W + Sync,
    W: FnMut(&MultiQuery) -> Result<SearchOutcome, MustError>,
{
    let n = queries.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return queries.iter().map(mk_worker()).collect();
    }
    // ~4 chunks per worker: small enough to level a ragged tail, large
    // enough that the shared cursor is touched rarely.
    let chunk = (n.div_ceil(4 * threads)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<Result<SearchOutcome, MustError>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let mk_worker = &mk_worker;
                scope.spawn(move || {
                    let mut worker = mk_worker();
                    let mut ran: Vec<(usize, Result<SearchOutcome, MustError>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (off, q) in queries[start..end].iter().enumerate() {
                            ran.push((start + off, worker(q)));
                        }
                    }
                    ran
                })
            })
            .collect();
        for handle in handles {
            for (i, outcome) in handle.join().expect("batch worker panicked") {
                out[i] = Some(outcome);
            }
        }
    });
    out.into_iter().map(|x| x.expect("every index claimed exactly once")).collect()
}

/// Reusable per-thread search state bound to a [`MustServer`] snapshot.
/// Holds no per-weight state: the default and override paths share the
/// same scratch, so one worker can serve a weight-churning stream.
pub struct ServerWorker<'a> {
    scratch: SearchScratch,
    core: &'a ServerCore,
}

impl ServerWorker<'_> {
    /// Top-`k` search with pool size `l` under the snapshot's default
    /// weights; see [`MustServer::search`] for the determinism contract.
    ///
    /// # Errors
    /// Propagates query/corpus arity and dimension mismatches.
    pub fn search(
        &mut self,
        query: &MultiQuery,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        self.search_with_params(query, SearchParams::new(k, l.max(k)))
    }

    /// Top-`k` search under a per-query weight override; see
    /// [`MustServer::search_weighted`].
    ///
    /// # Errors
    /// Propagates weight-arity and query/corpus mismatches.
    pub fn search_weighted(
        &mut self,
        query: &MultiQuery,
        weights: &Weights,
        k: usize,
        l: usize,
    ) -> Result<SearchOutcome, MustError> {
        self.search_weighted_with_params(query, weights, SearchParams::new(k, l.max(k)))
    }

    /// Same as [`ServerWorker::search`], with explicit [`SearchParams`].
    ///
    /// # Errors
    /// Propagates query/corpus arity and dimension mismatches.
    pub fn search_with_params(
        &mut self,
        query: &MultiQuery,
        params: SearchParams,
    ) -> Result<SearchOutcome, MustError> {
        // The default path is the weighted path with the frozen
        // configuration; the core reference outlives the &mut self borrow,
        // so no clone is needed.
        let core = self.core;
        self.search_weighted_with_params(query, &core.weights, params)
    }

    /// Same as [`ServerWorker::search_weighted`], with explicit
    /// [`SearchParams`].
    ///
    /// # Errors
    /// Propagates weight-arity and query/corpus mismatches.
    pub fn search_weighted_with_params(
        &mut self,
        query: &MultiQuery,
        weights: &Weights,
        params: SearchParams,
    ) -> Result<SearchOutcome, MustError> {
        if self.core.quant.is_some() {
            return self.search_quantized_with_params(query, weights, params);
        }
        let scorer =
            MustQueryScorer::from_rows(self.core.objects.fused(), query, weights, self.core.prune)?;
        let t0 = Instant::now();
        let res = self.core.index.search(&scorer, params, &mut self.scratch);
        Ok(SearchOutcome {
            results: res.results,
            stats: res.stats,
            kernel_evals: scorer.kernel_evals(),
            secs: t0.elapsed().as_secs_f64(),
        })
    }

    /// The quantized-scan + exact-re-rank recipe (DiskANN/SPANN-style,
    /// adapted to multi-vector joint similarity): the graph walk scores
    /// `u8` codes under the widened Lemma-4 bound with an over-fetched
    /// pool of `rerank_k = 4 * k`, then the pool is re-scored exactly on
    /// the retained f32 rows and the true top `k` returned.  Both stages
    /// weight the query side only, so per-query overrides compose
    /// unchanged.
    fn search_quantized_with_params(
        &mut self,
        query: &MultiQuery,
        weights: &Weights,
        params: SearchParams,
    ) -> Result<SearchOutcome, MustError> {
        let core = self.core;
        let quant = core.quant.as_ref().expect("checked by the caller");
        let qscorer = QuantizedQueryScorer::from_rows(quant, query, weights, core.prune)?;
        // Exact re-rank wants ip() only; the prune flag is irrelevant.
        let exact = MustQueryScorer::from_rows(core.objects.fused(), query, weights, false)?;
        let t0 = Instant::now();
        let n = core.index.len();
        let rerank_k = params.k.saturating_mul(4).min(n).max(params.k.min(n)).max(1);
        let walk = SearchParams {
            k: rerank_k,
            l: params.l.max(rerank_k),
            random_init: params.random_init,
        };
        let res = core.index.search(&qscorer, walk, &mut self.scratch);
        let mut pool: Vec<(u32, f32)> =
            res.results.iter().map(|&(id, _)| (id, exact.score(id))).collect();
        pool.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        pool.truncate(params.k);
        Ok(SearchOutcome {
            results: pool,
            stats: res.stats,
            kernel_evals: qscorer.kernel_evals() + exact.kernel_evals(),
            secs: t0.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::MustBuildOptions;
    use must_graph::GraphRecipe;
    use must_vector::VectorSetBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize) -> MultiVectorSet {
        let mut rng = StdRng::seed_from_u64(21);
        let mut m0 = VectorSetBuilder::new(8, n);
        let mut m1 = VectorSetBuilder::new(4, n);
        for _ in 0..n {
            let v0: Vec<f32> = (0..8).map(|_| rng.random::<f32>() - 0.5).collect();
            let v1: Vec<f32> = (0..4).map(|_| rng.random::<f32>() - 0.5).collect();
            m0.push_normalized(&v0).unwrap();
            m1.push_normalized(&v1).unwrap();
        }
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    fn self_query(set: &MultiVectorSet, id: u32) -> MultiQuery {
        MultiQuery::full(vec![
            set.modality(0).get(id).to_vec(),
            set.modality(1).get(id).to_vec(),
        ])
    }

    fn server(n: usize, recipe: GraphRecipe) -> MustServer {
        let set = corpus(n);
        let must = Must::build(
            set,
            Weights::uniform(2),
            MustBuildOptions { recipe, ..Default::default() },
        )
        .unwrap();
        MustServer::freeze(must)
    }

    // The serving handle must be shareable and sendable across threads.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MustServer>();
    };

    #[test]
    fn frozen_server_finds_self_queries() {
        for recipe in [GraphRecipe::Fused, GraphRecipe::Hnsw] {
            let srv = server(200, recipe);
            assert_eq!(srv.len(), 200);
            for id in [0u32, 77, 199] {
                let q = self_query(srv.objects(), id);
                let out = srv.search(&q, 1, 60).unwrap();
                assert_eq!(out.results[0].0, id, "{}", srv.index().label());
            }
        }
    }

    #[test]
    fn repeated_searches_are_bit_identical() {
        let srv = server(250, GraphRecipe::Fused);
        let q = self_query(srv.objects(), 123);
        let a = srv.search(&q, 5, 50).unwrap();
        let mut worker = srv.worker();
        for _ in 0..3 {
            let b = worker.search(&q, 5, 50).unwrap();
            assert_eq!(a.results, b.results);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn default_search_equals_weighted_search_with_default_weights() {
        let srv = server(200, GraphRecipe::Fused);
        let default = srv.weights().clone();
        for id in [3u32, 80, 170] {
            let q = self_query(srv.objects(), id);
            let a = srv.search(&q, 5, 50).unwrap();
            let b = srv.search_weighted(&q, &default, 5, 50).unwrap();
            assert_eq!(a.results, b.results);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn weighted_search_overrides_change_the_ranking_criterion() {
        let srv = server(250, GraphRecipe::Fused);
        // A query whose modality-0 part matches object A and whose
        // modality-1 part matches object B: extreme weights must steer
        // the top result toward the favoured modality's anchor.
        let (a, b) = (40u32, 141u32);
        let q = MultiQuery::full(vec![
            srv.objects().modality(0).get(a).to_vec(),
            srv.objects().modality(1).get(b).to_vec(),
        ]);
        let w_img = Weights::from_squared(vec![0.999, 0.001]).unwrap();
        let w_txt = Weights::from_squared(vec![0.001, 0.999]).unwrap();
        let top_img = srv.search_weighted(&q, &w_img, 1, 120).unwrap().results[0].0;
        let top_txt = srv.search_weighted(&q, &w_txt, 1, 120).unwrap().results[0].0;
        assert_eq!(top_img, a, "modality-0-heavy weights favour the image anchor");
        assert_eq!(top_txt, b, "modality-1-heavy weights favour the text anchor");
    }

    #[test]
    fn weighted_search_rejects_bad_arity_per_query() {
        let srv = server(100, GraphRecipe::Fused);
        let q = self_query(srv.objects(), 5);
        assert!(srv.search_weighted(&q, &Weights::uniform(3), 3, 30).is_err());
        // The snapshot is unaffected: the default path still works.
        assert!(srv.search(&q, 3, 30).is_ok());
    }

    #[test]
    fn search_batch_matches_serial_for_any_thread_count() {
        let srv = server(200, GraphRecipe::Fused);
        let queries: Vec<MultiQuery> =
            (0..32).map(|i| self_query(srv.objects(), i * 6)).collect();
        let serial: Vec<_> = queries.iter().map(|q| srv.search(q, 5, 40).unwrap()).collect();
        for threads in [1, 3, 8, 64] {
            let batch = srv.search_batch(&queries, 5, 40, threads);
            assert_eq!(batch.len(), serial.len());
            for (b, s) in batch.into_iter().zip(&serial) {
                let b = b.unwrap();
                assert_eq!(b.results, s.results, "threads={threads}");
                assert_eq!(b.stats, s.stats, "threads={threads}");
            }
        }
    }

    #[test]
    fn weighted_batch_matches_serial_for_any_thread_count() {
        let srv = server(180, GraphRecipe::Fused);
        let w = Weights::from_squared(vec![0.7, 0.3]).unwrap();
        let queries: Vec<MultiQuery> =
            (0..24).map(|i| self_query(srv.objects(), i * 7)).collect();
        let serial: Vec<_> = queries
            .iter()
            .map(|q| srv.search_weighted(q, &w, 5, 40).unwrap())
            .collect();
        for threads in [1, 4, 16] {
            let batch = srv.search_batch_weighted(&queries, &w, 5, 40, threads);
            for (b, s) in batch.into_iter().zip(&serial) {
                let b = b.unwrap();
                assert_eq!(b.results, s.results, "threads={threads}");
                assert_eq!(b.stats, s.stats, "threads={threads}");
            }
        }
    }

    #[test]
    fn serve_loop_answers_every_request() {
        let srv = server(150, GraphRecipe::Fused);
        let (req_tx, req_rx) = std::sync::mpsc::channel();
        let (rep_tx, rep_rx) = std::sync::mpsc::channel();
        for i in 0..20u64 {
            let q = self_query(srv.objects(), (i * 7) as u32);
            req_tx.send(ServeRequest { id: i, query: q, k: 1, l: 40 }).unwrap();
        }
        drop(req_tx);
        let served = srv.serve(req_rx, rep_tx, 4);
        assert_eq!(served, 20);
        let mut replies: Vec<ServeReply> = rep_rx.iter().collect();
        assert_eq!(replies.len(), 20);
        replies.sort_by_key(|r| r.id);
        for (i, rep) in replies.iter().enumerate() {
            assert_eq!(rep.id, i as u64);
            let out = rep.outcome.as_ref().unwrap();
            assert_eq!(out.results[0].0, (i * 7) as u32);
        }
    }

    #[test]
    fn malformed_queries_error_per_request_not_globally() {
        let srv = server(100, GraphRecipe::Fused);
        let good = self_query(srv.objects(), 5);
        let bad = MultiQuery::full(vec![vec![1.0; 3], vec![1.0; 4]]); // wrong dim
        let out = srv.search_batch(&[good, bad], 3, 30, 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn quantized_snapshot_reranks_to_the_f32_answer() {
        // Two identical builds over the same deterministic corpus: one
        // frozen as-is, one with the SQ8 engine attached.  The quantized
        // walk + 4k re-rank must recover the f32 top-1 on self-queries,
        // under default and overridden weights alike.
        let build = || {
            Must::build(corpus(220), Weights::uniform(2), MustBuildOptions::default()).unwrap()
        };
        let plain = MustServer::freeze(build());
        let mut with_codes = build();
        with_codes.quantize();
        let quantized = MustServer::freeze(with_codes);
        assert!(quantized.quant().is_some());
        assert!(plain.quant().is_none());
        let w = Weights::from_squared(vec![0.7, 0.3]).unwrap();
        for id in [1u32, 64, 133, 219] {
            let q = self_query(plain.objects(), id);
            let a = plain.search(&q, 5, 60).unwrap();
            let b = quantized.search(&q, 5, 60).unwrap();
            assert_eq!(a.results[0].0, b.results[0].0, "self-query anchor survives");
            assert!(b.results.len() <= 5);
            // Re-ranked similarities are exact f32 scores.
            for ((ia, sa), (ib, sb)) in a.results.iter().zip(&b.results) {
                if ia == ib {
                    assert!((sa - sb).abs() < 1e-5, "exact re-rank restores f32 scores");
                }
            }
            let aw = plain.search_weighted(&q, &w, 1, 60).unwrap();
            let bw = quantized.search_weighted(&q, &w, 1, 60).unwrap();
            assert_eq!(aw.results[0].0, bw.results[0].0);
        }
    }

    #[test]
    fn server_round_trips_through_binary_bundle() {
        let set = corpus(150);
        let must =
            Must::build(set, Weights::new(vec![0.7, 0.5]).unwrap(), MustBuildOptions::default())
                .unwrap();
        let dir = std::env::temp_dir().join("must-server-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("server-{}.mustb", std::process::id()));
        crate::persist::save(&must, &path).unwrap();
        let direct = MustServer::freeze(must);
        let loaded = MustServer::load(&path).unwrap();
        for id in [2u32, 70, 149] {
            let q = self_query(direct.objects(), id);
            let a = direct.search(&q, 5, 60).unwrap();
            let b = loaded.search(&q, 5, 60).unwrap();
            assert_eq!(a.results, b.results);
            assert_eq!(a.stats, b.stats);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
