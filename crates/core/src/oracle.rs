//! Bridges the vector layer to the graph layer: the joint-similarity
//! oracle (Lemma 1) for index construction and the query scorer with the
//! multi-vector pruning optimisation (Lemma 4) for search.
//!
//! Both sides run on the shared **unscaled** fused-row storage engine
//! ([`must_vector::FusedRows`]): the corpus is never copied or rescaled.
//! Pairwise similarities apply the squared weights per segment of the two
//! raw rows; every query is fused into one `omega^2`-scaled padded row up
//! front, so changing weights is a per-query decision — the seam the
//! serving layer's `search_weighted` rides on.

use must_graph::{QueryScorer, SimilarityOracle};
use must_vector::{
    FusedRows, JointDistance, MultiQuery, MultiVectorSet, PartialIpVerdict, QuantizedQueryEvaluator,
    QuantizedRows, QueryEvaluator, VectorError, Weights,
};

/// Joint-similarity oracle over a multi-vector corpus under fixed weights —
/// what Algorithm 1 builds the fused index on.
pub struct JointOracle<'a> {
    joint: JointDistance<'a>,
    /// The fused centroid of all virtual points with the oracle's
    /// `omega^2` baked in (component ④ support): `sim_to_centroid` is one
    /// dot product of this row against a raw stored row.
    centroid_row: Vec<f32>,
    w_total: f32,
}

impl<'a> JointOracle<'a> {
    /// Creates the oracle.  No corpus copy happens — the oracle scores
    /// against `set`'s own fused storage, weighting query-side.
    ///
    /// # Errors
    /// Propagates weight-arity mismatches from the vector layer.
    pub fn new(set: &'a MultiVectorSet, weights: Weights) -> Result<Self, VectorError> {
        let joint = JointDistance::new(set, weights)?;
        let engine = joint.engine();
        // Bake omega^2 into the centroid once: against unscaled rows the
        // plain fused dot product then yields the Lemma-1 weighted sum.
        let mut centroid_row = engine.centroid_row();
        for (k, &wsq) in joint.weights().squared().iter().enumerate() {
            let (start, end) = engine.segment_bounds(k);
            for x in &mut centroid_row[start..end] {
                *x *= wsq;
            }
        }
        let w_total = joint.weights().squared().iter().sum();
        Ok(Self { joint, centroid_row, w_total })
    }

    /// The underlying joint-distance computer.
    #[must_use]
    pub fn joint(&self) -> &JointDistance<'a> {
        &self.joint
    }

    /// The weights in force.
    #[must_use]
    pub fn weights(&self) -> &Weights {
        self.joint.weights()
    }

    /// The multi-vector corpus.
    #[must_use]
    pub fn set(&self) -> &'a MultiVectorSet {
        self.joint.set()
    }
}

impl SimilarityOracle for JointOracle<'_> {
    fn len(&self) -> usize {
        self.joint.set().len()
    }

    fn sim(&self, a: u32, b: u32) -> f32 {
        self.joint.pair_ip(a, b)
    }

    fn self_sim(&self, _a: u32) -> f32 {
        // Per-modality vectors are unit norm, so the virtual point's squared
        // norm is the sum of squared weights for every object.
        self.w_total
    }

    fn sim_to_centroid(&self, a: u32) -> f32 {
        // The centroid row carries omega^2, the stored row is raw, so this
        // is the Lemma-1 weighted sum against the centroid — one dot
        // product.
        must_vector::kernels::ip_prescaled_segments(
            self.joint.engine().row(a),
            &self.centroid_row,
        )
    }
}

/// Query scorer feeding graph search, with the Lemma-4 incremental
/// multi-vector computation toggleable (the Fig. 10(c) ablation).
pub struct MustQueryScorer<'a> {
    eval: QueryEvaluator<'a>,
    prune: bool,
}

impl<'a> MustQueryScorer<'a> {
    /// Prepares a scorer for `query` over `oracle`'s corpus and weights.
    ///
    /// # Errors
    /// Propagates slot-arity / dimension mismatches.
    pub fn new(
        oracle: &'a JointOracle<'_>,
        query: &MultiQuery,
        prune: bool,
    ) -> Result<Self, VectorError> {
        Self::from_joint(&oracle.joint, query, prune)
    }

    /// Prepares a scorer from a [`JointDistance`]: the query is scaled by
    /// `omega^2` and fused into one row here, once, so scoring a candidate
    /// costs a single dot product (exact) or an early-exiting segment walk
    /// (pruned).
    ///
    /// # Errors
    /// Propagates slot-arity / dimension mismatches.
    pub fn from_joint(
        joint: &'a JointDistance<'_>,
        query: &MultiQuery,
        prune: bool,
    ) -> Result<Self, VectorError> {
        Ok(Self { eval: joint.query(query)?, prune })
    }

    /// Prepares a scorer straight from the shared fused-row engine under
    /// explicit weights — the serving hot path, where the engine sits
    /// behind an `Arc` and each query may carry its own weight override.
    ///
    /// # Errors
    /// Propagates weight-arity, slot-arity, and dimension mismatches.
    pub fn from_rows(
        rows: &'a FusedRows,
        query: &MultiQuery,
        weights: &Weights,
        prune: bool,
    ) -> Result<Self, VectorError> {
        Ok(Self { eval: rows.query(query, weights)?, prune })
    }

    /// Number of per-modality kernel evaluations performed so far.
    pub fn kernel_evals(&self) -> u64 {
        self.eval.kernel_evals()
    }
}

impl QueryScorer for MustQueryScorer<'_> {
    fn score(&self, id: u32) -> f32 {
        self.eval.ip(id)
    }

    fn score_pruned(&self, id: u32, threshold: f32) -> Option<f32> {
        if !self.prune {
            return Some(self.eval.ip(id));
        }
        match self.eval.ip_pruned(id, threshold) {
            PartialIpVerdict::Exact(v) => Some(v),
            PartialIpVerdict::Pruned => None,
        }
    }
}

/// Query scorer over the SQ8 engine: the graph walk scans `u8` codes with
/// the widened (never-under-pruning) Lemma-4 bound and ranks survivors by
/// their decoded approximate similarity.  The serving layer pairs it with
/// an exact re-rank of the top pool on the retained f32 rows — the
/// DiskANN/SPANN recipe adapted to multi-vector joint similarity.
pub struct QuantizedQueryScorer<'a> {
    eval: QuantizedQueryEvaluator<'a>,
    prune: bool,
}

impl<'a> QuantizedQueryScorer<'a> {
    /// Prepares a scorer over a quantized engine under explicit weights —
    /// like [`MustQueryScorer::from_rows`], weights scale the query side
    /// only, so every query may carry its own override over one set of
    /// codes.
    ///
    /// # Errors
    /// Propagates weight-arity, slot-arity, and dimension mismatches.
    pub fn from_rows(
        rows: &'a QuantizedRows,
        query: &MultiQuery,
        weights: &Weights,
        prune: bool,
    ) -> Result<Self, VectorError> {
        Ok(Self { eval: rows.query(query, weights)?, prune })
    }

    /// Number of per-modality kernel evaluations performed so far.
    pub fn kernel_evals(&self) -> u64 {
        self.eval.kernel_evals()
    }
}

impl QueryScorer for QuantizedQueryScorer<'_> {
    fn score(&self, id: u32) -> f32 {
        self.eval.ip(id)
    }

    fn score_pruned(&self, id: u32, threshold: f32) -> Option<f32> {
        if !self.prune {
            return Some(self.eval.ip(id));
        }
        match self.eval.ip_pruned(id, threshold) {
            PartialIpVerdict::Exact(v) => Some(v),
            PartialIpVerdict::Pruned => None,
        }
    }
}

/// Scorer for one modality's vectors against a single query slot — the
/// baselines' (MR sub-queries, JE composition search) entry into the same
/// [`QueryScorer`] seam the joint search uses, replacing ad-hoc closures.
///
/// Single vectors have no prefix structure, so the default
/// [`QueryScorer::score_pruned`] (exact score, threshold discard) is
/// already optimal; only MUST's multi-vector scorer adds the Lemma-4
/// prefix bound on top.
pub struct SingleModalityScorer<'a> {
    set: must_vector::ModalityView<'a>,
    query: &'a [f32],
}

impl<'a> SingleModalityScorer<'a> {
    /// Binds a modality's corpus-side vectors to one query slot.
    ///
    /// # Errors
    /// Dimension mismatch between the slot and the modality.
    pub fn new(
        set: must_vector::ModalityView<'a>,
        query: &'a [f32],
    ) -> Result<Self, VectorError> {
        if query.len() != set.dim() {
            return Err(VectorError::DimensionMismatch { expected: set.dim(), got: query.len() });
        }
        Ok(Self { set, query })
    }
}

impl QueryScorer for SingleModalityScorer<'_> {
    fn score(&self, id: u32) -> f32 {
        self.set.ip_to(id, self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_vector::VectorSetBuilder;

    fn corpus() -> MultiVectorSet {
        let mut m0 = VectorSetBuilder::new(4, 4);
        let mut m1 = VectorSetBuilder::new(3, 4);
        for (a, b) in [
            ([1.0f32, 0.0, 0.0, 0.0], [1.0f32, 0.0, 0.0]),
            ([0.0, 1.0, 0.0, 0.0], [1.0, 0.2, 0.0]),
            ([0.0, 0.0, 1.0, 0.0], [0.0, 1.0, 0.0]),
            ([0.5, 0.5, 0.0, 0.7], [0.0, 0.0, 1.0]),
        ] {
            m0.push_normalized(&a).unwrap();
            m1.push_normalized(&b).unwrap();
        }
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    #[test]
    fn oracle_sim_matches_lemma1() {
        let set = corpus();
        let w = Weights::new(vec![0.8, 0.33]).unwrap();
        let oracle = JointOracle::new(&set, w.clone()).unwrap();
        let want = set.joint_ip(0, 1, &w).unwrap();
        assert!((oracle.sim(0, 1) - want).abs() < 1e-6);
        assert_eq!(oracle.len(), 4);
        let ss = oracle.self_sim(2);
        assert!((ss - (w.sq(0) + w.sq(1))).abs() < 1e-5);
    }

    #[test]
    fn centroid_similarity_prefers_central_objects() {
        let set = corpus();
        let oracle = JointOracle::new(&set, Weights::uniform(2)).unwrap();
        // sim_to_centroid must be finite and bounded by self_sim.
        for id in 0..4 {
            let s = oracle.sim_to_centroid(id);
            assert!(s.is_finite());
            assert!(s <= oracle.self_sim(id) + 1e-5);
        }
    }

    #[test]
    fn centroid_similarity_matches_per_modality_expansion() {
        let set = corpus();
        let w = Weights::new(vec![0.7, 0.4]).unwrap();
        let oracle = JointOracle::new(&set, w.clone()).unwrap();
        let centroids: Vec<Vec<f32>> = set.modalities().map(|m| m.centroid()).collect();
        for id in 0..4u32 {
            let want: f32 = centroids
                .iter()
                .enumerate()
                .map(|(k, c)| w.sq(k) * set.modality(k).ip_to(id, c))
                .sum();
            assert!((oracle.sim_to_centroid(id) - want).abs() < 1e-5);
        }
    }

    #[test]
    fn scorer_prune_toggle_changes_counters_not_results() {
        let set = corpus();
        let oracle = JointOracle::new(&set, Weights::uniform(2)).unwrap();
        let q = MultiQuery::full(vec![vec![0.0, 1.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]]);
        let pruning = MustQueryScorer::new(&oracle, &q, true).unwrap();
        let plain = MustQueryScorer::new(&oracle, &q, false).unwrap();
        for id in 0..4 {
            let a = pruning.score_pruned(id, f32::NEG_INFINITY);
            let b = plain.score_pruned(id, f32::NEG_INFINITY);
            match (a, b) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-5),
                other => panic!("unexpected {other:?}"),
            }
        }
        // With an impossible threshold the pruning scorer discards early.
        assert!(pruning.score_pruned(0, 10.0).is_none());
        assert!(plain.score_pruned(0, 10.0).is_some());
    }

    #[test]
    fn rows_backed_scorer_matches_oracle_scorer() {
        let set = corpus();
        let w = Weights::new(vec![0.9, 0.5]).unwrap();
        let oracle = JointOracle::new(&set, w.clone()).unwrap();
        let q = MultiQuery::full(vec![vec![0.0, 1.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]]);
        let via_oracle = MustQueryScorer::new(&oracle, &q, true).unwrap();
        let via_rows = MustQueryScorer::from_rows(set.fused(), &q, &w, true).unwrap();
        for id in 0..4 {
            assert_eq!(via_oracle.score(id), via_rows.score(id));
        }
    }

    #[test]
    fn rows_backed_scorer_accepts_per_query_weight_overrides() {
        // The serving seam: one engine, two scorers, two weight vectors.
        let set = corpus();
        let q = MultiQuery::full(vec![vec![0.0, 1.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]]);
        let wa = Weights::from_squared(vec![0.9, 0.1]).unwrap();
        let wb = Weights::from_squared(vec![0.1, 0.9]).unwrap();
        let sa = MustQueryScorer::from_rows(set.fused(), &q, &wa, true).unwrap();
        let sb = MustQueryScorer::from_rows(set.fused(), &q, &wb, true).unwrap();
        for id in 0..4u32 {
            let want_a = wa.sq(0) * set.modality(0).ip_to(id, &[0.0, 1.0, 0.0, 0.0])
                + wa.sq(1) * set.modality(1).ip_to(id, &[1.0, 0.0, 0.0]);
            let want_b = wb.sq(0) * set.modality(0).ip_to(id, &[0.0, 1.0, 0.0, 0.0])
                + wb.sq(1) * set.modality(1).ip_to(id, &[1.0, 0.0, 0.0]);
            assert!((sa.score(id) - want_a).abs() < 1e-5);
            assert!((sb.score(id) - want_b).abs() < 1e-5);
        }
        // Arity mismatches surface as errors, not panics.
        assert!(MustQueryScorer::from_rows(set.fused(), &q, &Weights::uniform(3), true).is_err());
    }
}
