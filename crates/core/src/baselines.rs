//! The Section III baselines: Multi-streamed Retrieval (MR) and Joint
//! Embedding (JE), plus their brute-force variants (`MR--`).
//!
//! MR builds one proximity graph per modality, runs one sub-query per
//! supplied modality, and merges candidate sets by intersection — the
//! paper's diagnosis is that the unknown modality importance makes this
//! merge both slow and inaccurate (Section VIII-D).  JE embeds the whole
//! query into one composition vector and searches the target-modality
//! index alone.

use std::time::Instant;

use must_graph::search::{beam_search, SearchScratch};
use must_graph::{Graph, GraphRecipe, SearchParams, SimilarityOracle};
use must_vector::{kernels, ModalityView, MultiQuery, MultiVectorSet, ObjectId};

use crate::MustError;

/// Similarity oracle over a single modality (unit-norm IP).
pub struct SingleModalityOracle<'a> {
    set: ModalityView<'a>,
    centroid: Vec<f32>,
}

impl<'a> SingleModalityOracle<'a> {
    /// Creates the oracle for one modality's vectors.
    #[must_use]
    pub fn new(set: ModalityView<'a>) -> Self {
        Self { centroid: set.centroid(), set }
    }
}

impl SimilarityOracle for SingleModalityOracle<'_> {
    fn len(&self) -> usize {
        self.set.len()
    }
    fn sim(&self, a: u32, b: u32) -> f32 {
        self.set.ip(a, b)
    }
    fn sim_to_centroid(&self, a: u32) -> f32 {
        self.set.ip_to(a, &self.centroid)
    }
}

/// Construction options shared by the baselines (kept equal to MUST's for
/// the paper's "same index and search strategy in all competitors" rule).
#[derive(Debug, Clone, Copy)]
pub struct BaselineOptions {
    /// Neighbour bound per graph.
    pub gamma: usize,
    /// Graph recipe (defaults to the fused pipeline, as in the paper).
    pub recipe: GraphRecipe,
    /// Build RNG seed.
    pub rng_seed: u64,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        Self { gamma: 30, recipe: GraphRecipe::Fused, rng_seed: 0xBA5E }
    }
}

fn build_single_modality_graph(
    set: ModalityView<'_>,
    opts: &BaselineOptions,
) -> Result<Graph, MustError> {
    let oracle = SingleModalityOracle::new(set);
    let builder = opts
        .recipe
        .pipeline(opts.gamma, opts.rng_seed)
        .ok_or_else(|| MustError::Config("baselines require a pipeline recipe".into()))?;
    Ok(builder.build(&oracle).0)
}

// ---------------------------------------------------------------------------
// Multi-streamed Retrieval (MR)
// ---------------------------------------------------------------------------

/// MR: one graph per modality, merged candidates.
pub struct MultiStreamedRetrieval<'a> {
    set: &'a MultiVectorSet,
    graphs: Vec<Graph>,
    /// Total build seconds (sum over the per-modality indexes).
    pub build_secs: f64,
}

/// One MR search outcome.
#[derive(Debug, Clone)]
pub struct MrOutcome {
    /// Merged top-`k` ids.
    pub results: Vec<ObjectId>,
    /// Size of the candidate intersection before truncation.
    pub intersection_size: usize,
    /// Wall-clock seconds (sub-queries + merge).
    pub secs: f64,
}

impl<'a> MultiStreamedRetrieval<'a> {
    /// Builds one index per modality.
    ///
    /// # Errors
    /// Propagates configuration errors.
    pub fn build(set: &'a MultiVectorSet, opts: BaselineOptions) -> Result<Self, MustError> {
        let t0 = Instant::now();
        let graphs = set
            .modalities()
            .map(|m| build_single_modality_graph(m, &opts))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { set, graphs, build_secs: t0.elapsed().as_secs_f64() })
    }

    /// Total index bytes across all per-modality graphs (Fig. 7).
    pub fn index_bytes(&self) -> usize {
        self.graphs.iter().map(Graph::bytes).sum()
    }

    /// Runs one sub-query per supplied modality with candidate-set size
    /// `l_candidates`, then merges (Section III / VIII-D).
    ///
    /// # Panics
    /// When a supplied query slot's dimensionality does not match its
    /// modality's vector set (queries must come from the same encoder
    /// configuration as the corpus).
    ///
    /// Merge rule: candidates present in *every* sub-query's set form the
    /// intersection, ranked by their unweighted similarity sum (modality
    /// importance is unknown to MR); if the intersection is smaller than
    /// `k`, remaining slots are filled by presence count, then similarity.
    pub fn search(
        &self,
        query: &MultiQuery,
        k: usize,
        l_candidates: usize,
        scratch: &mut SearchScratch,
    ) -> MrOutcome {
        let t0 = Instant::now();
        let mut per_modality: Vec<Vec<(ObjectId, f32)>> = Vec::new();
        for (mi, graph) in self.graphs.iter().enumerate() {
            let Some(slot) = query.slot(mi) else { continue };
            let set = self.set.modality(mi);
            let scorer = crate::oracle::SingleModalityScorer::new(set, slot)
                .expect("corpus and query dimensions agree per modality");
            let params = SearchParams::new(l_candidates, l_candidates.max(k));
            let res = beam_search(graph, &scorer, params, scratch, 0x111 + mi as u64);
            per_modality.push(res.results);
        }
        let (results, intersection_size) = merge_candidates(&per_modality, k);
        MrOutcome { results, intersection_size, secs: t0.elapsed().as_secs_f64() }
    }

    /// Brute-force variant (`MR--`): exact per-modality top-`l` + merge.
    #[must_use]
    pub fn brute_force_search(&self, query: &MultiQuery, k: usize, l_candidates: usize) -> MrOutcome {
        let t0 = Instant::now();
        let mut per_modality: Vec<Vec<(ObjectId, f32)>> = Vec::new();
        for mi in 0..self.set.num_modalities() {
            let Some(slot) = query.slot(mi) else { continue };
            per_modality.push(self.set.modality(mi).brute_force_top_k(slot, l_candidates));
        }
        let (results, intersection_size) = merge_candidates(&per_modality, k);
        MrOutcome { results, intersection_size, secs: t0.elapsed().as_secs_f64() }
    }
}

/// The MR merge: intersection first (ranked by similarity sum), then by
/// presence count.  Exposed for direct unit testing.
#[must_use]
pub fn merge_candidates(
    per_modality: &[Vec<(ObjectId, f32)>],
    k: usize,
) -> (Vec<ObjectId>, usize) {
    if per_modality.is_empty() {
        return (Vec::new(), 0);
    }
    use std::collections::HashMap;
    let mut tally: HashMap<ObjectId, (usize, f32)> = HashMap::new();
    for cands in per_modality {
        for &(id, sim) in cands {
            let e = tally.entry(id).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += sim;
        }
    }
    let channels = per_modality.len();
    let mut scored: Vec<(ObjectId, usize, f32)> =
        tally.into_iter().map(|(id, (cnt, sum))| (id, cnt, sum)).collect();
    let intersection_size = scored.iter().filter(|(_, cnt, _)| *cnt == channels).count();
    // Presence count first (intersection dominates), then similarity sum.
    scored.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(b.2.total_cmp(&a.2)));
    (scored.into_iter().take(k).map(|(id, _, _)| id).collect(), intersection_size)
}

// ---------------------------------------------------------------------------
// Joint Embedding (JE)
// ---------------------------------------------------------------------------

/// JE: a single graph over the target modality; queries must carry a
/// composition vector in slot 0 (Option 2 encoding).
pub struct JointEmbedding<'a> {
    set: ModalityView<'a>,
    graph: Graph,
    /// Build seconds.
    pub build_secs: f64,
}

impl<'a> JointEmbedding<'a> {
    /// Builds the target-modality index.
    ///
    /// # Errors
    /// Propagates configuration errors.
    pub fn build(objects: &'a MultiVectorSet, opts: BaselineOptions) -> Result<Self, MustError> {
        let t0 = Instant::now();
        let set = objects.modality(0);
        let graph = build_single_modality_graph(set, &opts)?;
        Ok(Self { set, graph, build_secs: t0.elapsed().as_secs_f64() })
    }

    /// Searches with the query's composition vector (slot 0).
    ///
    /// # Errors
    /// [`MustError::Config`] when slot 0 is missing.
    pub fn search(
        &self,
        query: &MultiQuery,
        k: usize,
        l: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<(ObjectId, f32)>, MustError> {
        let slot = query
            .slot(0)
            .ok_or_else(|| MustError::Config("JE requires the composed target slot".into()))?;
        if slot.len() != self.set.dim() {
            return Err(MustError::Config(format!(
                "composition vector dim {} does not match target modality dim {}",
                slot.len(),
                self.set.dim()
            )));
        }
        let scorer = crate::oracle::SingleModalityScorer::new(self.set, slot)
            .expect("dimensions checked above");
        let res = beam_search(&self.graph, &scorer, SearchParams::new(k, l), scratch, 0x7E);
        Ok(res.results)
    }
}

/// Cosine-style single-vector distance check used in tests and case
/// studies: the similarity JE believes it is ranking by.
#[must_use]
pub fn je_similarity(set: ModalityView<'_>, id: ObjectId, composition: &[f32]) -> f32 {
    kernels::ip(set.get(id), composition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_vector::{VectorSetBuilder, Weights};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corpus(n: usize) -> MultiVectorSet {
        let mut rng = StdRng::seed_from_u64(21);
        let mut m0 = VectorSetBuilder::new(8, n);
        let mut m1 = VectorSetBuilder::new(4, n);
        for _ in 0..n {
            let v0: Vec<f32> = (0..8).map(|_| rng.random::<f32>() - 0.5).collect();
            let v1: Vec<f32> = (0..4).map(|_| rng.random::<f32>() - 0.5).collect();
            m0.push_normalized(&v0).unwrap();
            m1.push_normalized(&v1).unwrap();
        }
        MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
    }

    #[test]
    fn merge_prefers_full_intersection() {
        let a = vec![(1, 0.9), (2, 0.8), (3, 0.7)];
        let b = vec![(4, 0.95), (2, 0.6), (5, 0.5)];
        let (merged, isect) = merge_candidates(&[a, b], 2);
        assert_eq!(isect, 1);
        assert_eq!(merged[0], 2, "the only intersected id must rank first");
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_of_disjoint_sets_falls_back_to_similarity() {
        let a = vec![(1, 0.9)];
        let b = vec![(2, 0.95)];
        let (merged, isect) = merge_candidates(&[a, b], 2);
        assert_eq!(isect, 0);
        assert_eq!(merged, vec![2, 1]);
    }

    #[test]
    fn merge_handles_empty_input() {
        let (merged, isect) = merge_candidates(&[], 5);
        assert!(merged.is_empty());
        assert_eq!(isect, 0);
    }

    #[test]
    fn mr_finds_objects_matching_both_modalities() {
        let set = corpus(300);
        let mr = MultiStreamedRetrieval::build(&set, BaselineOptions { gamma: 10, ..Default::default() })
            .unwrap();
        assert!(mr.index_bytes() > 0);
        let mut visited = SearchScratch::default();
        // Query = object 37's own vectors: it is in both top candidate
        // sets, so the intersection must surface it.
        let q = MultiQuery::full(vec![
            set.modality(0).get(37).to_vec(),
            set.modality(1).get(37).to_vec(),
        ]);
        let out = mr.search(&q, 5, 50, &mut visited);
        assert!(out.results.contains(&37), "results: {:?}", out.results);
        assert!(out.intersection_size >= 1);
    }

    #[test]
    fn mr_brute_force_agrees_with_graph_version_at_high_l() {
        let set = corpus(200);
        let mr = MultiStreamedRetrieval::build(&set, BaselineOptions { gamma: 12, ..Default::default() })
            .unwrap();
        let q = MultiQuery::full(vec![
            set.modality(0).get(11).to_vec(),
            set.modality(1).get(11).to_vec(),
        ]);
        let exact = mr.brute_force_search(&q, 3, 80);
        let mut visited = SearchScratch::default();
        let approx = mr.search(&q, 3, 80, &mut visited);
        assert_eq!(exact.results[0], approx.results[0]);
    }

    #[test]
    fn je_searches_target_modality_only() {
        let set = corpus(250);
        let je =
            JointEmbedding::build(&set, BaselineOptions { gamma: 10, ..Default::default() }).unwrap();
        let mut visited = SearchScratch::default();
        let q = MultiQuery::full(vec![set.modality(0).get(9).to_vec(), set.modality(1).get(200).to_vec()]);
        let res = je.search(&q, 1, 40, &mut visited).unwrap();
        // JE ignores modality 1 entirely: the top hit follows slot 0.
        assert_eq!(res[0].0, 9);
    }

    #[test]
    fn je_rejects_missing_or_misshapen_slot0() {
        let set = corpus(50);
        let je = JointEmbedding::build(&set, BaselineOptions { gamma: 8, ..Default::default() }).unwrap();
        let mut visited = SearchScratch::default();
        let no_slot = MultiQuery::partial(vec![None, Some(set.modality(1).get(0).to_vec())]);
        assert!(je.search(&no_slot, 1, 10, &mut visited).is_err());
        let wrong_dim = MultiQuery::full(vec![vec![1.0, 0.0], set.modality(1).get(0).to_vec()]);
        assert!(je.search(&wrong_dim, 1, 10, &mut visited).is_err());
    }

    #[test]
    fn mr_uses_uniform_importance_not_learned_weights() {
        // Build a set where a weighted metric would rank differently from
        // the unweighted sum; MR must follow the unweighted sum.
        let set = corpus(100);
        let _unused = Weights::new(vec![0.9, 0.1]).unwrap();
        let a = vec![(1u32, 0.9f32), (2, 0.2)];
        let b = vec![(1, 0.1), (2, 0.85)];
        let (merged, _) = merge_candidates(&[a, b], 2);
        // Sum(1) = 1.0, Sum(2) = 1.05 -> 2 first under uniform importance.
        assert_eq!(merged[0], 2);
        let _ = set;
    }
}
