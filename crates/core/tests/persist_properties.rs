//! Property tests for bundle-v2 persistence: arbitrary small corpora ×
//! every persistable graph backend round-trip to bit-identical search
//! results, and bundles written by the legacy v1 JSON path keep loading.

use must_core::framework::{Must, MustBuildOptions};
use must_core::{persist, MustError};
use must_graph::GraphRecipe;
use must_vector::{MultiQuery, MultiVectorSet, VectorSetBuilder, Weights};
use proptest::prelude::*;

/// Deterministic pseudo-random corpus from a seed: `n` objects, two
/// modalities of dimensionality `d0`/`d1`.
fn corpus(n: usize, d0: usize, d1: usize, seed: u64) -> MultiVectorSet {
    let mut rng = proptest::TestRng::new(seed);
    let mut m0 = VectorSetBuilder::new(d0, n);
    let mut m1 = VectorSetBuilder::new(d1, n);
    for _ in 0..n {
        // Shift off zero so every vector is normalisable.
        let v0: Vec<f32> = (0..d0).map(|_| rng.unit_f64() as f32 + 0.05).collect();
        let v1: Vec<f32> = (0..d1).map(|_| rng.unit_f64() as f32 + 0.05).collect();
        m0.push_normalized(&v0).unwrap();
        m1.push_normalized(&v1).unwrap();
    }
    MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
}

fn tmp(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("must-persist-prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}-{case}.bundle", std::process::id()))
}

fn self_query(set: &MultiVectorSet, id: u32) -> MultiQuery {
    MultiQuery::full(vec![
        set.modality(0).get(id).to_vec(),
        set.modality(1).get(id).to_vec(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn v2_round_trips_every_backend_to_identical_results(
        n in 24usize..72,
        d0 in 3usize..8,
        d1 in 2usize..5,
        recipe_idx in 0usize..7,
        seed in 1u64..1_000_000,
    ) {
        let recipe = GraphRecipe::all()[recipe_idx];
        let set = corpus(n, d0, d1, seed);
        let must = Must::build(
            set,
            Weights::new(vec![0.8, 0.5]).unwrap(),
            MustBuildOptions { gamma: 8, recipe, ..Default::default() },
        )
        .unwrap();
        let path = tmp("v2", seed ^ (n as u64) << 32 ^ recipe_idx as u64);
        persist::save(&must, &path).unwrap();
        let loaded = persist::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        prop_assert_eq!(loaded.objects().len(), must.objects().len());
        prop_assert_eq!(loaded.weights(), must.weights());
        for probe in 0..4u32 {
            let id = probe * (n as u32 / 4);
            let q = self_query(must.objects(), id);
            let a = must.search(&q, 3, 24).unwrap();
            let b = loaded.search(&q, 3, 24).unwrap();
            prop_assert_eq!(a, b, "recipe {} query {}", recipe.label(), id);
        }
    }

    #[test]
    fn v1_json_bundles_written_by_old_path_still_load(
        n in 24usize..60,
        seed in 1u64..1_000_000,
    ) {
        let set = corpus(n, 5, 3, seed);
        let must = Must::build(
            set,
            Weights::uniform(2),
            MustBuildOptions { gamma: 8, ..Default::default() },
        )
        .unwrap();
        let path = tmp("v1", seed ^ (n as u64) << 32);
        persist::save_json(&must, &path).unwrap();
        let loaded = persist::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for probe in [0u32, (n / 2) as u32, (n - 1) as u32] {
            let q = self_query(must.objects(), probe);
            let a = must.search(&q, 3, 24).unwrap();
            let b = loaded.search(&q, 3, 24).unwrap();
            prop_assert_eq!(a, b, "query {}", probe);
        }
    }
}

/// HNSW is the one backend v1 can never express; the property above covers
/// its v2 round-trip, this pins the v1 rejection (and its error class).
#[test]
fn v1_save_rejects_hnsw_with_config_error() {
    let set = corpus(40, 4, 3, 99);
    let must = Must::build(
        set,
        Weights::uniform(2),
        MustBuildOptions { gamma: 8, recipe: GraphRecipe::Hnsw, ..Default::default() },
    )
    .unwrap();
    let path = tmp("v1-hnsw", 99);
    assert!(matches!(persist::save_json(&must, &path), Err(MustError::Config(_))));
    assert!(!path.exists(), "rejected saves must not leave files behind");
}
