//! Property tests for bundle-v2 persistence: arbitrary small corpora ×
//! every persistable graph backend round-trip to bit-identical search
//! results, and bundles written by the legacy v1 JSON path keep loading.

use must_core::framework::{Must, MustBuildOptions};
use must_core::{persist, MustError};
use must_graph::GraphRecipe;
use must_vector::{MultiQuery, MultiVectorSet, VectorSetBuilder, Weights};
use proptest::prelude::*;

/// Deterministic pseudo-random corpus from a seed: `n` objects, two
/// modalities of dimensionality `d0`/`d1`.
fn corpus(n: usize, d0: usize, d1: usize, seed: u64) -> MultiVectorSet {
    let mut rng = proptest::TestRng::new(seed);
    let mut m0 = VectorSetBuilder::new(d0, n);
    let mut m1 = VectorSetBuilder::new(d1, n);
    for _ in 0..n {
        // Shift off zero so every vector is normalisable.
        let v0: Vec<f32> = (0..d0).map(|_| rng.unit_f64() as f32 + 0.05).collect();
        let v1: Vec<f32> = (0..d1).map(|_| rng.unit_f64() as f32 + 0.05).collect();
        m0.push_normalized(&v0).unwrap();
        m1.push_normalized(&v1).unwrap();
    }
    MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
}

fn tmp(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("must-persist-prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}-{case}.bundle", std::process::id()))
}

fn self_query(set: &MultiVectorSet, id: u32) -> MultiQuery {
    MultiQuery::full(vec![
        set.modality(0).get(id).to_vec(),
        set.modality(1).get(id).to_vec(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn v2_round_trips_every_backend_to_identical_results(
        n in 24usize..72,
        d0 in 3usize..8,
        d1 in 2usize..5,
        recipe_idx in 0usize..7,
        seed in 1u64..1_000_000,
    ) {
        let recipe = GraphRecipe::all()[recipe_idx];
        let set = corpus(n, d0, d1, seed);
        let must = Must::build(
            set,
            Weights::new(vec![0.8, 0.5]).unwrap(),
            MustBuildOptions { gamma: 8, recipe, ..Default::default() },
        )
        .unwrap();
        let path = tmp("v2", seed ^ (n as u64) << 32 ^ recipe_idx as u64);
        persist::save(&must, &path).unwrap();
        let loaded = persist::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        prop_assert_eq!(loaded.objects().len(), must.objects().len());
        prop_assert_eq!(loaded.weights(), must.weights());
        for probe in 0..4u32 {
            let id = probe * (n as u32 / 4);
            let q = self_query(must.objects(), id);
            let a = must.search(&q, 3, 24).unwrap();
            let b = loaded.search(&q, 3, 24).unwrap();
            prop_assert_eq!(a, b, "recipe {} query {}", recipe.label(), id);
        }
    }

    #[test]
    fn v1_json_bundles_written_by_old_path_still_load(
        n in 24usize..60,
        seed in 1u64..1_000_000,
    ) {
        let set = corpus(n, 5, 3, seed);
        let must = Must::build(
            set,
            Weights::uniform(2),
            MustBuildOptions { gamma: 8, ..Default::default() },
        )
        .unwrap();
        let path = tmp("v1", seed ^ (n as u64) << 32);
        persist::save_json(&must, &path).unwrap();
        let loaded = persist::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for probe in [0u32, (n / 2) as u32, (n - 1) as u32] {
            let q = self_query(must.objects(), probe);
            let a = must.search(&q, 3, 24).unwrap();
            let b = loaded.search(&q, 3, 24).unwrap();
            prop_assert_eq!(a, b, "query {}", probe);
        }
    }
}

/// Byte offset of the v7 section table for an `m`-modality bundle:
/// magic (8) + version (4) + prune (1) + m (4) + dims (4·m) + lane (4)
/// + n (8) + n_sections (4).
fn v7_table_at(m: usize) -> usize {
    8 + 4 + 1 + 4 + 4 * m + 4 + 8 + 4
}

/// Corrupt v7 bundles must surface `MustError` — truncated offset
/// tables, overlapping / out-of-bounds / misaligned sections, and lying
/// lengths all come back as `Config` or `Io`, never a panic (the loader
/// borrows rows straight out of the read buffer, so a lying table is a
/// memory-safety question, not just a parsing one).
#[test]
fn v7_corrupt_bundles_error_instead_of_panicking() {
    let set = corpus(30, 4, 3, 7);
    let mut must = Must::build(
        set,
        Weights::uniform(2),
        MustBuildOptions { gamma: 6, ..Default::default() },
    )
    .unwrap();
    must.quantize();
    let path = tmp("v7-good", 7);
    persist::save_quantized(&must, &path).unwrap();
    let good = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    let table_at = v7_table_at(2);
    let check = |tag: &str, bytes: Vec<u8>| {
        let p = tmp(tag, 7);
        std::fs::write(&p, &bytes).unwrap();
        let err = match persist::load(&p) {
            Err(e) => e,
            Ok(_) => panic!("{tag}: corrupt bundle loaded successfully"),
        };
        std::fs::remove_file(&p).unwrap();
        assert!(
            matches!(err, MustError::Config(_) | MustError::Io(_)),
            "{tag}: unexpected error class {err:?}"
        );
    };

    // Offset table cut mid-entry.
    check("v7-trunc-table", good[..table_at + 24].to_vec());
    // Sections extend past the end of the buffer (truncated body).
    check("v7-trunc-body", good[..good.len() - 64].to_vec());
    // Misaligned section offset (the zero-copy borrow requires 32B).
    let mut bad = good.clone();
    bad[table_at] = bad[table_at].wrapping_add(1);
    check("v7-misaligned", bad);
    // Section 1 pulled back over section 0: overlap.
    let mut bad = good.clone();
    bad[table_at + 16..table_at + 24].copy_from_slice(&0u64.to_le_bytes());
    check("v7-overlap", bad);
    // Aligned but far out of bounds: the index section flies off the end.
    let mut bad = good.clone();
    let oob = ((good.len() as u64).div_ceil(32) * 32 + 64).to_le_bytes();
    bad[table_at + 5 * 16..table_at + 5 * 16 + 8].copy_from_slice(&oob);
    check("v7-oob", bad);
    // Lying length: the weights section claims 4 bytes instead of m·4.
    let mut bad = good.clone();
    bad[table_at + 2 * 16 + 8..table_at + 2 * 16 + 16].copy_from_slice(&4u64.to_le_bytes());
    check("v7-bad-len", bad);
    // Version stamped v7 on a v5 body: the table parse must fail loudly.
    let v5 = tmp("v5-body", 7);
    persist::save(&must, &v5).unwrap();
    let mut bytes = std::fs::read(&v5).unwrap();
    std::fs::remove_file(&v5).unwrap();
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    check("v7-v5-body", bytes);
}

/// The persisted matrix stays loadable *and mutable*: every writable
/// single-shard format (v1 JSON, v5 binary, v7 quantized) plus the
/// sharded container round-trips, and bundles whose backend supports
/// dynamic insertion accept `insert_object` after loading — including
/// the v7 case, where the first insert must promote the zero-copy
/// (buffer-borrowed) codes to owned storage (copy-on-write).
#[test]
fn format_matrix_round_trips_and_loaded_bundles_stay_mutable() {
    let set = corpus(40, 4, 3, 11);
    let w = Weights::uniform(2);
    let new_row = vec![set.modality(0).get(0).to_vec(), set.modality(1).get(0).to_vec()];

    // v1 JSON (flat graph; insertion is rejected by policy, not format).
    let flat = Must::build(
        set.clone(),
        w.clone(),
        MustBuildOptions { gamma: 6, ..Default::default() },
    )
    .unwrap();
    let p = tmp("matrix-v1", 11);
    persist::save_json(&flat, &p).unwrap();
    let mut loaded = persist::load(&p).unwrap();
    std::fs::remove_file(&p).unwrap();
    assert_eq!(loaded.objects().len(), 40);
    assert!(matches!(loaded.insert_object(&new_row), Err(MustError::Config(_))));

    // v5 binary with HNSW: loads and keeps growing.
    let hnsw_opts =
        MustBuildOptions { gamma: 6, recipe: GraphRecipe::Hnsw, ..Default::default() };
    let hnsw = Must::build(set.clone(), w.clone(), hnsw_opts).unwrap();
    let p = tmp("matrix-v5", 11);
    persist::save(&hnsw, &p).unwrap();
    let mut loaded = persist::load(&p).unwrap();
    std::fs::remove_file(&p).unwrap();
    assert_eq!(loaded.insert_object(&new_row).unwrap(), 40);
    assert_eq!(loaded.objects().len(), 41);

    // v7 quantized with HNSW: zero-copy load, then CoW promotion.
    let mut quantized = Must::build(set.clone(), w.clone(), hnsw_opts).unwrap();
    quantized.quantize();
    let p = tmp("matrix-v7", 11);
    persist::save_quantized(&quantized, &p).unwrap();
    let mut loaded = persist::load(&p).unwrap();
    std::fs::remove_file(&p).unwrap();
    let q = loaded.quant().expect("v7 restores the SQ8 engine");
    assert!(q.is_shared(), "v7 codes load as a borrow of the read buffer");
    assert_eq!(loaded.insert_object(&new_row).unwrap(), 40);
    let q = loaded.quant().unwrap();
    assert!(!q.is_shared(), "first insert promotes shared codes to owned");
    assert_eq!(q.len(), 41, "codes stay in lockstep with the corpus");
    let out = loaded.search(&self_query(loaded.objects(), 0), 3, 24).unwrap();
    assert_eq!(out.len(), 3);

    // Sharded container (v4/v6): round-trips through its own loader.
    let sharded = must_core::shard::ShardedMust::build(
        set,
        w,
        MustBuildOptions { gamma: 6, ..Default::default() },
        must_core::shard::ShardSpec::new(2),
    )
    .unwrap();
    let p = tmp("matrix-sharded", 11);
    persist::save_sharded(&sharded, &p).unwrap();
    let loaded = persist::load_sharded(&p).unwrap();
    std::fs::remove_file(&p).unwrap();
    assert_eq!(loaded.num_shards(), sharded.num_shards());
    assert_eq!(loaded.len(), sharded.len());
}

/// HNSW is the one backend v1 can never express; the property above covers
/// its v2 round-trip, this pins the v1 rejection (and its error class).
#[test]
fn v1_save_rejects_hnsw_with_config_error() {
    let set = corpus(40, 4, 3, 99);
    let must = Must::build(
        set,
        Weights::uniform(2),
        MustBuildOptions { gamma: 8, recipe: GraphRecipe::Hnsw, ..Default::default() },
    )
    .unwrap();
    let path = tmp("v1-hnsw", 99);
    assert!(matches!(persist::save_json(&must, &path), Err(MustError::Config(_))));
    assert!(!path.exists(), "rejected saves must not leave files behind");
}
