//! Property tests for the query-time-weighting invariant — the contract
//! that makes the unscaled-storage refactor safe: `search_weighted(q, w)`
//! on a server frozen with *default* weights returns exactly what a
//! server frozen with `w` over the same index returns.  Because storage
//! is unscaled and `w` enters through the query row alone, the two paths
//! run the same float operations — so ids must match exactly and
//! similarities to 1e-5 — across random corpora, random weight vectors,
//! and **all seven graph backends**.

use must_core::framework::{Must, MustBuildOptions};
use must_core::server::MustServer;
use must_graph::GraphRecipe;
use must_vector::{MultiQuery, MultiVectorSet, VectorSetBuilder, Weights};
use proptest::prelude::*;

/// Deterministic pseudo-random corpus from a seed: `n` objects, two
/// modalities of dimensionality `d0`/`d1`.
fn corpus(n: usize, d0: usize, d1: usize, seed: u64) -> MultiVectorSet {
    let mut rng = proptest::TestRng::new(seed);
    let mut m0 = VectorSetBuilder::new(d0, n);
    let mut m1 = VectorSetBuilder::new(d1, n);
    for _ in 0..n {
        // Shift off zero so every vector is normalisable.
        let v0: Vec<f32> = (0..d0).map(|_| rng.unit_f64() as f32 + 0.05).collect();
        let v1: Vec<f32> = (0..d1).map(|_| rng.unit_f64() as f32 + 0.05).collect();
        m0.push_normalized(&v0).unwrap();
        m1.push_normalized(&v1).unwrap();
    }
    MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
}

fn self_query(set: &MultiVectorSet, id: u32) -> MultiQuery {
    MultiQuery::full(vec![
        set.modality(0).get(id).to_vec(),
        set.modality(1).get(id).to_vec(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    #[test]
    fn search_weighted_equals_freshly_frozen_server_on_every_backend(
        n in 30usize..72,
        d0 in 3usize..8,
        d1 in 2usize..5,
        recipe_idx in 0usize..7,
        seed in 1u64..1_000_000,
        w0 in 0.05f32..1.5,
        w1 in 0.05f32..1.5,
    ) {
        let recipe = GraphRecipe::all()[recipe_idx];
        let opts = MustBuildOptions { gamma: 8, recipe, ..Default::default() };
        let set = corpus(n, d0, d1, seed);
        let default_w = Weights::uniform(2);
        let override_w = Weights::new(vec![w0, w1]).unwrap();

        // One index, two freezes: the production server keeps the default
        // weights, the oracle server is frozen with the override as its
        // default — what "retrain/adjust omega then redeploy" used to
        // require.
        let parts = Must::build(set, default_w.clone(), opts).unwrap().into_parts();
        let production = MustServer::freeze(
            Must::from_parts(parts.objects.clone(), default_w.clone(), parts.index.clone(), opts)
                .unwrap(),
        );
        let oracle = MustServer::freeze(
            Must::from_parts(parts.objects, override_w.clone(), parts.index, opts).unwrap(),
        );

        for probe in 0..4u32 {
            let id = probe * (n as u32 / 4);
            let q = self_query(production.objects(), id);
            let got = production.search_weighted(&q, &override_w, 5, 24).unwrap();
            let want = oracle.search(&q, 5, 24).unwrap();
            let got_ids: Vec<u32> = got.results.iter().map(|r| r.0).collect();
            let want_ids: Vec<u32> = want.results.iter().map(|r| r.0).collect();
            prop_assert_eq!(
                got_ids, want_ids,
                "recipe {} query {}: id order must match the re-frozen oracle",
                recipe.label(), id
            );
            for ((_, gs), (_, ws)) in got.results.iter().zip(&want.results) {
                prop_assert!((gs - ws).abs() < 1e-5, "recipe {} sims diverged", recipe.label());
            }
            prop_assert_eq!(got.stats, want.stats, "recipe {}", recipe.label());

            // And the default path is the weighted path with the frozen
            // configuration — bitwise.
            let a = production.search(&q, 5, 24).unwrap();
            let b = production.search_weighted(&q, &default_w, 5, 24).unwrap();
            prop_assert_eq!(a.results, b.results);
            prop_assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn weighted_blends_interpolate_monotonically_between_endpoints(
        n in 30usize..60,
        seed in 1u64..1_000_000,
    ) {
        // Weights::blend is linear in omega^2, and Lemma 1 is linear in
        // omega^2 too — so a blended override's similarity for any fixed
        // (query, object) pair is the same blend of the endpoint
        // similarities.  This is what makes preference sliders behave.
        let set = corpus(n, 5, 3, seed);
        let a = Weights::from_squared(vec![0.9, 0.1]).unwrap();
        let b = Weights::from_squared(vec![0.2, 0.8]).unwrap();
        let must = Must::build(set, Weights::uniform(2), MustBuildOptions { gamma: 8, ..Default::default() })
            .unwrap();
        let server = MustServer::freeze(must);
        let q = self_query(server.objects(), 7);
        // A self-query's anchor is top-1 under any weights (every
        // modality matches perfectly), so the top-1 similarity is the
        // anchor's joint similarity — directly comparable across blends.
        let (id_a, sim_a) = server.search_weighted(&q, &a, 1, n).unwrap().results[0];
        let (id_b, sim_b) = server.search_weighted(&q, &b, 1, n).unwrap().results[0];
        prop_assert_eq!(id_a, 7);
        prop_assert_eq!(id_b, 7);
        for t in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
            let blended = Weights::blend(&a, &b, t).unwrap();
            let (id, sim) = server.search_weighted(&q, &blended, 1, n).unwrap().results[0];
            prop_assert_eq!(id, 7, "self-query anchor survives blending at t={}", t);
            let want = (1.0 - t) * sim_a + t * sim_b;
            prop_assert!(
                (sim - want).abs() < 1e-5,
                "blend at t={} must interpolate the similarity: {} vs {}",
                t, sim, want
            );
        }
    }
}
