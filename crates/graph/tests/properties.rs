//! Property-based tests for the proximity-graph substrate: pool
//! invariants, search invariants (Lemma 3), selection invariants
//! (Lemma 2), and pipeline guarantees on random geometric instances.

use must_graph::connect::reachable_from_seed;
use must_graph::nndescent::{exact_knn_sample, insert_bounded, Neighbor};
use must_graph::pipeline::PipelineBuilder;
use must_graph::pool::Pool;
use must_graph::search::{beam_search, SearchParams, SearchScratch};
use must_graph::select::{select_neighbors, SelectionStrategy};
use must_graph::{FnScorer, SimilarityOracle};
use proptest::prelude::*;

/// Random 2-D points, similarity = negative squared distance.
#[derive(Debug, Clone)]
struct PointOracle {
    pts: Vec<(f32, f32)>,
}

impl SimilarityOracle for PointOracle {
    fn len(&self) -> usize {
        self.pts.len()
    }
    fn sim(&self, a: u32, b: u32) -> f32 {
        let (ax, ay) = self.pts[a as usize];
        let (bx, by) = self.pts[b as usize];
        -((ax - bx).powi(2) + (ay - by).powi(2))
    }
    fn self_sim(&self, _a: u32) -> f32 {
        0.0
    }
    fn sim_to_centroid(&self, a: u32) -> f32 {
        let n = self.pts.len() as f32;
        let (cx, cy) = self
            .pts
            .iter()
            .fold((0.0, 0.0), |(sx, sy), (x, y)| (sx + x / n, sy + y / n));
        let (ax, ay) = self.pts[a as usize];
        -((ax - cx).powi(2) + (ay - cy).powi(2))
    }
}

fn points(n: usize) -> impl Strategy<Value = PointOracle> {
    proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), n)
        .prop_map(|pts| PointOracle { pts })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pool_is_always_sorted_and_bounded(
        ops in proptest::collection::vec((0u32..64, -1.0f32..1.0), 1..80),
        cap in 1usize..12,
    ) {
        let mut pool = Pool::new(cap);
        let mut inserted = std::collections::HashSet::new();
        for (id, sim) in ops {
            if inserted.insert(id) {
                pool.insert(id, sim);
            }
        }
        prop_assert!(pool.len() <= cap);
        let entries = pool.entries();
        for w in entries.windows(2) {
            prop_assert!(w[0].sim >= w[1].sim);
        }
        // Threshold is the worst entry iff full.
        if pool.is_full() {
            prop_assert_eq!(pool.threshold(), entries[entries.len() - 1].sim);
        } else {
            prop_assert_eq!(pool.threshold(), f32::NEG_INFINITY);
        }
    }

    #[test]
    fn insert_bounded_maintains_invariants(
        cands in proptest::collection::vec((0u32..48, -1.0f32..1.0), 1..64),
        cap in 1usize..10,
    ) {
        let mut list = Vec::new();
        for (id, sim) in cands {
            insert_bounded(&mut list, Neighbor { id, sim }, cap);
        }
        prop_assert!(list.len() <= cap);
        for w in list.windows(2) {
            prop_assert!(w[0].sim >= w[1].sim);
        }
        let mut ids: Vec<u32> = list.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), list.len(), "no duplicate neighbours");
    }

    #[test]
    fn pipeline_graph_is_connected_and_degree_bounded(
        oracle in points(60),
        gamma in 3usize..10,
    ) {
        let (graph, stats) = PipelineBuilder {
            gamma,
            threads: 1,
            rng_seed: 7,
            ..PipelineBuilder::default()
        }
        .build(&oracle);
        prop_assert_eq!(graph.len(), 60);
        prop_assert_eq!(reachable_from_seed(&graph), 60);
        prop_assert!(graph.max_degree() <= gamma + stats.connectivity.bridges_added);
    }

    #[test]
    fn beam_search_with_huge_pool_is_exact(oracle in points(50), target in 0u32..50) {
        let (graph, _) = PipelineBuilder { gamma: 6, threads: 1, ..Default::default() }
            .build(&oracle);
        let scorer = FnScorer(|id| oracle.sim(id, target));
        let res = beam_search(
            &graph,
            &scorer,
            SearchParams::seed_only(1, 50),
            &mut SearchScratch::default(),
            3,
        );
        // A pool covering the whole graph must find the exact nearest
        // (the target itself at similarity 0).
        prop_assert_eq!(res.results[0].0, target);
    }

    #[test]
    fn mrng_keeps_nearest_and_respects_occlusion(oracle in points(40), o in 0u32..40) {
        let cands = exact_knn_sample(&oracle, &[o], 15, 1).pop().unwrap();
        prop_assume!(!cands.is_empty());
        let sel = select_neighbors(&oracle, o, &cands, 15, SelectionStrategy::Mrng);
        prop_assert_eq!(sel[0], cands[0].id);
        // Lemma 2 equivalent: every kept v is closer to o than to any
        // earlier-kept u.
        for (i, &v) in sel.iter().enumerate() {
            let sim_ov = oracle.sim(o, v);
            for &u in &sel[..i] {
                prop_assert!(sim_ov > oracle.sim(u, v) - 1e-6);
            }
        }
    }

    #[test]
    fn search_stats_are_coherent(oracle in points(64), target in 0u32..64) {
        let (graph, _) = PipelineBuilder { gamma: 5, threads: 1, ..Default::default() }
            .build(&oracle);
        let scorer = FnScorer(|id| oracle.sim(id, target));
        let res = beam_search(
            &graph,
            &scorer,
            SearchParams::new(3, 12),
            &mut SearchScratch::default(),
            9,
        );
        prop_assert!(res.results.len() <= 3);
        prop_assert!(res.stats.hops >= 1);
        prop_assert!(res.stats.evaluated >= res.results.len() as u64);
        prop_assert!(res.stats.pruned <= res.stats.evaluated);
    }
}
