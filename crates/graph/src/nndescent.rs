//! Component ① — initialisation: random neighbours refined by NNDescent
//! (Lines 2–8 of Algorithm 1).
//!
//! This is the synchronous variant: every iteration reads a snapshot of the
//! current graph (forward + reverse + two-hop neighbours) and rebuilds each
//! vertex's list in parallel.  The paper reports that three iterations reach
//! >= 99 % graph quality (Tab. XI); our evaluation reproduces that.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::par::{par_map, par_for};
use crate::SimilarityOracle;

/// A scored neighbour candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Vertex id.
    pub id: u32,
    /// Similarity to the owning vertex.
    pub sim: f32,
}

/// A bounded neighbour list kept sorted by descending similarity.
pub type NeighborList = Vec<Neighbor>;

/// Inserts `cand` into the sorted `list`, keeping at most `cap` entries.
/// Returns `true` if the candidate was kept.  Duplicates (same id) are
/// rejected.
pub fn insert_bounded(list: &mut NeighborList, cand: Neighbor, cap: usize) -> bool {
    if list.len() == cap && cand.sim <= list[cap - 1].sim {
        return false;
    }
    if list.iter().any(|n| n.id == cand.id) {
        return false;
    }
    let pos = list.partition_point(|n| n.sim >= cand.sim);
    list.insert(pos, cand);
    if list.len() > cap {
        list.pop();
    }
    true
}

/// Random initial neighbour lists (Line 3 of Algorithm 1): `gamma` distinct
/// random neighbours per vertex, scored.
pub fn random_init<O: SimilarityOracle>(
    oracle: &O,
    gamma: usize,
    seed: u64,
    threads: usize,
) -> Vec<NeighborList> {
    let n = oracle.len();
    par_map(n, threads, |o| {
        let mut rng = StdRng::seed_from_u64(seed ^ (o as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut list = NeighborList::with_capacity(gamma);
        let mut tries = 0;
        while list.len() < gamma.min(n.saturating_sub(1)) && tries < gamma * 8 {
            tries += 1;
            let id = rng.random_range(0..n as u32);
            if id as usize == o {
                continue;
            }
            let sim = oracle.sim(o as u32, id);
            insert_bounded(&mut list, Neighbor { id, sim }, gamma);
        }
        list
    })
}

/// One synchronous NNDescent iteration: for every vertex, examine forward,
/// reverse, and two-hop neighbours from the snapshot and keep the best
/// `gamma`.  Returns the updated lists and the number of list changes
/// (useful for convergence checks).
pub fn nndescent_iteration<O: SimilarityOracle>(
    oracle: &O,
    lists: &[NeighborList],
    gamma: usize,
    threads: usize,
) -> (Vec<NeighborList>, usize) {
    let n = lists.len();
    // Reverse edges, capped at gamma per vertex to bound hub cost.
    let reverse = {
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (o, list) in lists.iter().enumerate() {
            for nb in list {
                let r = &mut rev[nb.id as usize];
                if r.len() < gamma {
                    r.push(o as u32);
                }
            }
        }
        rev
    };

    let updated = par_map(n, threads, |o| {
        let me = o as u32;
        let mut list = lists[o].clone();
        let mut seen: Vec<u32> = list.iter().map(|nb| nb.id).collect();
        seen.push(me);
        seen.sort_unstable();
        let mut changed = false;
        let mut try_add = |id: u32, list: &mut NeighborList, seen: &mut Vec<u32>| {
            if id == me {
                return;
            }
            if let Err(pos) = seen.binary_search(&id) {
                seen.insert(pos, id);
                let sim = oracle.sim(me, id);
                if insert_bounded(list, Neighbor { id, sim }, gamma) {
                    changed = true;
                }
            }
        };
        // Reverse neighbours join the pool directly.
        for &r in &reverse[o] {
            try_add(r, &mut list, &mut seen);
        }
        // Two-hop: neighbours of (forward + reverse) neighbours.
        let hops: Vec<u32> = lists[o]
            .iter()
            .map(|nb| nb.id)
            .chain(reverse[o].iter().copied())
            .collect();
        for v in hops {
            for nb in &lists[v as usize] {
                try_add(nb.id, &mut list, &mut seen);
            }
        }
        (list, changed)
    });

    let changes = updated.iter().filter(|(_, c)| *c).count();
    (updated.into_iter().map(|(l, _)| l).collect(), changes)
}

/// Full component ①: random init + `iterations` NNDescent passes.
pub fn build_init_graph<O: SimilarityOracle>(
    oracle: &O,
    gamma: usize,
    iterations: usize,
    seed: u64,
    threads: usize,
) -> Vec<NeighborList> {
    let mut lists = random_init(oracle, gamma, seed, threads);
    for _ in 0..iterations {
        let (next, changes) = nndescent_iteration(oracle, &lists, gamma, threads);
        lists = next;
        if changes == 0 {
            break;
        }
    }
    lists
}

/// Exact top-`gamma` neighbour lists by brute force (ground truth for the
/// graph-quality metric of Tab. XI); parallel over vertices.
pub fn exact_knn_sample<O: SimilarityOracle>(
    oracle: &O,
    vertices: &[u32],
    gamma: usize,
    threads: usize,
) -> Vec<NeighborList> {
    let out: std::sync::Mutex<Vec<(usize, NeighborList)>> =
        std::sync::Mutex::new(Vec::with_capacity(vertices.len()));
    par_for(vertices.len(), threads, |i| {
        let o = vertices[i];
        let mut list = NeighborList::with_capacity(gamma);
        for id in 0..oracle.len() as u32 {
            if id == o {
                continue;
            }
            let sim = oracle.sim(o, id);
            insert_bounded(&mut list, Neighbor { id, sim }, gamma);
        }
        out.lock().expect("no poisoned workers").push((i, list));
    });
    let mut v = out.into_inner().expect("no poisoned workers");
    v.sort_unstable_by_key(|(i, _)| *i);
    v.into_iter().map(|(_, l)| l).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{GridOracle, LineOracle};

    #[test]
    fn insert_bounded_keeps_sorted_unique() {
        let mut l = NeighborList::new();
        assert!(insert_bounded(&mut l, Neighbor { id: 1, sim: 0.5 }, 3));
        assert!(insert_bounded(&mut l, Neighbor { id: 2, sim: 0.9 }, 3));
        assert!(!insert_bounded(&mut l, Neighbor { id: 2, sim: 0.9 }, 3), "duplicate id");
        assert!(insert_bounded(&mut l, Neighbor { id: 3, sim: 0.1 }, 3));
        assert!(!insert_bounded(&mut l, Neighbor { id: 4, sim: 0.05 }, 3), "worse than tail");
        assert!(insert_bounded(&mut l, Neighbor { id: 5, sim: 0.7 }, 3));
        let ids: Vec<u32> = l.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 5, 1]);
    }

    #[test]
    fn random_init_produces_distinct_scored_neighbors() {
        let oracle = LineOracle(64);
        let lists = random_init(&oracle, 8, 42, 2);
        assert_eq!(lists.len(), 64);
        for (o, l) in lists.iter().enumerate() {
            assert!(!l.is_empty());
            let mut ids: Vec<u32> = l.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), l.len(), "distinct neighbours");
            for nb in l {
                assert_ne!(nb.id as usize, o, "no self loop");
                assert!((nb.sim - oracle.sim(o as u32, nb.id)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn nndescent_converges_to_true_neighbors_on_grid() {
        let oracle = GridOracle::new(12); // 144 points
        let gamma = 6;
        let lists = build_init_graph(&oracle, gamma, 4, 7, 2);
        // Ground truth and measured overlap.
        let ids: Vec<u32> = (0..oracle.len() as u32).collect();
        let truth = exact_knn_sample(&oracle, &ids, gamma, 2);
        let mut overlap = 0usize;
        let mut total = 0usize;
        for (got, want) in lists.iter().zip(&truth) {
            // Tie-tolerant: a neighbour counts if it is at least as similar
            // as the gamma-th true neighbour (the grid has many exact ties).
            let kth = want.last().map_or(f32::NEG_INFINITY, |n| n.sim);
            overlap += got.iter().filter(|n| n.sim >= kth - 1e-6).count().min(want.len());
            total += want.len();
        }
        let quality = overlap as f64 / total as f64;
        assert!(quality > 0.9, "NNDescent quality too low: {quality}");
    }

    #[test]
    fn nndescent_iteration_reports_convergence() {
        let oracle = LineOracle(40);
        let mut lists = random_init(&oracle, 4, 3, 1);
        let mut last_changes = usize::MAX;
        for _ in 0..6 {
            let (next, changes) = nndescent_iteration(&oracle, &lists, 4, 1);
            lists = next;
            if changes == 0 {
                break;
            }
            last_changes = changes;
        }
        let (_, final_changes) = nndescent_iteration(&oracle, &lists, 4, 1);
        assert!(final_changes <= last_changes, "must trend towards convergence");
    }

    #[test]
    fn exact_knn_sample_matches_manual_ground_truth() {
        let oracle = LineOracle(10);
        let truth = exact_knn_sample(&oracle, &[0, 5], 2, 1);
        let ids0: Vec<u32> = truth[0].iter().map(|n| n.id).collect();
        assert_eq!(ids0, vec![1, 2]);
        let ids5: Vec<u32> = truth[1].iter().map(|n| n.id).collect();
        assert!(ids5 == vec![4, 6] || ids5 == vec![6, 4]);
    }
}
