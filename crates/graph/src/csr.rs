//! Compressed sparse-row form of a built graph: two flat arrays instead of
//! `n` heap-allocated neighbour lists.  Roughly halves index memory and
//! removes per-vertex pointer chasing on the search hot path — the form a
//! deployment would serve from.

use serde::{Deserialize, Serialize};

use crate::search::{beam_search_csr, SearchParams, SearchResult, SearchScratch};
use crate::{AnnIndex, Graph, QueryScorer};

/// A frozen graph in CSR layout plus the search seed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `edges` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated neighbour lists.
    edges: Vec<u32>,
    seed: u32,
}

impl CsrGraph {
    /// Freezes an adjacency-list graph.
    #[must_use]
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(graph.num_edges());
        offsets.push(0);
        for v in 0..n as u32 {
            edges.extend_from_slice(graph.neighbors(v));
            offsets.push(edges.len() as u32);
        }
        Self { offsets, edges, seed: graph.seed() }
    }

    /// Reassembles a CSR graph from its raw arrays (the binary-bundle load
    /// path), validating structural consistency.
    ///
    /// # Errors
    /// A human-readable description of the first inconsistency found.
    pub fn from_parts(offsets: Vec<u32>, edges: Vec<u32>, seed: u32) -> Result<Self, String> {
        if offsets.len() < 2 {
            return Err("offset table must cover at least one vertex".into());
        }
        if offsets[0] != 0 || *offsets.last().expect("non-empty") as usize != edges.len() {
            return Err("offset table does not span the edge array".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offset table is not monotone".into());
        }
        let n = offsets.len() - 1;
        if edges.iter().any(|&e| e as usize >= n) {
            return Err("edge target out of range".into());
        }
        if seed as usize >= n {
            return Err("seed vertex out of range".into());
        }
        Ok(Self { offsets, edges, seed })
    }

    /// The raw CSR offset array (`len() + 1` entries).
    #[inline]
    #[must_use]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw concatenated edge array.
    #[inline]
    #[must_use]
    pub fn edges(&self) -> &[u32] {
        &self.edges
    }

    /// Number of vertices.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has no vertices.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Out-neighbours of `v`.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// The fixed search seed.
    #[inline]
    #[must_use]
    pub fn seed(&self) -> u32 {
        self.seed
    }

    /// Total directed edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Thaws back into adjacency-list form.
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let neighbors =
            (0..self.len() as u32).map(|v| self.neighbors(v).to_vec()).collect();
        Graph::new(neighbors, self.seed)
    }
}

impl AnnIndex for CsrGraph {
    fn search(&self, scorer: &dyn QueryScorer, params: SearchParams, rng_seed: u64) -> SearchResult {
        beam_search_csr(self, scorer, params, &mut SearchScratch::default(), rng_seed)
    }

    fn len(&self) -> usize {
        CsrGraph::len(self)
    }

    fn bytes(&self) -> usize {
        (self.offsets.len() + self.edges.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineBuilder;
    use crate::testutil::GridOracle;
    use crate::FnScorer;
    use crate::SimilarityOracle;

    fn built() -> (GridOracle, Graph) {
        let oracle = GridOracle::new(10);
        let (g, _) =
            PipelineBuilder { gamma: 6, threads: 1, ..Default::default() }.build(&oracle);
        (oracle, g)
    }

    #[test]
    fn round_trip_preserves_structure() {
        let (_, g) = built();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.len(), g.len());
        assert_eq!(csr.num_edges(), g.num_edges());
        assert_eq!(csr.seed(), g.seed());
        for v in 0..g.len() as u32 {
            assert_eq!(csr.neighbors(v), g.neighbors(v));
        }
        assert_eq!(csr.to_graph(), g);
    }

    #[test]
    fn csr_search_matches_adjacency_search() {
        let (oracle, g) = built();
        let csr = CsrGraph::from_graph(&g);
        for target in [0u32, 17, 42, 99] {
            let scorer = FnScorer(|id| oracle.sim(id, target));
            let a = AnnIndex::search(&g, &scorer, SearchParams::seed_only(3, 20), 5);
            let b = AnnIndex::search(&csr, &scorer, SearchParams::seed_only(3, 20), 5);
            assert_eq!(a.results, b.results, "target {target}");
        }
    }

    #[test]
    fn csr_is_smaller_than_adjacency() {
        let (_, g) = built();
        let csr = CsrGraph::from_graph(&g);
        assert!(AnnIndex::bytes(&csr) <= AnnIndex::bytes(&g));
    }

    #[test]
    fn from_parts_round_trips_and_rejects_corruption() {
        let (_, g) = built();
        let csr = CsrGraph::from_graph(&g);
        let back = CsrGraph::from_parts(
            csr.offsets().to_vec(),
            csr.edges().to_vec(),
            csr.seed(),
        )
        .unwrap();
        assert_eq!(back, csr);
        assert!(CsrGraph::from_parts(vec![0], vec![], 0).is_err(), "no vertices");
        assert!(CsrGraph::from_parts(vec![0, 2], vec![1], 0).is_err(), "span mismatch");
        assert!(CsrGraph::from_parts(vec![0, 1], vec![7], 0).is_err(), "target range");
        assert!(CsrGraph::from_parts(vec![0, 0], vec![], 5).is_err(), "seed range");
    }

    #[test]
    fn serde_round_trip() {
        let (_, g) = built();
        let csr = CsrGraph::from_graph(&g);
        let json = serde_json::to_string(&csr).unwrap();
        let back: CsrGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(csr, back);
    }
}
