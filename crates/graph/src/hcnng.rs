//! HCNNG (Muñoz et al., Pattern Recognition 2019): hierarchical-clustering
//! graphs built from minimum spanning trees over random divisive partitions
//! — one of the pluggable backends of the paper's Fig. 10 ablation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::connect::ensure_connectivity;
use crate::par::{build_threads, par_map};
use crate::seed::{choose_seed, SeedStrategy};
use crate::{Graph, SimilarityOracle};

/// HCNNG construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct HcnngParams {
    /// Number of random clusterings whose MST edges are unioned.
    pub rounds: usize,
    /// Maximum leaf size of the divisive partition.
    pub leaf_size: usize,
    /// Per-vertex degree cap inside one MST (the original uses 3).
    pub mst_degree: usize,
    /// RNG seed.
    pub rng_seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for HcnngParams {
    fn default() -> Self {
        Self { rounds: 8, leaf_size: 128, mst_degree: 3, rng_seed: 0x4C66, threads: build_threads() }
    }
}

/// Recursively partitions `items` with two random pivots until leaves are
/// at most `leaf_size`, collecting the leaves.
fn partition<O: SimilarityOracle>(
    oracle: &O,
    items: Vec<u32>,
    leaf_size: usize,
    rng: &mut StdRng,
    leaves: &mut Vec<Vec<u32>>,
) {
    if items.len() <= leaf_size {
        leaves.push(items);
        return;
    }
    let a = items[rng.random_range(0..items.len())];
    let mut b = a;
    while b == a {
        b = items[rng.random_range(0..items.len())];
    }
    let mut left = Vec::with_capacity(items.len() / 2 + 1);
    let mut right = Vec::with_capacity(items.len() / 2 + 1);
    for id in items {
        if oracle.sim(id, a) >= oracle.sim(id, b) {
            left.push(id);
        } else {
            right.push(id);
        }
    }
    // Degenerate split (coincident pivots): fall back to halving.
    if left.is_empty() || right.is_empty() {
        let mut all = left;
        all.append(&mut right);
        let mid = all.len() / 2;
        right = all.split_off(mid);
        left = all;
    }
    partition(oracle, left, leaf_size, rng, leaves);
    partition(oracle, right, leaf_size, rng, leaves);
}

/// Prim's MST over one leaf (similarities maximised = distances minimised),
/// respecting the per-vertex degree cap; returns the tree edges.
fn leaf_mst<O: SimilarityOracle>(
    oracle: &O,
    leaf: &[u32],
    degree_cap: usize,
) -> Vec<(u32, u32)> {
    let s = leaf.len();
    if s < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; s];
    let mut degree = vec![0usize; s];
    // best[i] = (similarity to tree, tree vertex index)
    let mut best: Vec<(f32, usize)> = vec![(f32::NEG_INFINITY, 0); s];
    let mut edges = Vec::with_capacity(s - 1);
    in_tree[0] = true;
    for i in 1..s {
        best[i] = (oracle.sim(leaf[i], leaf[0]), 0);
    }
    for _ in 1..s {
        // Pick the best attachable vertex (its tree endpoint must have
        // spare degree; recompute when saturated).
        let mut pick = None;
        for i in 0..s {
            if in_tree[i] {
                continue;
            }
            if degree[best[i].1] >= degree_cap {
                // Recompute against tree vertices with spare degree.
                let mut nb = (f32::NEG_INFINITY, usize::MAX);
                for j in 0..s {
                    if in_tree[j] && degree[j] < degree_cap {
                        let sim = oracle.sim(leaf[i], leaf[j]);
                        if sim > nb.0 {
                            nb = (sim, j);
                        }
                    }
                }
                if nb.1 == usize::MAX {
                    // Every tree vertex saturated: relax the cap for this
                    // edge (keeps the tree spanning).
                    nb = (oracle.sim(leaf[i], leaf[best[i].1]), best[i].1);
                }
                best[i] = nb;
            }
            match pick {
                None => pick = Some(i),
                Some(p) if best[i].0 > best[p].0 => pick = Some(i),
                _ => {}
            }
        }
        let i = pick.expect("non-tree vertex exists");
        let j = best[i].1;
        edges.push((leaf[i], leaf[j]));
        degree[i] += 1;
        degree[j] += 1;
        in_tree[i] = true;
        // Refresh best similarities with the new tree vertex.
        for x in 0..s {
            if !in_tree[x] {
                let sim = oracle.sim(leaf[x], leaf[i]);
                if sim > best[x].0 && degree[i] < degree_cap {
                    best[x] = (sim, i);
                }
            }
        }
    }
    edges
}

/// Builds the HCNNG graph: union of per-round MST edges + medoid seed +
/// connectivity patching.
pub fn build_hcnng<O: SimilarityOracle>(oracle: &O, params: HcnngParams) -> Graph {
    let n = oracle.len();
    assert!(n > 0, "cannot index an empty object set");
    // Rounds are independent: run them in parallel.
    let round_edges: Vec<Vec<(u32, u32)>> = par_map(params.rounds, params.threads, |r| {
        let mut rng = StdRng::seed_from_u64(params.rng_seed ^ (r as u64).wrapping_mul(0x9E37));
        let mut leaves = Vec::new();
        partition(oracle, (0..n as u32).collect(), params.leaf_size.max(2), &mut rng, &mut leaves);
        let mut edges = Vec::with_capacity(n);
        for leaf in &leaves {
            edges.extend(leaf_mst(oracle, leaf, params.mst_degree));
        }
        edges
    });
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
    for edges in round_edges {
        for (a, b) in edges {
            if !neighbors[a as usize].contains(&b) {
                neighbors[a as usize].push(b);
            }
            if !neighbors[b as usize].contains(&a) {
                neighbors[b as usize].push(a);
            }
        }
    }
    let seed = choose_seed(oracle, SeedStrategy::Medoid, params.threads);
    let mut graph = Graph::new(neighbors, seed);
    ensure_connectivity(&mut graph, oracle, 64, params.rng_seed ^ 0xCC);
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connect::reachable_from_seed;
    use crate::search::{beam_search, SearchParams, SearchScratch};
    use crate::testutil::GridOracle;
    use crate::FnScorer;

    #[test]
    fn mst_spans_the_leaf() {
        let oracle = GridOracle::new(6);
        let leaf: Vec<u32> = (0..36).collect();
        let edges = leaf_mst(&oracle, &leaf, 3);
        assert_eq!(edges.len(), 35, "a spanning tree has |V| - 1 edges");
        // Union-find check that it is in fact spanning.
        let mut parent: Vec<usize> = (0..36).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for (a, b) in &edges {
            let (ra, rb) = (find(&mut parent, *a as usize), find(&mut parent, *b as usize));
            assert_ne!(ra, rb, "MST must not contain cycles");
            parent[ra] = rb;
        }
    }

    #[test]
    fn mst_respects_degree_cap_mostly() {
        let oracle = GridOracle::new(8);
        let leaf: Vec<u32> = (0..64).collect();
        let edges = leaf_mst(&oracle, &leaf, 3);
        let mut degree = vec![0usize; 64];
        for (a, b) in &edges {
            degree[*a as usize] += 1;
            degree[*b as usize] += 1;
        }
        let over = degree.iter().filter(|&&d| d > 3).count();
        assert!(over <= 2, "degree cap violated {over} times");
    }

    #[test]
    fn hcnng_is_connected_and_navigable() {
        let oracle = GridOracle::new(12);
        let graph = build_hcnng(
            &oracle,
            HcnngParams { rounds: 6, leaf_size: 32, mst_degree: 3, rng_seed: 5, threads: 2 },
        );
        assert_eq!(reachable_from_seed(&graph), oracle.len());
        let mut hits = 0;
        let mut visited = SearchScratch::default();
        let total = 24;
        for t in 0..total {
            let target = (t * 6) as u32 % oracle.len() as u32;
            let scorer = FnScorer(|id| oracle.sim(id, target));
            let res = beam_search(&graph, &scorer, SearchParams::seed_only(1, 16), &mut visited, 1);
            if res.results[0].0 == target {
                hits += 1;
            }
        }
        assert!(hits * 10 >= total * 9, "recall {hits}/{total}");
    }

    #[test]
    fn partition_leaves_cover_all_points() {
        let oracle = GridOracle::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        let mut leaves = Vec::new();
        partition(&oracle, (0..100).collect(), 16, &mut rng, &mut leaves);
        let mut all: Vec<u32> = leaves.concat();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u32>>());
        assert!(leaves.iter().all(|l| l.len() <= 16));
    }
}
