//! Graph-quality diagnostics (the metric of Tab. XI and the degree /
//! connectivity audits used across the experiments).
//!
//! Graph quality is "the mean ratio of a vertex's neighbours that belong to
//! its true top-`gamma` nearest neighbours under joint similarity"
//! (Appendix H of the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::connect::reachable_from_seed;
use crate::nndescent::exact_knn_sample;
use crate::par::build_threads;
use crate::{Graph, SimilarityOracle};

/// Computes graph quality over a random sample of `sample` vertices.
///
/// For each sampled vertex the exact top-`gamma` neighbours (brute force)
/// are compared against the graph's stored neighbours; quality is the mean
/// overlap fraction.
pub fn graph_quality<O: SimilarityOracle>(
    oracle: &O,
    graph: &Graph,
    gamma: usize,
    sample: usize,
    rng_seed: u64,
) -> f64 {
    let n = graph.len();
    assert_eq!(n, oracle.len(), "graph and oracle must agree");
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut vertices: Vec<u32> = if sample >= n {
        (0..n as u32).collect()
    } else {
        let mut v: Vec<u32> = (0..sample).map(|_| rng.random_range(0..n as u32)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    vertices.truncate(sample.max(1));
    let truth = exact_knn_sample(oracle, &vertices, gamma, build_threads());
    let mut total = 0.0;
    for (v, t) in vertices.iter().zip(&truth) {
        let true_ids: Vec<u32> = t.iter().map(|nb| nb.id).collect();
        let stored = graph.neighbors(*v);
        let denom = gamma.min(true_ids.len()).max(1);
        let hits = stored.iter().take(gamma).filter(|id| true_ids.contains(id)).count();
        total += hits as f64 / denom as f64;
    }
    total / vertices.len() as f64
}

/// Structural audit of a built index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphAudit {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Fraction of vertices reachable from the seed (1.0 after
    /// component ⑤).
    pub reachability: f64,
}

/// Audits the structure of `graph`.
#[must_use]
pub fn audit(graph: &Graph) -> GraphAudit {
    GraphAudit {
        vertices: graph.len(),
        edges: graph.num_edges(),
        mean_degree: graph.mean_degree(),
        max_degree: graph.max_degree(),
        reachability: reachable_from_seed(graph) as f64 / graph.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineBuilder;
    use crate::testutil::GridOracle;

    #[test]
    fn quality_of_exact_graph_is_one() {
        let oracle = GridOracle::new(7);
        // Build adjacency from exact knn.
        let ids: Vec<u32> = (0..oracle.len() as u32).collect();
        let truth = exact_knn_sample(&oracle, &ids, 5, 1);
        let neighbors = truth
            .into_iter()
            .map(|l| l.into_iter().map(|n| n.id).collect())
            .collect();
        let graph = Graph::new(neighbors, 0);
        let q = graph_quality(&oracle, &graph, 5, oracle.len(), 1);
        assert!(q > 0.999, "exact graph quality must be 1, got {q}");
    }

    #[test]
    fn quality_of_random_graph_is_low() {
        let oracle = GridOracle::new(10);
        let n = oracle.len();
        let neighbors = (0..n)
            .map(|i| (0..5).map(|j| ((i + 17 * (j + 1)) % n) as u32).collect())
            .collect();
        let graph = Graph::new(neighbors, 0);
        let q = graph_quality(&oracle, &graph, 5, 50, 2);
        assert!(q < 0.5, "random graph quality should be low, got {q}");
    }

    #[test]
    fn pipeline_graph_scores_high_quality() {
        let oracle = GridOracle::new(10);
        let (graph, _) = PipelineBuilder { gamma: 6, threads: 2, ..PipelineBuilder::default() }
            .build(&oracle);
        // MRNG prunes some true top-gamma neighbours by design, so quality
        // is below 1 but far above random.
        let q = graph_quality(&oracle, &graph, 6, 60, 3);
        assert!(q > 0.5, "pipeline quality too low: {q}");
        let a = audit(&graph);
        assert_eq!(a.vertices, oracle.len());
        assert!((a.reachability - 1.0).abs() < 1e-9);
        assert!(a.mean_degree > 1.0);
    }
}
