//! The component-based index-construction pipeline (Algorithm 1,
//! Section VII-A): ① initialisation → ② candidate acquisition →
//! ③ neighbour selection → ④ seed preprocessing → ⑤ connectivity.
//!
//! Existing proximity graphs decompose into these components; the paper's
//! fused index re-assembles the best of them (NNDescent initialisation,
//! neighbour expansion, MRNG selection, centroid seed, BFS connectivity).
//! [`GraphRecipe`] captures the paper's assemblies, including the ones used
//! in the Fig. 10 backend ablation.

use std::time::Instant;

use crate::connect::{ensure_connectivity, ConnectivityStats};
use crate::nndescent::{build_init_graph, insert_bounded, random_init, Neighbor, NeighborList};
use crate::par::{build_threads, par_map};
use crate::seed::{choose_seed, SeedStrategy};
use crate::select::{select_neighbors, SelectionStrategy};
use crate::{Graph, SimilarityOracle};

/// Component ② — how candidate neighbours are acquired from the initial
/// graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CandidateStrategy {
    /// Use the initial neighbours as-is.
    InitOnly,
    /// Neighbours plus neighbours-of-neighbours (Lines 9–10 of
    /// Algorithm 1; also NSSG's two-hop expansion).
    Expand,
    /// Search-based: greedy-search the initial graph for each vertex and
    /// use every scored vertex as a candidate (NSG / Vamana style).
    Search {
        /// Pool size of the per-vertex candidate search.
        l: usize,
    },
}

/// Builder for the five-component pipeline.
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    /// Maximum number of neighbours per vertex (the paper's `gamma`,
    /// default 30 — Appendix H).
    pub gamma: usize,
    /// NNDescent iterations in component ① (the paper's `epsilon`,
    /// default 3 — Tab. XI).
    pub init_iterations: usize,
    /// Whether component ① refines random neighbours with NNDescent
    /// (`false` = plain random initialisation, Vamana style).
    pub nndescent_init: bool,
    /// Component ② strategy.
    pub candidates: CandidateStrategy,
    /// Component ③ strategy.
    pub selection: SelectionStrategy,
    /// Component ④ strategy.
    pub seed: SeedStrategy,
    /// Whether component ⑤ runs.
    pub connectivity: bool,
    /// Number of refinement rounds over components ②–③ (Vamana uses 2).
    pub rounds: usize,
    /// RNG seed for the whole build.
    pub rng_seed: u64,
    /// Worker threads (defaults to available parallelism).
    pub threads: usize,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self {
            gamma: 30,
            init_iterations: 3,
            nndescent_init: true,
            candidates: CandidateStrategy::Expand,
            selection: SelectionStrategy::Mrng,
            seed: SeedStrategy::Medoid,
            connectivity: true,
            rounds: 1,
            rng_seed: 0x5EED,
            threads: build_threads(),
        }
    }
}

/// Instrumentation of one pipeline run (feeds Figs. 7, 10(a), 14).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Wall-clock seconds spent in component ①.
    pub init_secs: f64,
    /// Wall-clock seconds spent in components ②+③ (all rounds).
    pub refine_secs: f64,
    /// Wall-clock seconds spent in components ④+⑤.
    pub finalize_secs: f64,
    /// Connectivity outcome.
    pub connectivity: ConnectivityStats,
}

impl PipelineStats {
    /// Total build seconds.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.init_secs + self.refine_secs + self.finalize_secs
    }
}

impl PipelineBuilder {
    /// Runs the pipeline over `oracle`, producing the graph and stats.
    pub fn build<O: SimilarityOracle>(&self, oracle: &O) -> (Graph, PipelineStats) {
        assert!(oracle.len() > 0, "cannot index an empty object set");
        assert!(self.gamma > 0, "gamma must be positive");
        let mut stats = PipelineStats::default();
        let threads = self.threads.max(1);

        // Component 1: initialisation.
        let t0 = Instant::now();
        let mut lists: Vec<NeighborList> = if self.nndescent_init {
            build_init_graph(oracle, self.gamma, self.init_iterations, self.rng_seed, threads)
        } else {
            random_init(oracle, self.gamma, self.rng_seed, threads)
        };
        stats.init_secs = t0.elapsed().as_secs_f64();

        // Components 2 + 3, possibly over several rounds.
        let t1 = Instant::now();
        for round in 0..self.rounds.max(1) {
            lists = self.refine_round(oracle, &lists, round, threads);
        }
        stats.refine_secs = t1.elapsed().as_secs_f64();

        // Components 4 + 5.
        let t2 = Instant::now();
        let seed = choose_seed(oracle, self.seed, threads);
        let neighbors: Vec<Vec<u32>> =
            lists.into_iter().map(|l| l.into_iter().map(|n| n.id).collect()).collect();
        let mut graph = Graph::new(neighbors, seed);
        if self.connectivity {
            stats.connectivity = ensure_connectivity(&mut graph, oracle, 64, self.rng_seed ^ 0xC0);
        }
        stats.finalize_secs = t2.elapsed().as_secs_f64();
        (graph, stats)
    }

    /// One round of components ② + ③ over a snapshot of the lists.
    fn refine_round<O: SimilarityOracle>(
        &self,
        oracle: &O,
        lists: &[NeighborList],
        round: usize,
        threads: usize,
    ) -> Vec<NeighborList> {
        let n = lists.len();
        // Component 2: candidate acquisition.
        let candidate_lists: Vec<Vec<Neighbor>> = match self.candidates {
            CandidateStrategy::InitOnly => lists.to_vec(),
            CandidateStrategy::Expand => par_map(n, threads, |o| {
                let me = o as u32;
                // Candidate cap: keep the pool bounded like the paper's
                // implementation (expansion would otherwise be gamma^2).
                let cap = (self.gamma * 4).max(8);
                let mut pool: NeighborList = lists[o].clone();
                let mut seen: Vec<u32> = pool.iter().map(|nb| nb.id).collect();
                seen.push(me);
                seen.sort_unstable();
                for nb in &lists[o] {
                    for hop in &lists[nb.id as usize] {
                        if hop.id == me {
                            continue;
                        }
                        if let Err(pos) = seen.binary_search(&hop.id) {
                            seen.insert(pos, hop.id);
                            let sim = oracle.sim(me, hop.id);
                            insert_bounded(&mut pool, Neighbor { id: hop.id, sim }, cap);
                        }
                    }
                }
                pool
            }),
            CandidateStrategy::Search { l } => {
                // Build a temporary graph over the current lists to search.
                let neighbors: Vec<Vec<u32>> =
                    lists.iter().map(|l| l.iter().map(|n| n.id).collect()).collect();
                let seed = choose_seed(oracle, SeedStrategy::Medoid, threads);
                let tmp = Graph::new(neighbors, seed);
                par_map(n, threads, |o| search_candidates(&tmp, oracle, o as u32, l))
            }
        };

        // Component 3: neighbour selection (parallel over vertices).
        let selected: Vec<Vec<u32>> = par_map(n, threads, |o| {
            select_neighbors(oracle, o as u32, &candidate_lists[o], self.gamma, self.selection)
        });

        // Reverse-edge insertion: selections are directed; adding pruned
        // reverse edges (as NSG/Vamana do) keeps the graph navigable in both
        // directions.  Serial pass (cheap relative to selection).
        let mut out: Vec<NeighborList> = selected
            .iter()
            .enumerate()
            .map(|(o, sel)| {
                sel.iter()
                    .map(|&id| Neighbor { id, sim: candidate_sim(&candidate_lists[o], id) })
                    .collect()
            })
            .collect();
        let _ = round;
        for o in 0..n {
            for &id in &selected[o] {
                let sim = candidate_sim(&candidate_lists[o], id);
                insert_bounded(&mut out[id as usize], Neighbor { id: o as u32, sim }, self.gamma);
            }
        }
        out
    }
}

fn candidate_sim(cands: &[Neighbor], id: u32) -> f32 {
    cands
        .iter()
        .find(|n| n.id == id)
        .map(|n| n.sim)
        .expect("selected id comes from the candidate list")
}

/// Greedy-search `graph` for the vertex most similar to `o`, recording every
/// scored vertex — NSG's candidate acquisition.
fn search_candidates<O: SimilarityOracle>(
    graph: &Graph,
    oracle: &O,
    o: u32,
    l: usize,
) -> Vec<Neighbor> {
    use crate::pool::Pool;
    let mut pool = Pool::new(l);
    let mut scored: Vec<Neighbor> = Vec::with_capacity(l * 4);
    let mut seen = vec![graph.seed()];
    let s = oracle.sim(o, graph.seed());
    pool.insert(graph.seed(), s);
    if graph.seed() != o {
        scored.push(Neighbor { id: graph.seed(), sim: s });
    }
    while let Some(idx) = pool.best_unvisited() {
        let v = pool.visit(idx);
        for &u in graph.neighbors(v) {
            if seen.binary_search(&u).is_ok() {
                continue;
            }
            let pos = seen.binary_search(&u).unwrap_err();
            seen.insert(pos, u);
            let sim = oracle.sim(o, u);
            if u != o {
                scored.push(Neighbor { id: u, sim });
            }
            pool.insert(u, sim);
        }
    }
    scored.sort_unstable_by(|a, b| b.sim.total_cmp(&a.sim));
    scored.truncate(l * 2);
    scored
}

/// Named graph assemblies: the paper's fused index plus the six existing
/// proximity graphs it compares against (Fig. 10, Section VIII-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphRecipe {
    /// The paper's re-assembled pipeline ("Ours"): NNDescent init +
    /// neighbour expansion + MRNG selection + centroid seed + BFS
    /// connectivity.
    Fused,
    /// KGraph: NNDescent only, top-gamma neighbours.
    KGraph,
    /// NSG: NNDescent init + search-based candidates + MRNG + medoid seed
    /// + connectivity.
    Nsg,
    /// NSSG: NNDescent init + two-hop expansion + angle-based selection.
    Nssg,
    /// Vamana (DiskANN): random init + two search-based refinement rounds
    /// with alpha-relaxed pruning.
    Vamana,
    /// HCNNG: hierarchical-clustering MSTs (see [`crate::hcnng`]).
    Hcnng,
    /// HNSW: layered small-world graph (see [`crate::hnsw`]).
    Hnsw,
}

impl GraphRecipe {
    /// Display label (as in Fig. 10).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Fused => "Ours",
            Self::KGraph => "KGraph",
            Self::Nsg => "NSG",
            Self::Nssg => "NSSG",
            Self::Vamana => "Vamana",
            Self::Hcnng => "HCNNG",
            Self::Hnsw => "HNSW",
        }
    }

    /// All recipes in the Fig. 10 comparison order.
    #[must_use]
    pub fn all() -> [GraphRecipe; 7] {
        [Self::Fused, Self::Nssg, Self::Nsg, Self::KGraph, Self::Hnsw, Self::Vamana, Self::Hcnng]
    }

    /// The pipeline configuration for pipeline-expressible recipes;
    /// `None` for HCNNG and HNSW, which have dedicated builders.
    #[must_use]
    pub fn pipeline(self, gamma: usize, rng_seed: u64) -> Option<PipelineBuilder> {
        let base = PipelineBuilder { gamma, rng_seed, ..PipelineBuilder::default() };
        match self {
            Self::Fused => Some(base),
            Self::KGraph => Some(PipelineBuilder {
                candidates: CandidateStrategy::InitOnly,
                selection: SelectionStrategy::TopGamma,
                connectivity: false,
                ..base
            }),
            Self::Nsg => Some(PipelineBuilder {
                candidates: CandidateStrategy::Search { l: gamma.max(16) },
                selection: SelectionStrategy::Mrng,
                ..base
            }),
            Self::Nssg => Some(PipelineBuilder {
                candidates: CandidateStrategy::Expand,
                selection: SelectionStrategy::Nssg { min_angle_deg: 60.0 },
                ..base
            }),
            Self::Vamana => Some(PipelineBuilder {
                nndescent_init: false,
                candidates: CandidateStrategy::Search { l: gamma.max(16) },
                selection: SelectionStrategy::Vamana { alpha: 1.2 },
                rounds: 2,
                ..base
            }),
            Self::Hcnng | Self::Hnsw => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connect::reachable_from_seed;
    use crate::search::{beam_search, SearchParams, SearchScratch};
    use crate::testutil::GridOracle;
    use crate::FnScorer;

    fn grid() -> GridOracle {
        GridOracle::new(14) // 196 points
    }

    fn recall_at_1(oracle: &GridOracle, graph: &Graph) -> f64 {
        let mut hits = 0;
        let mut visited = SearchScratch::default();
        let n = oracle.len();
        for target in (0..n as u32).step_by(7) {
            let scorer = FnScorer(|id| crate::SimilarityOracle::sim(oracle, id, target));
            let res = beam_search(graph, &scorer, SearchParams::seed_only(1, 10), &mut visited, 1);
            if res.results[0].0 == target {
                hits += 1;
            }
        }
        hits as f64 / (n as f64 / 7.0).ceil()
    }

    #[test]
    fn fused_pipeline_builds_navigable_connected_graph() {
        let oracle = grid();
        let builder = PipelineBuilder { gamma: 8, threads: 2, ..PipelineBuilder::default() };
        let (graph, stats) = builder.build(&oracle);
        assert_eq!(graph.len(), oracle.len());
        assert_eq!(reachable_from_seed(&graph), oracle.len(), "component 5 guarantees reach");
        assert!(graph.max_degree() <= 8 + stats.connectivity.bridges_added);
        let r = recall_at_1(&oracle, &graph);
        assert!(r > 0.95, "fused graph recall@1 too low: {r}");
    }

    #[test]
    fn every_pipeline_recipe_builds_and_searches() {
        let oracle = grid();
        for recipe in [GraphRecipe::Fused, GraphRecipe::KGraph, GraphRecipe::Nsg, GraphRecipe::Nssg, GraphRecipe::Vamana] {
            let builder = PipelineBuilder { threads: 2, ..recipe.pipeline(8, 11).unwrap() };
            let (graph, _) = builder.build(&oracle);
            assert_eq!(graph.len(), oracle.len(), "{}", recipe.label());
            let r = recall_at_1(&oracle, &graph);
            assert!(r > 0.8, "{} recall@1 too low: {r}", recipe.label());
        }
    }

    #[test]
    fn degree_bound_is_respected_before_bridging() {
        let oracle = grid();
        let builder = PipelineBuilder {
            gamma: 5,
            connectivity: false,
            threads: 2,
            ..PipelineBuilder::default()
        };
        let (graph, _) = builder.build(&oracle);
        assert!(graph.max_degree() <= 5, "max degree {}", graph.max_degree());
    }

    #[test]
    fn stats_cover_all_phases() {
        let oracle = GridOracle::new(6);
        let (_, stats) = PipelineBuilder { gamma: 4, threads: 1, ..PipelineBuilder::default() }
            .build(&oracle);
        assert!(stats.total_secs() >= stats.init_secs);
        assert!(stats.total_secs() > 0.0);
    }

    #[test]
    fn recipes_expose_labels_and_builders() {
        assert_eq!(GraphRecipe::all().len(), 7);
        for r in GraphRecipe::all() {
            assert!(!r.label().is_empty());
            match r {
                GraphRecipe::Hcnng | GraphRecipe::Hnsw => assert!(r.pipeline(8, 1).is_none()),
                _ => assert!(r.pipeline(8, 1).is_some()),
            }
        }
    }
}
