//! The joint search procedure (Algorithm 2 of the paper): best-first
//! routing over a fixed-size result pool.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pool::Pool;
use crate::{AnnIndex, Graph, QueryScorer};

/// Tuning parameters of Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Number of results to return.
    pub k: usize,
    /// Result-pool size `l >= k` — the accuracy/efficiency knob
    /// (Appendix I, Tab. XII).
    pub l: usize,
    /// Whether to fill the initial pool with `l - 1` random vertices as in
    /// the paper's Line 2 (in addition to the seed).  Disabling starts from
    /// the seed alone, which is cheaper at small `l`.
    pub random_init: bool,
}

impl SearchParams {
    /// Standard parameters: pool size `l`, `k` results, random
    /// initialisation on (faithful to Algorithm 2).
    ///
    /// # Panics
    /// When `l < k` (the result pool must hold all `k` results) or
    /// `k == 0`.
    ///
    /// ```should_panic
    /// must_graph::SearchParams::new(5, 3); // l < k
    /// ```
    #[must_use]
    pub fn new(k: usize, l: usize) -> Self {
        assert!(l >= k, "pool size l must be at least k");
        assert!(k > 0, "k must be positive");
        Self { k, l, random_init: true }
    }

    /// Same but starting from the seed only.
    ///
    /// # Panics
    /// As [`SearchParams::new`]: when `l < k` or `k == 0`.
    #[must_use]
    pub fn seed_only(k: usize, l: usize) -> Self {
        Self { random_init: false, ..Self::new(k, l) }
    }
}

/// Instrumentation of one search run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchStats {
    /// Vertices expanded (greedy-routing iterations, `eta` in Lemma 3).
    pub hops: u64,
    /// Candidates whose similarity was evaluated (incl. pruned ones).
    pub evaluated: u64,
    /// Candidates discarded early by [`QueryScorer::score_pruned`]
    /// (the Lemma-4 optimisation; 0 when the scorer does not prune).
    pub pruned: u64,
}

/// The outcome of a search: top-`k` `(id, similarity)` pairs (descending)
/// plus instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Approximate top-`k`, best first.
    pub results: Vec<(u32, f32)>,
    /// Run statistics.
    pub stats: SearchStats,
}

/// Marker array tracking visited/scored vertices across one search.
///
/// Generation-stamped so it can be reused across many queries without
/// clearing (allocation-free steady state, as the perf guide recommends).
#[derive(Debug, Default)]
pub struct VisitedSet {
    stamps: Vec<u32>,
    generation: u32,
}

impl VisitedSet {
    /// Grows the stamp array to cover `n` vertices without starting a new
    /// generation (allocation-only warm-up; [`VisitedSet::reset`] still
    /// runs per query).
    pub fn reserve(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
    }

    /// Prepares the set for a graph of `n` vertices and a fresh query.
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Wrapped: clear everything once and restart at generation 1.
            self.stamps.fill(0);
            self.generation = 1;
        }
    }

    /// Marks `id`; returns `true` if it was not marked before.
    #[inline]
    pub fn mark(&mut self, id: u32) -> bool {
        let slot = &mut self.stamps[id as usize];
        if *slot == self.generation {
            false
        } else {
            *slot = self.generation;
            true
        }
    }
}

/// Reusable per-thread search state: the visited stamps *and* the result
/// pool survive across queries, so a query batch's steady state performs
/// no heap allocation inside the search loop (the returned top-`k` vector
/// is the only per-query allocation).
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Generation-stamped visited markers.
    pub visited: VisitedSet,
    /// The fixed-size result pool `R` of Algorithm 2, re-sized per query.
    pub pool: Pool,
}

impl SearchScratch {
    /// Pre-sizes the scratch for a graph of `n` vertices, moving the
    /// `O(n)` visited-stamp allocation from the first query to worker
    /// construction.  Serving workers call this up front — one scratch
    /// per shard, each sized to *its* graph.  (The pool is sized per
    /// query by [`Pool::reset`], which reuses its entry allocation
    /// across queries.)
    pub fn reserve(&mut self, n: usize) {
        self.visited.reserve(n);
    }
}

/// Runs Algorithm 2 on `graph` for the query represented by `scorer`.
///
/// `scratch` is reusable per-thread state; `rng_seed` controls the random
/// pool initialisation (Line 2).  The scorer's `score_pruned` receives the
/// pool threshold, enabling the Lemma-4 multi-vector pruning when the
/// scorer supports it.
pub fn beam_search<S: QueryScorer + ?Sized>(
    graph: &Graph,
    scorer: &S,
    params: SearchParams,
    scratch: &mut SearchScratch,
    rng_seed: u64,
) -> SearchResult {
    beam_search_impl(
        graph.len(),
        graph.seed(),
        |v| graph.neighbors(v),
        scorer,
        params,
        scratch,
        rng_seed,
    )
}

/// [`beam_search`] over a frozen [`crate::csr::CsrGraph`].
pub fn beam_search_csr<S: QueryScorer + ?Sized>(
    graph: &crate::csr::CsrGraph,
    scorer: &S,
    params: SearchParams,
    scratch: &mut SearchScratch,
    rng_seed: u64,
) -> SearchResult {
    beam_search_impl(
        graph.len(),
        graph.seed(),
        |v| graph.neighbors(v),
        scorer,
        params,
        scratch,
        rng_seed,
    )
}

fn beam_search_impl<'g, S: QueryScorer + ?Sized>(
    n: usize,
    seed: u32,
    neighbors: impl Fn(u32) -> &'g [u32],
    scorer: &S,
    params: SearchParams,
    scratch: &mut SearchScratch,
    rng_seed: u64,
) -> SearchResult {
    let mut stats = SearchStats::default();
    let SearchScratch { visited, pool } = scratch;
    pool.reset(params.l);
    visited.reset(n);

    // Line 1-3: R = {seed} + (l-1) random vertices, scored exactly.
    let enqueue = |id: u32, pool: &mut Pool, stats: &mut SearchStats, visited: &mut VisitedSet| {
        if visited.mark(id) {
            stats.evaluated += 1;
            match scorer.score_pruned(id, pool.threshold()) {
                Some(s) => {
                    pool.insert(id, s);
                }
                None => stats.pruned += 1,
            }
        }
    };
    enqueue(seed, pool, &mut stats, visited);
    if params.random_init && params.l > 1 && n > 1 {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        for _ in 0..(params.l - 1).min(n - 1) {
            let id = rng.random_range(0..n as u32);
            enqueue(id, pool, &mut stats, visited);
        }
    }

    // Lines 4-10: expand the best unvisited vertex until none remain.
    while let Some(idx) = pool.best_unvisited() {
        let v = pool.visit(idx);
        stats.hops += 1;
        for &u in neighbors(v) {
            enqueue(u, pool, &mut stats, visited);
        }
    }

    SearchResult { results: pool.top_k(params.k), stats }
}

impl AnnIndex for Graph {
    fn search(&self, scorer: &dyn QueryScorer, params: SearchParams, rng_seed: u64) -> SearchResult {
        let mut scratch = SearchScratch::default();
        beam_search(self, scorer, params, &mut scratch, rng_seed)
    }

    fn len(&self) -> usize {
        Graph::len(self)
    }

    fn bytes(&self) -> usize {
        Graph::bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::LineOracle;
    use crate::{FnScorer, SimilarityOracle};

    /// A simple path graph 0-1-2-...-n-1 seeded in the middle.
    fn line_graph(n: usize) -> Graph {
        let neighbors = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push((i - 1) as u32);
                }
                if i + 1 < n {
                    v.push((i + 1) as u32);
                }
                v
            })
            .collect();
        Graph::new(neighbors, (n / 2) as u32)
    }

    #[test]
    fn finds_exact_nearest_on_line() {
        let n = 200;
        let g = line_graph(n);
        let oracle = LineOracle(n);
        for target in [0u32, 37, 120, 199] {
            let scorer = FnScorer(|id| oracle.sim(id, target));
            let res = beam_search(&g, &scorer, SearchParams::seed_only(1, 8), &mut SearchScratch::default(), 1);
            assert_eq!(res.results[0].0, target, "target {target}");
        }
    }

    #[test]
    fn results_are_sorted_descending() {
        let n = 100;
        let g = line_graph(n);
        let scorer = FnScorer(|id| -(id as f32 - 42.0).abs());
        let res = beam_search(&g, &scorer, SearchParams::new(10, 32), &mut SearchScratch::default(), 7);
        for w in res.results.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(res.results.len(), 10);
    }

    #[test]
    fn larger_l_never_reduces_top1_quality() {
        let n = 300;
        let g = line_graph(n);
        let scorer = FnScorer(|id| -(id as f32 - 7.0).abs());
        let small = beam_search(&g, &scorer, SearchParams::seed_only(1, 2), &mut SearchScratch::default(), 3);
        let large = beam_search(&g, &scorer, SearchParams::seed_only(1, 64), &mut SearchScratch::default(), 3);
        assert!(large.results[0].1 >= small.results[0].1);
    }

    #[test]
    fn stats_count_work() {
        let n = 50;
        let g = line_graph(n);
        let scorer = FnScorer(|id| -(id as f32));
        let res = beam_search(&g, &scorer, SearchParams::new(1, 4), &mut SearchScratch::default(), 9);
        assert!(res.stats.hops >= 1);
        assert!(res.stats.evaluated >= res.stats.hops);
    }

    #[test]
    fn visited_set_generations_do_not_leak() {
        let mut v = VisitedSet::default();
        v.reset(4);
        assert!(v.mark(2));
        assert!(!v.mark(2));
        v.reset(4);
        assert!(v.mark(2), "new generation must forget old marks");
    }

    #[test]
    fn pruning_scorer_matches_exact_scorer_results() {
        // A scorer whose score_pruned discards exactly-below-threshold
        // candidates must return the same top-k as the plain scorer
        // (Lemma 4: pruning is lossless).
        struct Pruning;
        impl QueryScorer for Pruning {
            fn score(&self, id: u32) -> f32 {
                -((id as f32) - 33.0).abs()
            }
        }
        let n = 120;
        let g = line_graph(n);
        let exact = FnScorer(|id| -((id as f32) - 33.0).abs());
        let a = beam_search(&g, &exact, SearchParams::seed_only(5, 16), &mut SearchScratch::default(), 1);
        let b = beam_search(&g, &Pruning, SearchParams::seed_only(5, 16), &mut SearchScratch::default(), 1);
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn lemma3_pool_similarity_sum_is_monotone() {
        // Instrumented re-run of the search loop checking f(eta) directly.
        let n = 400;
        let g = line_graph(n);
        let oracle = LineOracle(n);
        let target = 311u32;
        let scorer = FnScorer(|id| oracle.sim(id, target));
        let params = SearchParams::seed_only(1, 12);
        let mut visited = VisitedSet::default();
        visited.reset(n);
        let mut pool = Pool::new(params.l);
        let s0 = scorer.score(g.seed());
        pool.insert(g.seed(), s0);
        visited.mark(g.seed());
        let mut last_sum = f64::NEG_INFINITY;
        while let Some(idx) = pool.best_unvisited() {
            let v = pool.visit(idx);
            for &u in g.neighbors(v) {
                if visited.mark(u) {
                    let s = scorer.score(u);
                    if s > pool.threshold() {
                        pool.insert(u, s);
                    }
                }
            }
            let sum = pool.sim_sum();
            // Only comparable once the pool is full (fixed cardinality).
            if pool.is_full() {
                assert!(sum >= last_sum - 1e-9, "f(eta) decreased: {sum} < {last_sum}");
                last_sum = sum;
            }
        }
    }
}
