//! Component ③ — neighbour selection strategies (Lines 11–17 of
//! Algorithm 1 and the equivalents from NSSG and Vamana).
//!
//! All strategies take the owning vertex `o` and a candidate list sorted by
//! descending similarity to `o`, and return the selected neighbour ids.

use crate::nndescent::Neighbor;
use crate::SimilarityOracle;

/// Which selection strategy component ③ uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionStrategy {
    /// Keep the `gamma` most similar candidates (KGraph).
    TopGamma,
    /// The MRNG rule used by the paper's fused index and NSG
    /// (Lines 11–17): keep `v` iff `IP(o, v) > IP(u, v)` for every
    /// already-kept `u` — guaranteeing pairwise angles >= 60° (Lemma 2).
    Mrng,
    /// NSSG's angle-based rule: keep `v` iff the angle `u-o-v` is at least
    /// `min_angle_deg` for every kept `u`.
    Nssg {
        /// Minimum pairwise neighbour angle in degrees (NSSG uses 60).
        min_angle_deg: f32,
    },
    /// Vamana's alpha-relaxed rule (RobustPrune): keep `v` iff
    /// `d(o, v) < alpha * d(u, v)` for every kept `u`; `alpha > 1` keeps
    /// longer-range edges.
    Vamana {
        /// Distance-relaxation factor (DiskANN uses 1.2).
        alpha: f32,
    },
}

/// Euclidean distance between two vertices derived from oracle
/// similarities: `d^2(a,b) = sim(a,a) + sim(b,b) - 2 sim(a,b)`.
#[inline]
fn distance<O: SimilarityOracle>(oracle: &O, a: u32, b: u32) -> f32 {
    (oracle.self_sim(a) + oracle.self_sim(b) - 2.0 * oracle.sim(a, b)).max(0.0).sqrt()
}

/// Applies `strategy` to the candidates of vertex `o`, returning at most
/// `gamma` neighbour ids.
///
/// `candidates` must be sorted by descending similarity to `o` and must not
/// contain `o` itself.
pub fn select_neighbors<O: SimilarityOracle>(
    oracle: &O,
    o: u32,
    candidates: &[Neighbor],
    gamma: usize,
    strategy: SelectionStrategy,
) -> Vec<u32> {
    debug_assert!(candidates.windows(2).all(|w| w[0].sim >= w[1].sim));
    match strategy {
        SelectionStrategy::TopGamma => candidates.iter().take(gamma).map(|n| n.id).collect(),
        SelectionStrategy::Mrng => {
            let mut kept: Vec<Neighbor> = Vec::with_capacity(gamma);
            for &cand in candidates {
                if kept.len() >= gamma {
                    break;
                }
                // Keep v iff it is more similar to o than to every kept u.
                let ok = kept.iter().all(|u| cand.sim > oracle.sim(u.id, cand.id));
                if ok {
                    kept.push(cand);
                }
            }
            kept.into_iter().map(|n| n.id).collect()
        }
        SelectionStrategy::Nssg { min_angle_deg } => {
            let cos_max = min_angle_deg.to_radians().cos();
            let mut kept: Vec<Neighbor> = Vec::with_capacity(gamma);
            for &cand in candidates {
                if kept.len() >= gamma {
                    break;
                }
                let d_ov = distance(oracle, o, cand.id);
                let ok = kept.iter().all(|u| {
                    let d_ou = distance(oracle, o, u.id);
                    let d_uv = distance(oracle, u.id, cand.id);
                    if d_ov <= f32::EPSILON || d_ou <= f32::EPSILON {
                        return false; // coincident points: reject duplicates
                    }
                    // Law of cosines at vertex o.
                    let cos = (d_ou * d_ou + d_ov * d_ov - d_uv * d_uv) / (2.0 * d_ou * d_ov);
                    cos <= cos_max + 1e-6
                });
                if ok {
                    kept.push(cand);
                }
            }
            kept.into_iter().map(|n| n.id).collect()
        }
        SelectionStrategy::Vamana { alpha } => {
            let mut kept: Vec<Neighbor> = Vec::with_capacity(gamma);
            for &cand in candidates {
                if kept.len() >= gamma {
                    break;
                }
                let d_ov = distance(oracle, o, cand.id);
                let ok = kept
                    .iter()
                    .all(|u| d_ov < alpha * distance(oracle, u.id, cand.id));
                if ok {
                    kept.push(cand);
                }
            }
            kept.into_iter().map(|n| n.id).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nndescent::{exact_knn_sample, Neighbor};
    use crate::testutil::GridOracle;

    fn candidates_for<O: SimilarityOracle>(oracle: &O, o: u32, count: usize) -> Vec<Neighbor> {
        exact_knn_sample(oracle, &[o], count, 1).pop().unwrap()
    }

    #[test]
    fn top_gamma_truncates() {
        let oracle = GridOracle::new(5);
        let cands = candidates_for(&oracle, 12, 10);
        let sel = select_neighbors(&oracle, 12, &cands, 4, SelectionStrategy::TopGamma);
        assert_eq!(sel.len(), 4);
        assert_eq!(sel, cands[..4].iter().map(|n| n.id).collect::<Vec<_>>());
    }

    #[test]
    fn mrng_always_keeps_the_closest_candidate() {
        let oracle = GridOracle::new(6);
        for o in [0u32, 7, 20, 35] {
            let cands = candidates_for(&oracle, o, 12);
            let sel = select_neighbors(&oracle, o, &cands, 6, SelectionStrategy::Mrng);
            assert!(!sel.is_empty());
            assert_eq!(sel[0], cands[0].id, "closest candidate must survive MRNG");
        }
    }

    #[test]
    fn mrng_diversifies_directions_on_grid() {
        // For the centre of a 5x5 grid, MRNG must not keep two neighbours in
        // the same direction (e.g. (2,3) and (2,4)): the nearer one occludes
        // the farther.
        let oracle = GridOracle::new(5);
        let centre = 12; // (2, 2)
        let cands = candidates_for(&oracle, centre, 24);
        let sel = select_neighbors(&oracle, centre, &cands, 24, SelectionStrategy::Mrng);
        let coords: Vec<(f32, f32)> = sel.iter().map(|&id| oracle.pts[id as usize]).collect();
        assert!(
            !(coords.contains(&(2.0, 3.0)) && coords.contains(&(2.0, 4.0))),
            "occluded same-direction neighbour kept: {coords:?}"
        );
        // The four axis neighbours at distance 1 are mutually >= 60 deg apart
        // and must all be kept.
        for want in [(1.0, 2.0), (3.0, 2.0), (2.0, 1.0), (2.0, 3.0)] {
            assert!(coords.contains(&want), "missing direct neighbour {want:?}");
        }
    }

    #[test]
    fn lemma2_mrng_pairwise_angles_at_least_60_degrees() {
        let oracle = GridOracle::new(7);
        for o in 0..oracle.len() as u32 {
            let cands = candidates_for(&oracle, o, 20);
            let sel = select_neighbors(&oracle, o, &cands, 20, SelectionStrategy::Mrng);
            let (ox, oy) = oracle.pts[o as usize];
            for (i, &u) in sel.iter().enumerate() {
                for &v in &sel[i + 1..] {
                    let (ux, uy) = oracle.pts[u as usize];
                    let (vx, vy) = oracle.pts[v as usize];
                    let du = ((ux - ox), (uy - oy));
                    let dv = ((vx - ox), (vy - oy));
                    let cos = (du.0 * dv.0 + du.1 * dv.1)
                        / ((du.0 * du.0 + du.1 * du.1).sqrt()
                            * (dv.0 * dv.0 + dv.1 * dv.1).sqrt());
                    assert!(
                        cos <= 0.5 + 1e-4,
                        "angle below 60 deg at {o}: neighbours {u}, {v} (cos = {cos})"
                    );
                }
            }
        }
    }

    #[test]
    fn nssg_with_60_degrees_matches_spirit_of_mrng() {
        let oracle = GridOracle::new(5);
        let cands = candidates_for(&oracle, 12, 24);
        let nssg = select_neighbors(
            &oracle,
            12,
            &cands,
            24,
            SelectionStrategy::Nssg { min_angle_deg: 60.0 },
        );
        // Must keep the closest and diversify.
        assert_eq!(nssg[0], cands[0].id);
        assert!(nssg.len() >= 4);
    }

    #[test]
    fn vamana_alpha_keeps_more_edges_than_mrng() {
        let oracle = GridOracle::new(8);
        let mut total_mrng = 0;
        let mut total_vamana = 0;
        for o in 0..oracle.len() as u32 {
            let cands = candidates_for(&oracle, o, 16);
            total_mrng +=
                select_neighbors(&oracle, o, &cands, 16, SelectionStrategy::Mrng).len();
            total_vamana += select_neighbors(
                &oracle,
                o,
                &cands,
                16,
                SelectionStrategy::Vamana { alpha: 1.4 },
            )
            .len();
        }
        assert!(
            total_vamana >= total_mrng,
            "alpha > 1 must relax pruning: vamana {total_vamana} vs mrng {total_mrng}"
        );
    }

    #[test]
    fn gamma_caps_every_strategy() {
        let oracle = GridOracle::new(6);
        let cands = candidates_for(&oracle, 14, 30);
        for strat in [
            SelectionStrategy::TopGamma,
            SelectionStrategy::Mrng,
            SelectionStrategy::Nssg { min_angle_deg: 45.0 },
            SelectionStrategy::Vamana { alpha: 2.0 },
        ] {
            assert!(select_neighbors(&oracle, 14, &cands, 3, strat).len() <= 3);
        }
    }
}
