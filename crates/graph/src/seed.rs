//! Component ④ — seed preprocessing (Line 18 of Algorithm 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::par::par_map;
use crate::SimilarityOracle;

/// How the fixed search seed is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedStrategy {
    /// The vertex nearest the centroid of all virtual points (the paper's
    /// choice: Line 18 of Algorithm 1).
    Medoid,
    /// A seeded random vertex (ablation baseline).
    Random {
        /// RNG seed.
        rng_seed: u64,
    },
}

/// Computes the seed vertex under `strategy`.
pub fn choose_seed<O: SimilarityOracle>(oracle: &O, strategy: SeedStrategy, threads: usize) -> u32 {
    let n = oracle.len();
    assert!(n > 0, "cannot seed an empty graph");
    match strategy {
        SeedStrategy::Random { rng_seed } => {
            StdRng::seed_from_u64(rng_seed).random_range(0..n as u32)
        }
        SeedStrategy::Medoid => {
            let sims = par_map(n, threads, |o| oracle.sim_to_centroid(o as u32));
            sims.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i as u32)
                .expect("non-empty")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{GridOracle, LineOracle};

    #[test]
    fn medoid_of_line_is_the_middle() {
        let oracle = LineOracle(101);
        assert_eq!(choose_seed(&oracle, SeedStrategy::Medoid, 2), 50);
    }

    #[test]
    fn medoid_of_grid_is_central() {
        let oracle = GridOracle::new(5);
        let seed = choose_seed(&oracle, SeedStrategy::Medoid, 1);
        assert_eq!(oracle.pts[seed as usize], (2.0, 2.0));
    }

    #[test]
    fn random_seed_is_deterministic_and_in_range() {
        let oracle = LineOracle(37);
        let a = choose_seed(&oracle, SeedStrategy::Random { rng_seed: 5 }, 1);
        let b = choose_seed(&oracle, SeedStrategy::Random { rng_seed: 5 }, 1);
        assert_eq!(a, b);
        assert!((a as usize) < 37);
    }
}
