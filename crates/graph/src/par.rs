//! Minimal data-parallel helpers over scoped std threads.
//!
//! The paper builds indexes with 64 threads and searches with 1
//! (Appendix F); we mirror that with std scoped threads instead of pulling
//! in a work-stealing runtime — construction is embarrassingly parallel
//! over vertex ranges.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for index construction: the available
/// parallelism, capped by the `MUST_BUILD_THREADS` environment variable if
/// set.
pub fn build_threads() -> usize {
    let avail = std::thread::available_parallelism().map_or(1, usize::from);
    match std::env::var("MUST_BUILD_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(t) if t > 0 => t.min(avail),
        _ => avail,
    }
}

/// Runs `f(i)` for every `i in 0..n`, producing a `Vec` of results, using
/// `threads` workers over contiguous chunks.  Deterministic output order.
pub fn par_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, threads: usize, f: F) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = t * chunk;
                for (off, s) in slot.iter_mut().enumerate() {
                    *s = Some(f(base + off));
                }
            });
        }
    });
    out.into_iter().map(|x| x.expect("all slots filled")).collect()
}

/// Runs `f(i)` for every `i in 0..n` for side effects, work-stealing via an
/// atomic counter (good when per-item cost is skewed).
pub fn par_for<F: Fn(usize) + Sync>(n: usize, threads: usize, f: F) {
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    const BATCH: usize = 64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let counter = &counter;
            scope.spawn(move || loop {
                let start = counter.fetch_add(BATCH, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + BATCH).min(n) {
                    f(i);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(1000, 7, |i| i * 2);
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn par_map_handles_edge_cases() {
        assert!(par_map(0, 4, |i| i).is_empty());
        assert_eq!(par_map(1, 4, |i| i + 1), vec![1]);
        assert_eq!(par_map(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn par_for_visits_every_index_once() {
        let n = 10_000;
        let sum = AtomicU64::new(0);
        par_for(n, 8, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn build_threads_is_positive() {
        assert!(build_threads() >= 1);
    }
}
