//! Minimal data-parallel helpers over scoped std threads.
//!
//! The paper builds indexes with 64 threads and searches with 1
//! (Appendix F); we mirror that with std scoped threads instead of pulling
//! in a work-stealing runtime — construction is embarrassingly parallel
//! over vertex ranges.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// Number of worker threads to use for index construction: the available
/// parallelism, capped by the `MUST_BUILD_THREADS` environment variable if
/// set.
pub fn build_threads() -> usize {
    let avail = std::thread::available_parallelism().map_or(1, usize::from);
    match std::env::var("MUST_BUILD_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(t) if t > 0 => t.min(avail),
        _ => avail,
    }
}

/// Runs `f(i)` for every `i in 0..n`, producing a `Vec` of results, using
/// `threads` workers over contiguous chunks.  Deterministic output order.
pub fn par_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, threads: usize, f: F) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = t * chunk;
                for (off, s) in slot.iter_mut().enumerate() {
                    *s = Some(f(base + off));
                }
            });
        }
    });
    out.into_iter().map(|x| x.expect("all slots filled")).collect()
}

/// Like [`par_map`], but workers claim fixed-size chunks through a shared
/// atomic counter instead of pre-assigned contiguous stripes.  When per-item
/// cost is skewed (graph insertion: late, high-degree nodes cost far more
/// than early ones) striping leaves the unlucky thread running alone at the
/// end; chunk claiming keeps every worker busy until the tail.  Results are
/// still index-ordered — each chunk is a disjoint window of the output, so
/// the claim order never shows in the returned `Vec`.
pub fn par_map_chunked<T: Send, F: Fn(usize) -> T + Sync>(
    n: usize,
    threads: usize,
    f: F,
) -> Vec<T> {
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    // Small chunks relative to n/threads so claim order can absorb skew;
    // each chunk is claimed exactly once, so the per-chunk mutex is never
    // contended — it only exists to hand the disjoint window to a worker.
    let chunk = (n / (threads * 8)).max(1);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let slots: Vec<Mutex<&mut [Option<T>]>> =
        out.chunks_mut(chunk).map(Mutex::new).collect();
    let counter = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let slots = &slots;
            let counter = &counter;
            scope.spawn(move || loop {
                let c = counter.fetch_add(1, Ordering::Relaxed);
                if c >= slots.len() {
                    break;
                }
                let mut slot = slots[c].lock().expect("chunk slot");
                let base = c * chunk;
                for (off, s) in slot.iter_mut().enumerate() {
                    *s = Some(f(base + off));
                }
            });
        }
    });
    drop(slots);
    out.into_iter().map(|x| x.expect("all slots filled")).collect()
}

/// Runs `f(i)` for every `i in 0..n` for side effects, work-stealing via an
/// atomic counter (good when per-item cost is skewed).
pub fn par_for<F: Fn(usize) + Sync>(n: usize, threads: usize, f: F) {
    if n == 0 {
        return;
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    const BATCH: usize = 64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let counter = &counter;
            scope.spawn(move || loop {
                let start = counter.fetch_add(BATCH, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + BATCH).min(n) {
                    f(i);
                }
            });
        }
    });
}

/// Shared state for a [`wave_pool`] — start/finish rendezvous for one pool
/// of persistent workers executing a sequence of parallel phases.
struct WaveShared {
    ctl: Mutex<WaveCtl>,
    start: Condvar,
    counter: AtomicUsize,
    chunk: AtomicUsize,
    fin: Mutex<usize>,
    fin_cv: Condvar,
    panicked: AtomicBool,
}

struct WaveCtl {
    epoch: u64,
    n: usize,
    shutdown: bool,
}

impl WaveShared {
    fn new() -> Self {
        Self {
            ctl: Mutex::new(WaveCtl { epoch: 0, n: 0, shutdown: false }),
            start: Condvar::new(),
            counter: AtomicUsize::new(0),
            chunk: AtomicUsize::new(1),
            fin: Mutex::new(0),
            fin_cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }
}

/// Handle passed to the `driver` closure of [`wave_pool`]: each
/// [`WaveRunner::run`] dispatches one parallel phase to the persistent
/// workers (the calling thread participates as worker 0) and returns when
/// every item has been processed.
pub struct WaveRunner<'a> {
    shared: &'a WaveShared,
    worker: &'a (dyn Fn(usize, usize) + Sync),
    threads: usize,
}

impl WaveRunner<'_> {
    /// Runs `worker(worker_id, item)` for every `item in 0..n` across the
    /// pool, blocking until all items are done.  Items are claimed in
    /// chunks through an atomic counter, so skewed per-item costs balance;
    /// callers must not depend on *which* worker sees an item — only that
    /// each item runs exactly once per call.
    ///
    /// # Panics
    /// Propagates (as a panic on the calling thread) any panic raised by
    /// the worker closure on a pool thread.
    pub fn run(&self, n: usize) {
        if n == 0 {
            return;
        }
        let spawned = self.threads - 1;
        if spawned == 0 {
            for i in 0..n {
                (self.worker)(0, i);
            }
            return;
        }
        self.shared.counter.store(0, Ordering::Relaxed);
        self.shared.chunk.store((n / (self.threads * 8)).max(1), Ordering::Relaxed);
        *self.shared.fin.lock().expect("fin lock") = 0;
        {
            let mut ctl = self.shared.ctl.lock().expect("ctl lock");
            ctl.epoch += 1;
            ctl.n = n;
        }
        self.shared.start.notify_all();
        claim_items(self.shared, n, 0, self.worker);
        let mut fin = self.shared.fin.lock().expect("fin lock");
        while *fin < spawned {
            fin = self.shared.fin_cv.wait(fin).expect("fin wait");
        }
        drop(fin);
        assert!(
            !self.shared.panicked.load(Ordering::Relaxed),
            "wave_pool worker panicked"
        );
    }
}

fn claim_items(shared: &WaveShared, n: usize, w: usize, worker: &(dyn Fn(usize, usize) + Sync)) {
    let chunk = shared.chunk.load(Ordering::Relaxed);
    loop {
        let start = shared.counter.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            return;
        }
        for i in start..(start + chunk).min(n) {
            worker(w, i);
        }
    }
}

fn wave_worker_loop(shared: &WaveShared, w: usize, worker: &(dyn Fn(usize, usize) + Sync)) {
    let mut seen = 0u64;
    loop {
        let n = {
            let mut ctl = shared.ctl.lock().expect("ctl lock");
            while ctl.epoch == seen && !ctl.shutdown {
                ctl = shared.start.wait(ctl).expect("ctl wait");
            }
            if ctl.shutdown {
                return;
            }
            seen = ctl.epoch;
            ctl.n
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            claim_items(shared, n, w, worker);
        }));
        if caught.is_err() {
            shared.panicked.store(true, Ordering::Relaxed);
        }
        let mut fin = shared.fin.lock().expect("fin lock");
        *fin += 1;
        shared.fin_cv.notify_all();
    }
}

/// Signals shutdown to the pool workers even if the driver unwinds, so the
/// enclosing scope's implicit join can never deadlock.
struct WaveShutdown<'a>(&'a WaveShared);

impl Drop for WaveShutdown<'_> {
    fn drop(&mut self) {
        let mut ctl = self.0.ctl.lock().unwrap_or_else(PoisonError::into_inner);
        ctl.shutdown = true;
        drop(ctl);
        self.0.start.notify_all();
    }
}

/// A persistent scoped worker pool for wave-structured algorithms: spawn
/// `threads - 1` workers **once**, then run many short parallel phases
/// against them without re-spawning per phase (an HNSW build runs 2 phases
/// per wave × ~40 waves; spawning ~80 × T threads would dominate small
/// builds).
///
/// `worker(worker_id, item)` is the single phase body for the whole pool's
/// lifetime — multi-phase algorithms dispatch on shared state (e.g. an
/// `AtomicUsize` phase tag captured by the closure).  `driver` receives a
/// [`WaveRunner`] and interleaves `run(n)` calls (parallel phases) with
/// plain serial code; between `run`s the workers park on a condvar, so the
/// driver has exclusive access to anything the phases share.
///
/// With `threads == 1` no threads are spawned and `run` degenerates to a
/// sequential loop — the degenerate pool is how thread-count-invariant
/// algorithms get tested against their parallel selves.
pub fn wave_pool<R>(
    threads: usize,
    worker: &(impl Fn(usize, usize) + Sync),
    driver: impl FnOnce(&WaveRunner<'_>) -> R,
) -> R {
    let threads = threads.max(1);
    let shared = WaveShared::new();
    let worker: &(dyn Fn(usize, usize) + Sync) = worker;
    if threads == 1 {
        let runner = WaveRunner { shared: &shared, worker, threads: 1 };
        return driver(&runner);
    }
    std::thread::scope(|scope| {
        for w in 1..threads {
            let shared = &shared;
            scope.spawn(move || wave_worker_loop(shared, w, worker));
        }
        let _guard = WaveShutdown(&shared);
        let runner = WaveRunner { shared: &shared, worker, threads };
        driver(&runner)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(1000, 7, |i| i * 2);
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn par_map_handles_edge_cases() {
        assert!(par_map(0, 4, |i| i).is_empty());
        assert_eq!(par_map(1, 4, |i| i + 1), vec![1]);
        assert_eq!(par_map(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn par_for_visits_every_index_once() {
        let n = 10_000;
        let sum = AtomicU64::new(0);
        par_for(n, 8, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn build_threads_is_positive() {
        assert!(build_threads() >= 1);
    }

    #[test]
    fn par_map_chunked_is_index_ordered_under_skew() {
        // Wildly uneven per-item cost scrambles the claim order; the output
        // must still be index-ordered and identical to the serial map.
        let n = 2_731;
        let f = |i: usize| {
            let spin = if i.is_multiple_of(97) { 5_000 } else { 1 };
            let mut acc = i as u64;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            (i as u64) << 20 | (acc & 0xFFF)
        };
        let serial: Vec<u64> = (0..n).map(f).collect();
        for threads in [2, 3, 8] {
            assert_eq!(par_map_chunked(n, threads, f), serial, "threads {threads}");
        }
    }

    #[test]
    fn par_map_chunked_handles_edge_cases() {
        assert!(par_map_chunked(0, 4, |i| i).is_empty());
        assert_eq!(par_map_chunked(1, 4, |i| i + 1), vec![1]);
        assert_eq!(par_map_chunked(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(par_map_chunked(3, 64, |i| i * 3), vec![0, 3, 6]);
    }

    #[test]
    fn wave_pool_runs_every_item_once_per_phase() {
        for threads in [1, 2, 4] {
            let marks: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
            let worker = |_w: usize, i: usize| {
                marks[i].fetch_add(1, Ordering::Relaxed);
            };
            wave_pool(threads, &worker, |pool| {
                for phase in 1..=4u64 {
                    pool.run(500);
                    // Between runs the driver has the pool parked: every
                    // item must have been hit exactly `phase` times.
                    for (i, m) in marks.iter().enumerate() {
                        assert_eq!(m.load(Ordering::Relaxed), phase, "item {i} T={threads}");
                    }
                }
                pool.run(0); // empty phase is a no-op
            });
        }
    }

    #[test]
    fn wave_pool_phases_see_prior_serial_writes() {
        // The driver mutates shared state between phases; workers must
        // observe it (the condvar rendezvous is the synchronisation edge).
        let bias = Mutex::new(0u64);
        let out: Vec<AtomicU64> = (0..256).map(|_| AtomicU64::new(0)).collect();
        let worker = |_w: usize, i: usize| {
            let b = *bias.lock().expect("bias");
            out[i].store(b + i as u64, Ordering::Relaxed);
        };
        wave_pool(4, &worker, |pool| {
            for round in 0..3u64 {
                *bias.lock().expect("bias") = round * 1_000;
                pool.run(256);
                for (i, o) in out.iter().enumerate() {
                    assert_eq!(o.load(Ordering::Relaxed), round * 1_000 + i as u64);
                }
            }
        });
    }
}
