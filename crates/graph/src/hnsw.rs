//! HNSW (Malkov & Yashunin, TPAMI 2020): the layered small-world graph used
//! as one of the pluggable backends in the paper's Fig. 10 ablation.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::par;
use crate::search::{SearchParams, SearchResult, SearchScratch, SearchStats};
use crate::{AnnIndex, QueryScorer, SimilarityOracle};

/// Maximum wave length for the wave-scheduled build: bounds transient
/// candidate memory and keeps the frozen prefix a large fraction of the
/// graph each node searches against (at the cap, a wave is at most a third
/// of the committed prefix).
const WAVE_MAX: usize = 65_536;

/// HNSW construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct HnswParams {
    /// Max neighbours per vertex on layers > 0 (`M`); layer 0 allows `2M`.
    pub m: usize,
    /// Construction beam width (`efConstruction`).
    pub ef_construction: usize,
    /// RNG seed for level assignment.
    pub rng_seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self { m: 16, ef_construction: 100, rng_seed: 0x45F }
    }
}

/// A built HNSW index.
#[derive(Debug, Clone)]
pub struct Hnsw {
    /// `adjacency[node][level]` — neighbour lists for the levels the node
    /// participates in (`0..=levels[node]`).
    adjacency: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: usize,
    params: HnswParams,
}

/// The layered graph flattened into length-prefixed arrays — the form a
/// persistence layer serialises (bundle v2) and a deployment reloads
/// without rebuilding.
///
/// Lists are laid out node-major, layer-minor: node 0's layers
/// `0..=levels[0]`, then node 1's, and so on.  `offsets` is a CSR index
/// over that list sequence (`offsets.len() == total_lists + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HnswFlat {
    /// Top layer each node participates in (`levels.len() == n`).
    pub levels: Vec<u32>,
    /// CSR offsets over the flattened `(node, layer)` neighbour lists.
    pub offsets: Vec<u32>,
    /// Concatenated neighbour lists.
    pub edges: Vec<u32>,
    /// Entry vertex at the top layer.
    pub entry: u32,
    /// Top layer of the hierarchy.
    pub max_level: u32,
    /// Construction parameter `M` (needed so dynamic insertion keeps
    /// working after a reload).
    pub m: u32,
    /// Construction beam width `efConstruction`.
    pub ef_construction: u32,
    /// Level-assignment RNG seed.
    pub rng_seed: u64,
}

/// A deferred back-edge batch for one `(node, layer)` whose list would
/// overflow its cap: re-pruned read-only in the parallel phase, applied in
/// the serial commit.
struct BackGroup {
    nb: u32,
    layer: u32,
    adds: Vec<u32>,
    pruned: Mutex<Vec<u32>>,
}

/// Draws the level of every node from one seeded RNG stream — shared by
/// both build paths so level assignment is identical by construction.
fn assign_levels(n: usize, params: &HnswParams) -> Vec<usize> {
    let ml = 1.0 / (params.m as f64).ln().max(f64::MIN_POSITIVE);
    let mut rng = StdRng::seed_from_u64(params.rng_seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            ((-u.ln() * ml).floor() as usize).min(24)
        })
        .collect()
}

impl Hnsw {
    /// Builds the index with the wave-scheduled parallel algorithm on the
    /// default worker budget ([`par::build_threads`]).
    ///
    /// The output is a pure function of `(oracle, params)` — the wave
    /// schedule is derived from node ids alone, so the graph is
    /// byte-identical for every thread count (see [`Self::build_with_threads`]).
    pub fn build<O: SimilarityOracle>(oracle: &O, params: HnswParams) -> Self {
        Self::build_with_threads(oracle, params, par::build_threads())
    }

    /// Builds the index with `threads` workers using the wave schedule.
    ///
    /// Nodes are partitioned into geometrically growing waves by node id
    /// (`len = clamp(start/3, 1, 65536)` — thread-count independent, so a
    /// wave is never more than a third of its frozen prefix).
    /// Every node in a wave runs its greedy descent + per-layer beam
    /// search + neighbour selection concurrently against the **frozen**
    /// graph of all earlier waves; the resulting edges are then committed
    /// serially in ascending node id with the same selection and pruning
    /// rules the sequential path used.  Back-edge lists that overflow
    /// their cap are re-pruned in a second parallel phase (read-only,
    /// per-list) and applied serially.  No phase ever reads state another
    /// concurrent task writes, so the result is byte-identical across
    /// thread counts, including `threads == 1`.
    pub fn build_with_threads<O: SimilarityOracle>(
        oracle: &O,
        params: HnswParams,
        threads: usize,
    ) -> Self {
        let n = oracle.len();
        assert!(n > 0, "cannot index an empty object set");
        let levels = assign_levels(n, &params);
        let threads = threads.max(1).min(n);
        let adjacency: RwLock<Vec<Vec<Vec<u32>>>> =
            RwLock::new(levels.iter().map(|&l| vec![Vec::new(); l + 1]).collect());
        let entry = AtomicU32::new(0);
        let max_level = AtomicUsize::new(levels[0]);
        // Per-worker search scratch (visited stamps + beam pool), reused
        // across every wave — the sequential path used to reallocate both
        // per inserted node, which dominated large builds.
        let scratches: Vec<Mutex<SearchScratch>> =
            (0..threads).map(|_| Mutex::new(SearchScratch::default())).collect();
        const PHASE_CANDIDATES: usize = 0;
        const PHASE_REPRUNE: usize = 1;
        let phase = AtomicUsize::new(PHASE_CANDIDATES);
        let wave_start = AtomicUsize::new(1);
        // One slot per wave offset; a worker owns slot `item` for the
        // duration of the phase, so each mutex is locked exactly once.
        let cand_slots: Vec<Mutex<Vec<Vec<u32>>>> = (0..n.saturating_sub(1).min(WAVE_MAX))
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        let groups: RwLock<Vec<BackGroup>> = RwLock::new(Vec::new());

        let worker = |w: usize, item: usize| {
            let adj = adjacency.read().expect("adjacency lock");
            if phase.load(Ordering::Relaxed) == PHASE_CANDIDATES {
                let node = (wave_start.load(Ordering::Relaxed) + item) as u32;
                let mut scratch = scratches[w].lock().expect("scratch lock");
                let selected = wave_candidates(
                    oracle,
                    &adj,
                    &params,
                    node,
                    levels[node as usize],
                    entry.load(Ordering::Relaxed),
                    max_level.load(Ordering::Relaxed),
                    &mut scratch,
                );
                *cand_slots[item].lock().expect("candidate slot") = selected;
            } else {
                let gs = groups.read().expect("group lock");
                let g = &gs[item];
                let cap = if g.layer == 0 { params.m * 2 } else { params.m };
                let cur = &adj[g.nb as usize][g.layer as usize];
                let mut scored: Vec<(u32, f32)> = cur
                    .iter()
                    .chain(g.adds.iter())
                    .map(|&x| (x, oracle.sim(g.nb, x)))
                    .collect();
                scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                *g.pruned.lock().expect("pruned slot") = heuristic_select(oracle, g.nb, &scored, cap);
            }
        };

        par::wave_pool(threads, &worker, |pool| {
            let mut start = 1usize;
            while start < n {
                let len = (start / 3).clamp(1, WAVE_MAX).min(n - start);
                wave_start.store(start, Ordering::Relaxed);
                phase.store(PHASE_CANDIDATES, Ordering::Relaxed);
                pool.run(len);
                // Serial commit, ascending node id: forward lists first,
                // then back edges.  Non-overflowing back lists are plain
                // appends (exactly what the sequential path did); the rest
                // defer to the parallel re-prune phase.
                let mut requests: Vec<(u32, u32, u32)> = Vec::new();
                {
                    let mut adj = adjacency.write().expect("adjacency lock");
                    let mut cur_max = max_level.load(Ordering::Relaxed);
                    let mut cur_entry = entry.load(Ordering::Relaxed);
                    for (item, slot) in cand_slots.iter().enumerate().take(len) {
                        let node = (start + item) as u32;
                        let selected =
                            std::mem::take(&mut *slot.lock().expect("candidate slot"));
                        for (l, list) in selected.into_iter().enumerate() {
                            for &nb in &list {
                                requests.push((nb, l as u32, node));
                            }
                            adj[node as usize][l] = list;
                        }
                        if levels[node as usize] > cur_max {
                            cur_max = levels[node as usize];
                            cur_entry = node;
                        }
                    }
                    requests.sort_unstable();
                    let mut pending = Vec::new();
                    let mut i = 0;
                    while i < requests.len() {
                        let (nb, layer, _) = requests[i];
                        let mut j = i;
                        while j < requests.len() && requests[j].0 == nb && requests[j].1 == layer {
                            j += 1;
                        }
                        let adds: Vec<u32> = requests[i..j].iter().map(|r| r.2).collect();
                        let cap = if layer == 0 { params.m * 2 } else { params.m };
                        let back = &mut adj[nb as usize][layer as usize];
                        if back.len() + adds.len() <= cap {
                            back.extend_from_slice(&adds);
                        } else {
                            pending.push(BackGroup { nb, layer, adds, pruned: Mutex::new(Vec::new()) });
                        }
                        i = j;
                    }
                    *groups.write().expect("group lock") = pending;
                    max_level.store(cur_max, Ordering::Relaxed);
                    entry.store(cur_entry, Ordering::Relaxed);
                }
                let n_groups = groups.read().expect("group lock").len();
                if n_groups > 0 {
                    phase.store(PHASE_REPRUNE, Ordering::Relaxed);
                    pool.run(n_groups);
                    let done = std::mem::take(&mut *groups.write().expect("group lock"));
                    let mut adj = adjacency.write().expect("adjacency lock");
                    for g in done {
                        adj[g.nb as usize][g.layer as usize] =
                            g.pruned.into_inner().expect("pruned slot");
                    }
                }
                start += len;
            }
        });

        Self {
            adjacency: adjacency.into_inner().expect("adjacency lock"),
            entry: entry.load(Ordering::Relaxed),
            max_level: max_level.load(Ordering::Relaxed),
            params,
        }
    }

    /// Builds the index by strictly sequential insertion — the legacy
    /// algorithm the wave schedule replaced.  Kept as the recall-parity
    /// reference: tests pin the wave build's recall against this path on
    /// the exact oracle before trusting the parallel schedule.
    pub fn build_sequential<O: SimilarityOracle>(oracle: &O, params: HnswParams) -> Self {
        let n = oracle.len();
        assert!(n > 0, "cannot index an empty object set");
        let levels = assign_levels(n, &params);
        let mut index = Self {
            adjacency: levels.iter().map(|&l| vec![Vec::new(); l + 1]).collect(),
            entry: 0,
            max_level: levels[0],
            params,
        };
        for node in 1..n as u32 {
            index.insert(oracle, node, levels[node as usize]);
        }
        index
    }

    /// Dynamically inserts a new vertex (Section IX of the paper: HNSW
    /// "adeptly handles dynamic updates by incrementally inserting data
    /// points").  `node` must equal the current `len()` — the oracle must
    /// already know the new point.
    pub fn insert_new<O: SimilarityOracle>(&mut self, oracle: &O, node: u32, level_seed: u64) {
        assert_eq!(node as usize, self.adjacency.len(), "insert ids must be dense");
        assert!(oracle.len() > node as usize, "oracle must cover the new point");
        let ml = 1.0 / (self.params.m as f64).ln().max(f64::MIN_POSITIVE);
        let mut rng = StdRng::seed_from_u64(level_seed ^ node as u64);
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let level = ((-u.ln() * ml).floor() as usize).min(24);
        self.adjacency.push(vec![Vec::new(); level + 1]);
        self.insert(oracle, node, level);
    }

    /// Entry vertex at the top layer.
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Flattens the layered adjacency into [`HnswFlat`] for persistence.
    pub fn to_flat(&self) -> HnswFlat {
        let levels: Vec<u32> =
            self.adjacency.iter().map(|layers| (layers.len() - 1) as u32).collect();
        let total_lists: usize = self.adjacency.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(total_lists + 1);
        let mut edges = Vec::new();
        offsets.push(0u32);
        for layers in &self.adjacency {
            for list in layers {
                edges.extend_from_slice(list);
                offsets.push(edges.len() as u32);
            }
        }
        HnswFlat {
            levels,
            offsets,
            edges,
            entry: self.entry,
            max_level: self.max_level as u32,
            m: self.params.m as u32,
            ef_construction: self.params.ef_construction as u32,
            rng_seed: self.params.rng_seed,
        }
    }

    /// Rebuilds the layered index from its flattened form, validating
    /// structural consistency (offsets monotone, edge targets in range,
    /// entry on the top layer).
    ///
    /// # Errors
    /// A human-readable description of the first inconsistency found.
    pub fn from_flat(flat: &HnswFlat) -> Result<Self, String> {
        let n = flat.levels.len();
        if n == 0 {
            return Err("empty HNSW snapshot".into());
        }
        let total_lists: usize = flat.levels.iter().map(|&l| l as usize + 1).sum();
        if flat.offsets.len() != total_lists + 1 {
            return Err(format!(
                "offset table has {} entries, expected {}",
                flat.offsets.len(),
                total_lists + 1
            ));
        }
        if flat.offsets[0] != 0 || *flat.offsets.last().expect("non-empty") as usize != flat.edges.len()
        {
            return Err("offset table does not span the edge array".into());
        }
        if flat.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offset table is not monotone".into());
        }
        if flat.edges.iter().any(|&e| e as usize >= n) {
            return Err("edge target out of range".into());
        }
        if flat.entry as usize >= n {
            return Err("entry vertex out of range".into());
        }
        if flat.levels[flat.entry as usize] < flat.max_level {
            return Err("entry vertex does not reach the top layer".into());
        }
        if flat.m == 0 {
            return Err("M must be positive".into());
        }
        let mut adjacency = Vec::with_capacity(n);
        let mut list = 0usize;
        for &level in &flat.levels {
            let mut layers = Vec::with_capacity(level as usize + 1);
            for _ in 0..=level {
                let lo = flat.offsets[list] as usize;
                let hi = flat.offsets[list + 1] as usize;
                layers.push(flat.edges[lo..hi].to_vec());
                list += 1;
            }
            adjacency.push(layers);
        }
        Ok(Self {
            adjacency,
            entry: flat.entry,
            max_level: flat.max_level as usize,
            params: HnswParams {
                m: flat.m as usize,
                ef_construction: flat.ef_construction as usize,
                rng_seed: flat.rng_seed,
            },
        })
    }

    /// Top layer of the hierarchy.
    #[must_use]
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    fn insert<O: SimilarityOracle>(&mut self, oracle: &O, node: u32, level: usize) {
        let mut scratch = SearchScratch::default();
        let selected = wave_candidates(
            oracle,
            &self.adjacency,
            &self.params,
            node,
            level,
            self.entry,
            self.max_level,
            &mut scratch,
        );
        for (l, list) in selected.into_iter().enumerate() {
            let cap = if l == 0 { self.params.m * 2 } else { self.params.m };
            for &nb in &list {
                let back = &mut self.adjacency[nb as usize][l];
                back.push(node);
                if back.len() > cap {
                    // Re-prune the overflowing neighbour's list.
                    let owner = nb;
                    let mut scored: Vec<(u32, f32)> =
                        back.iter().map(|&x| (x, oracle.sim(owner, x))).collect();
                    scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                    let pruned = heuristic_select(oracle, owner, &scored, cap);
                    self.adjacency[nb as usize][l] = pruned;
                }
            }
            self.adjacency[node as usize][l] = list;
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = node;
        }
    }

    fn layer_neighbors(&self, node: u32, layer: usize) -> &[u32] {
        layer_neighbors_in(&self.adjacency, node, layer)
    }
}

fn layer_neighbors_in(adj: &[Vec<Vec<u32>>], node: u32, layer: usize) -> &[u32] {
    adj[node as usize].get(layer).map_or(&[], Vec::as_slice)
}

/// ef=1 greedy walk on one layer.
fn greedy_closest_in(
    adj: &[Vec<Vec<u32>>],
    start: u32,
    layer: usize,
    score: &impl Fn(u32) -> f32,
) -> u32 {
    let mut cur = start;
    let mut cur_sim = score(cur);
    loop {
        let mut improved = false;
        for &nb in layer_neighbors_in(adj, cur, layer) {
            let s = score(nb);
            if s > cur_sim {
                cur = nb;
                cur_sim = s;
                improved = true;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// Beam search on one layer; returns scored candidates, best first.  The
/// caller's scratch (visited stamps + pool) is reused across calls.
fn search_layer_in(
    adj: &[Vec<Vec<u32>>],
    start: u32,
    layer: usize,
    ef: usize,
    score: &impl Fn(u32) -> f32,
    scratch: &mut SearchScratch,
) -> Vec<(u32, f32)> {
    let SearchScratch { visited, pool } = scratch;
    pool.reset(ef);
    visited.reset(adj.len());
    visited.mark(start);
    pool.insert(start, score(start));
    while let Some(idx) = pool.best_unvisited() {
        let v = pool.visit(idx);
        for &u in layer_neighbors_in(adj, v, layer) {
            if visited.mark(u) {
                let s = score(u);
                if s > pool.threshold() {
                    pool.insert(u, s);
                }
            }
        }
    }
    pool.top_k(ef)
}

/// The read-only half of one node's insertion: greedy descent from `entry`
/// through the layers above `level`, then per-layer beam search + neighbour
/// selection down to layer 0.  Returns the selected forward list per layer
/// (`result[l]`, `l <= level.min(max_level)`); nothing in the graph is
/// mutated, which is what lets a whole wave of nodes run this concurrently
/// against the frozen prefix.
#[allow(clippy::too_many_arguments)]
fn wave_candidates<O: SimilarityOracle>(
    oracle: &O,
    adj: &[Vec<Vec<u32>>],
    params: &HnswParams,
    node: u32,
    level: usize,
    entry: u32,
    max_level: usize,
    scratch: &mut SearchScratch,
) -> Vec<Vec<u32>> {
    let score = |id: u32| oracle.sim(node, id);
    let mut ep = entry;
    for l in (level + 1..=max_level).rev() {
        ep = greedy_closest_in(adj, ep, l, &score);
    }
    let top = level.min(max_level);
    let mut out = vec![Vec::new(); top + 1];
    for l in (0..=top).rev() {
        let cands = search_layer_in(adj, ep, l, params.ef_construction, &score, scratch);
        let cap = if l == 0 { params.m * 2 } else { params.m };
        out[l] = heuristic_select(oracle, node, &cands, cap);
        if let Some(&(best, _)) = cands.first() {
            ep = best;
        }
    }
    out
}

/// HNSW's neighbour-selection heuristic — the same occlusion rule as MRNG,
/// expressed on scored candidates.
fn heuristic_select<O: SimilarityOracle>(
    oracle: &O,
    owner: u32,
    candidates: &[(u32, f32)],
    cap: usize,
) -> Vec<u32> {
    let mut kept: Vec<(u32, f32)> = Vec::with_capacity(cap);
    for &(id, sim) in candidates {
        if id == owner {
            continue;
        }
        if kept.len() >= cap {
            break;
        }
        if kept.iter().all(|&(k, _)| sim > oracle.sim(k, id)) {
            kept.push((id, sim));
        }
    }
    // Fill up with closest skipped candidates if the heuristic was too
    // aggressive (standard keepPrunedConnections behaviour).
    if kept.len() < cap {
        for &(id, sim) in candidates {
            if id == owner || kept.iter().any(|&(k, _)| k == id) {
                continue;
            }
            kept.push((id, sim));
            if kept.len() >= cap {
                break;
            }
        }
    }
    kept.into_iter().map(|(id, _)| id).collect()
}

impl Hnsw {
    /// [`AnnIndex::search`] with caller-provided scratch (visited stamps +
    /// result pool), so a query batch's steady state allocates nothing —
    /// the serving layer's per-worker entry point.
    pub fn search_with_scratch<S: QueryScorer + ?Sized>(
        &self,
        scorer: &S,
        params: SearchParams,
        scratch: &mut crate::search::SearchScratch,
    ) -> SearchResult {
        let mut stats = SearchStats::default();
        // Descend to layer 1 greedily.
        let mut ep = self.entry;
        let mut ep_sim = scorer.score(self.entry);
        stats.evaluated += 1;
        for l in (1..=self.max_level).rev() {
            loop {
                let mut improved = false;
                for &nb in self.layer_neighbors(ep, l) {
                    stats.evaluated += 1;
                    let s = scorer.score(nb);
                    if s > ep_sim {
                        ep = nb;
                        ep_sim = s;
                        improved = true;
                    }
                }
                stats.hops += 1;
                if !improved {
                    break;
                }
            }
        }
        // Layer-0 beam with the caller's pool size and pruning hook.
        let crate::search::SearchScratch { visited, pool } = scratch;
        pool.reset(params.l);
        visited.reset(self.adjacency.len());
        visited.mark(ep);
        pool.insert(ep, ep_sim);
        while let Some(idx) = pool.best_unvisited() {
            let v = pool.visit(idx);
            stats.hops += 1;
            for &u in self.layer_neighbors(v, 0) {
                if visited.mark(u) {
                    stats.evaluated += 1;
                    match scorer.score_pruned(u, pool.threshold()) {
                        Some(s) => {
                            pool.insert(u, s);
                        }
                        None => stats.pruned += 1,
                    }
                }
            }
        }
        SearchResult { results: pool.top_k(params.k), stats }
    }
}

impl AnnIndex for Hnsw {
    fn search(&self, scorer: &dyn QueryScorer, params: SearchParams, _rng_seed: u64) -> SearchResult {
        self.search_with_scratch(scorer, params, &mut crate::search::SearchScratch::default())
    }

    fn len(&self) -> usize {
        self.adjacency.len()
    }

    fn bytes(&self) -> usize {
        self.adjacency
            .iter()
            .map(|levels| {
                levels.iter().map(|l| l.len() * 4 + std::mem::size_of::<Vec<u32>>()).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::GridOracle;
    use crate::FnScorer;

    #[test]
    fn hnsw_finds_near_neighbors_on_grid() {
        let oracle = GridOracle::new(12);
        let index = Hnsw::build(&oracle, HnswParams { m: 8, ef_construction: 32, rng_seed: 3 });
        let mut hits = 0;
        let total = 28;
        for t in 0..total {
            let target = (t * 7) as u32 % oracle.len() as u32;
            let scorer = FnScorer(|id| oracle.sim(id, target));
            let res = index.search(&scorer, SearchParams::seed_only(1, 16), 0);
            if res.results[0].0 == target {
                hits += 1;
            }
        }
        assert!(hits as f64 / total as f64 > 0.9, "recall {hits}/{total}");
    }

    #[test]
    fn hierarchy_has_multiple_levels_for_large_n() {
        let oracle = GridOracle::new(20); // 400 points
        let index = Hnsw::build(&oracle, HnswParams { m: 6, ef_construction: 24, rng_seed: 1 });
        assert!(index.max_level() >= 1, "400 points should produce > 1 layer");
        assert_eq!(AnnIndex::len(&index), 400);
        assert!(index.bytes() > 0);
    }

    #[test]
    fn degree_caps_hold_on_upper_layers() {
        let oracle = GridOracle::new(15);
        let m = 5;
        let index = Hnsw::build(&oracle, HnswParams { m, ef_construction: 24, rng_seed: 7 });
        for node in 0..index.adjacency.len() {
            for (level, nbrs) in index.adjacency[node].iter().enumerate() {
                let cap = if level == 0 { m * 2 } else { m };
                assert!(nbrs.len() <= cap, "node {node} level {level}: {}", nbrs.len());
            }
        }
    }

    #[test]
    fn flat_round_trip_preserves_structure_and_search() {
        let oracle = GridOracle::new(14);
        let index = Hnsw::build(&oracle, HnswParams { m: 6, ef_construction: 32, rng_seed: 9 });
        let flat = index.to_flat();
        assert_eq!(flat.levels.len(), AnnIndex::len(&index));
        let back = Hnsw::from_flat(&flat).unwrap();
        assert_eq!(back.adjacency, index.adjacency);
        assert_eq!(back.entry(), index.entry());
        assert_eq!(back.max_level(), index.max_level());
        for target in [0u32, 41, 97, 195] {
            let scorer = FnScorer(|id| oracle.sim(id, target));
            let a = index.search(&scorer, SearchParams::seed_only(3, 20), 0);
            let b = back.search(&scorer, SearchParams::seed_only(3, 20), 0);
            assert_eq!(a.results, b.results, "target {target}");
        }
    }

    #[test]
    fn from_flat_rejects_corrupt_snapshots() {
        let oracle = GridOracle::new(6);
        let index = Hnsw::build(&oracle, HnswParams { m: 4, ef_construction: 16, rng_seed: 2 });
        let good = index.to_flat();
        let mut bad = good.clone();
        bad.edges[0] = 10_000; // target out of range
        assert!(Hnsw::from_flat(&bad).is_err());
        let mut bad = good.clone();
        bad.offsets.pop();
        assert!(Hnsw::from_flat(&bad).is_err());
        let mut bad = good.clone();
        bad.entry = 9_999;
        assert!(Hnsw::from_flat(&bad).is_err());
        let mut bad = good;
        bad.levels.push(0); // phantom node with no lists
        assert!(Hnsw::from_flat(&bad).is_err());
    }

    #[test]
    fn wave_build_is_thread_count_invariant() {
        let oracle = crate::testutil::RandOracle::new(2_000, 12, 0xBEEF);
        let flats: Vec<HnswFlat> = [1usize, 2, 4]
            .iter()
            .map(|&t| {
                Hnsw::build_with_threads(
                    &oracle,
                    HnswParams { m: 10, ef_construction: 48, rng_seed: 11 },
                    t,
                )
                .to_flat()
            })
            .collect();
        assert_eq!(flats[0], flats[1], "T=1 vs T=2");
        assert_eq!(flats[0], flats[2], "T=1 vs T=4");
        // And the default entry point is the T-invariant algorithm.
        let via_default =
            Hnsw::build(&oracle, HnswParams { m: 10, ef_construction: 48, rng_seed: 11 }).to_flat();
        assert_eq!(flats[0], via_default);
    }

    #[test]
    fn wave_build_recall_parity_with_sequential() {
        // The wave schedule replaced sequential insertion as the canonical
        // algorithm; this pins its recall@10 against the exact oracle to
        // within 0.005 of the legacy path at identical beam width.
        let oracle = crate::testutil::RandOracle::new(4_000, 12, 0x5EED);
        let params = HnswParams { m: 12, ef_construction: 80, rng_seed: 5 };
        let wave = Hnsw::build_with_threads(&oracle, params, 2);
        let seq = Hnsw::build_sequential(&oracle, params);
        let recall = |index: &Hnsw| {
            let mut hits = 0usize;
            let mut total = 0usize;
            for q in 0..200u32 {
                let target = (q * 19) % oracle.len() as u32;
                let exact = oracle.exact_top_k(target, 10);
                let scorer = FnScorer(|id| oracle.sim(id, target));
                let res = index.search(&scorer, SearchParams::seed_only(10, 64), 0);
                hits += res.results.iter().filter(|(id, _)| exact.contains(id)).count();
                total += 10;
            }
            hits as f64 / total as f64
        };
        let r_wave = recall(&wave);
        let r_seq = recall(&seq);
        assert!(
            r_wave >= r_seq - 0.005,
            "wave recall {r_wave:.4} fell more than 0.005 below sequential {r_seq:.4}"
        );
        assert!(r_seq > 0.9, "sequential baseline suspiciously low: {r_seq:.4}");
    }

    #[test]
    fn wave_build_respects_degree_caps_and_round_trips() {
        let oracle = crate::testutil::RandOracle::new(1_500, 8, 7);
        let m = 6;
        let index = Hnsw::build_with_threads(
            &oracle,
            HnswParams { m, ef_construction: 32, rng_seed: 3 },
            4,
        );
        for node in 0..index.adjacency.len() {
            for (level, nbrs) in index.adjacency[node].iter().enumerate() {
                let cap = if level == 0 { m * 2 } else { m };
                assert!(nbrs.len() <= cap, "node {node} level {level}: {}", nbrs.len());
                for &nb in nbrs {
                    assert_ne!(nb, node as u32, "self edge at node {node}");
                    assert!((nb as usize) < index.adjacency.len());
                }
            }
        }
        let back = Hnsw::from_flat(&index.to_flat()).unwrap();
        assert_eq!(back.adjacency, index.adjacency);
    }

    #[test]
    fn search_results_sorted_and_k_sized() {
        let oracle = GridOracle::new(10);
        let index = Hnsw::build(&oracle, HnswParams::default());
        let scorer = FnScorer(|id| oracle.sim(id, 55));
        let res = index.search(&scorer, SearchParams::seed_only(5, 20), 0);
        assert_eq!(res.results.len(), 5);
        for w in res.results.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
