//! Proximity-graph indexes for the MUST reproduction.
//!
//! The paper (Section VII-A) builds its *fused index* through a general
//! pipeline of five components — ① initialisation, ② candidate acquisition,
//! ③ neighbour selection, ④ seed preprocessing, ⑤ connectivity — and shows
//! that components of existing proximity graphs (KGraph, NSG, NSSG, HNSW,
//! Vamana, HCNNG) can be re-assembled inside it.  This crate implements the
//! pipeline and all of those algorithms, fully generic over an abstract
//! [`SimilarityOracle`], so the same code indexes unimodal vectors *and*
//! MUST's weighted multi-vector (joint-similarity) points.
//!
//! Conventions:
//! * Similarity is *maximised* (inner product of virtual points, Lemma 1).
//! * Vertices are `u32` ids, `0..oracle.len()`.
//! * Search follows Algorithm 2 of the paper (best-first routing over a
//!   fixed-size result pool of size `l`), with a hook for the incremental
//!   multi-vector pruning of Lemma 4 via [`QueryScorer::score_pruned`].

//!
//! See `docs/ARCHITECTURE.md` at the repository root for the crate DAG
//! and a one-paragraph tour of every crate.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod connect;
pub mod csr;
pub mod hcnng;
pub mod hnsw;
pub mod nndescent;
pub mod par;
pub mod pipeline;
pub mod pool;
pub mod quality;
pub mod search;
pub mod seed;
pub mod select;

pub use pipeline::{GraphRecipe, PipelineBuilder, PipelineStats};
pub use pool::Pool;
pub use search::{SearchParams, SearchResult, SearchScratch, SearchStats};

/// A similarity oracle over `len()` objects: everything graph construction
/// needs.  Similarities are symmetric and *higher means closer*.
pub trait SimilarityOracle: Sync {
    /// Number of objects.
    fn len(&self) -> usize;

    /// Whether the oracle is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Similarity between objects `a` and `b`.
    fn sim(&self, a: u32, b: u32) -> f32;

    /// Self-similarity `sim(a, a)` — the squared norm of the virtual point.
    ///
    /// For unit-norm single vectors this is 1; for MUST's concatenated
    /// points it is the sum of squared weights.  Needed by the angle-based
    /// (NSSG) selection, which converts similarities to Euclidean side
    /// lengths via `d^2(a, b) = sim(a,a) + sim(b,b) - 2 sim(a,b)`.
    fn self_sim(&self, _a: u32) -> f32 {
        1.0
    }

    /// Similarity of object `a` to the centroid of all objects — used by
    /// seed preprocessing (component ④): the vertex maximising this is the
    /// fixed search seed.
    fn sim_to_centroid(&self, a: u32) -> f32;
}

/// Scoring interface a query presents to the search routine.
///
/// `score_pruned` is the hook for the paper's multi-vector computation
/// optimisation (Lemma 4): return `None` when the candidate is provably
/// `<= threshold`, else the exact score.  The default implementation simply
/// computes the exact score (no pruning).
pub trait QueryScorer {
    /// Exact similarity of object `id` to the query.
    fn score(&self, id: u32) -> f32;

    /// Similarity with a prune threshold; `None` means "provably not better
    /// than `threshold`, discarded early".
    fn score_pruned(&self, id: u32, threshold: f32) -> Option<f32> {
        let s = self.score(id);
        if s <= threshold {
            None
        } else {
            Some(s)
        }
    }
}

/// Blanket scorer for ad-hoc closures (used heavily in tests).
pub struct FnScorer<F: Fn(u32) -> f32>(pub F);

impl<F: Fn(u32) -> f32> QueryScorer for FnScorer<F> {
    fn score(&self, id: u32) -> f32 {
        (self.0)(id)
    }
}

/// An adjacency-list proximity graph plus the fixed search seed
/// (the output of Algorithm 1).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Graph {
    neighbors: Vec<Vec<u32>>,
    seed: u32,
}

impl Graph {
    /// Wraps adjacency lists and a seed vertex.
    #[must_use]
    pub fn new(neighbors: Vec<Vec<u32>>, seed: u32) -> Self {
        assert!(!neighbors.is_empty(), "graph must not be empty");
        assert!((seed as usize) < neighbors.len(), "seed out of range");
        Self { neighbors, seed }
    }

    /// Number of vertices.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Whether the graph has no vertices.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Out-neighbours of `v`.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[v as usize]
    }

    /// The fixed search seed (component ④).
    #[inline]
    #[must_use]
    pub fn seed(&self) -> u32 {
        self.seed
    }

    /// Mutable access for construction components.
    pub(crate) fn neighbors_mut(&mut self, v: u32) -> &mut Vec<u32> {
        &mut self.neighbors[v as usize]
    }

    /// Total number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum()
    }

    /// Mean out-degree.
    #[must_use]
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.num_edges() as f64 / self.len() as f64
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        self.neighbors.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Approximate in-memory size of the adjacency structure in bytes
    /// (what Fig. 7 reports as "index size").
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.num_edges() * std::mem::size_of::<u32>()
            + self.len() * std::mem::size_of::<Vec<u32>>()
    }
}

/// A search-capable index: flat graphs and HNSW both implement this, which
/// is how MUST swaps graph backends (Fig. 10(b)).
pub trait AnnIndex: Send + Sync {
    /// Approximate top-`k` search; `l >= k` is the result-pool size
    /// (accuracy/efficiency knob of Algorithm 2).
    fn search(
        &self,
        scorer: &dyn QueryScorer,
        params: SearchParams,
        rng_seed: u64,
    ) -> SearchResult;

    /// Number of indexed objects.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index memory footprint in bytes.
    fn bytes(&self) -> usize;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::SimilarityOracle;

    /// A 1-D line of points at positions `0, 1, 2, ...` with similarity
    /// `-|a - b|` — handy because nearest neighbours are obvious.
    pub struct LineOracle(pub usize);

    impl SimilarityOracle for LineOracle {
        fn len(&self) -> usize {
            self.0
        }
        fn sim(&self, a: u32, b: u32) -> f32 {
            -((a as f32) - (b as f32)).abs()
        }
        fn self_sim(&self, _a: u32) -> f32 {
            0.0
        }
        fn sim_to_centroid(&self, a: u32) -> f32 {
            let c = (self.0 as f32 - 1.0) / 2.0;
            -((a as f32) - c).abs()
        }
    }

    /// Points on a 2-D grid embedded via coordinates, similarity = -L2^2.
    pub struct GridOracle {
        pub pts: Vec<(f32, f32)>,
    }

    impl GridOracle {
        pub fn new(side: usize) -> Self {
            let mut pts = Vec::with_capacity(side * side);
            for i in 0..side {
                for j in 0..side {
                    pts.push((i as f32, j as f32));
                }
            }
            Self { pts }
        }
        pub fn centroid(&self) -> (f32, f32) {
            let n = self.pts.len() as f32;
            let (sx, sy) = self
                .pts
                .iter()
                .fold((0.0, 0.0), |(sx, sy), (x, y)| (sx + x, sy + y));
            (sx / n, sy / n)
        }
    }

    impl SimilarityOracle for GridOracle {
        fn len(&self) -> usize {
            self.pts.len()
        }
        fn sim(&self, a: u32, b: u32) -> f32 {
            let (ax, ay) = self.pts[a as usize];
            let (bx, by) = self.pts[b as usize];
            -((ax - bx).powi(2) + (ay - by).powi(2))
        }
        fn self_sim(&self, _a: u32) -> f32 {
            0.0
        }
        fn sim_to_centroid(&self, a: u32) -> f32 {
            let (cx, cy) = self.centroid();
            let (ax, ay) = self.pts[a as usize];
            -((ax - cx).powi(2) + (ay - cy).powi(2))
        }
    }

    /// Random unit vectors with dot-product similarity: ties are
    /// measure-zero (unlike the integer grids above) and exact top-k
    /// ground truth is one linear scan away — the oracle recall tests use.
    pub struct RandOracle {
        pub vecs: Vec<Vec<f32>>,
        centroid: Vec<f32>,
    }

    impl RandOracle {
        pub fn new(n: usize, dim: usize, seed: u64) -> Self {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let vecs: Vec<Vec<f32>> = (0..n)
                .map(|_| {
                    let mut v: Vec<f32> =
                        (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
                    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                    for x in &mut v {
                        *x /= norm;
                    }
                    v
                })
                .collect();
            let mut centroid = vec![0.0f32; dim];
            for v in &vecs {
                for (c, x) in centroid.iter_mut().zip(v) {
                    *c += x / n as f32;
                }
            }
            Self { vecs, centroid }
        }

        /// Exact top-`k` ids for the query "most similar to `target`",
        /// including `target` itself, by brute-force scan.
        pub fn exact_top_k(&self, target: u32, k: usize) -> Vec<u32> {
            let mut scored: Vec<(u32, f32)> =
                (0..self.len() as u32).map(|id| (id, self.sim(id, target))).collect();
            scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            scored.truncate(k);
            scored.into_iter().map(|(id, _)| id).collect()
        }
    }

    impl SimilarityOracle for RandOracle {
        fn len(&self) -> usize {
            self.vecs.len()
        }
        fn sim(&self, a: u32, b: u32) -> f32 {
            self.vecs[a as usize].iter().zip(&self.vecs[b as usize]).map(|(x, y)| x * y).sum()
        }
        fn self_sim(&self, a: u32) -> f32 {
            self.sim(a, a)
        }
        fn sim_to_centroid(&self, a: u32) -> f32 {
            self.vecs[a as usize].iter().zip(&self.centroid).map(|(x, c)| x * c).sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_accessors() {
        let g = Graph::new(vec![vec![1], vec![0, 2], vec![1]], 1);
        assert_eq!(g.len(), 3);
        assert_eq!(g.seed(), 1);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.num_edges(), 4);
        assert!((g.mean_degree() - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(g.max_degree(), 2);
        assert!(g.bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "seed out of range")]
    fn bad_seed_panics() {
        let _ = Graph::new(vec![vec![]], 3);
    }

    #[test]
    fn default_score_pruned_thresholds() {
        let s = FnScorer(|id| id as f32);
        assert_eq!(s.score_pruned(5, 10.0), None);
        assert_eq!(s.score_pruned(5, 1.0), Some(5.0));
    }
}
