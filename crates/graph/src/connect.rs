//! Component ⑤ — connectivity (Line 19 of Algorithm 1): a BFS from the
//! seed, bridging every unreached region back into the graph so all
//! vertices are reachable.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, SimilarityOracle};

/// Statistics of a connectivity pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectivityStats {
    /// Vertices reachable from the seed before patching.
    pub reachable_before: usize,
    /// Bridge edges added.
    pub bridges_added: usize,
}

/// BFS over `graph` from `start`, marking `visited`; returns how many new
/// vertices were reached.
fn bfs(graph: &Graph, start: u32, visited: &mut [bool]) -> usize {
    let mut reached = 0;
    let mut queue = VecDeque::new();
    if !visited[start as usize] {
        visited[start as usize] = true;
        reached += 1;
        queue.push_back(start);
    }
    while let Some(v) = queue.pop_front() {
        for &u in graph.neighbors(v) {
            if !visited[u as usize] {
                visited[u as usize] = true;
                reached += 1;
                queue.push_back(u);
            }
        }
    }
    reached
}

/// Ensures every vertex is reachable from the seed: repeatedly finds an
/// unreached vertex, connects it from the most similar vertex among a
/// random sample of reached ones (plus the seed), and resumes the BFS.
pub fn ensure_connectivity<O: SimilarityOracle>(
    graph: &mut Graph,
    oracle: &O,
    sample: usize,
    rng_seed: u64,
) -> ConnectivityStats {
    let n = graph.len();
    let mut visited = vec![false; n];
    let mut stats = ConnectivityStats::default();
    let mut total = bfs(graph, graph.seed(), &mut visited);
    stats.reachable_before = total;
    if total == n {
        return stats;
    }
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut reached_pool: Vec<u32> =
        visited.iter().enumerate().filter(|(_, v)| **v).map(|(i, _)| i as u32).collect();
    let mut cursor = 0usize;
    while total < n {
        // Next unreached vertex.
        while cursor < n && visited[cursor] {
            cursor += 1;
        }
        let orphan = cursor as u32;
        // Best bridge head: most similar among sampled reached vertices.
        // A sample budget covering the whole pool degrades to an exact
        // scan — sampling with replacement would otherwise miss vertices.
        let mut best = graph.seed();
        let mut best_sim = oracle.sim(best, orphan);
        let consider = |cand: u32, best: &mut u32, best_sim: &mut f32| {
            let s = oracle.sim(cand, orphan);
            if s > *best_sim {
                *best_sim = s;
                *best = cand;
            }
        };
        if sample >= reached_pool.len() {
            for &cand in &reached_pool {
                consider(cand, &mut best, &mut best_sim);
            }
        } else {
            for _ in 0..sample {
                let cand = reached_pool[rng.random_range(0..reached_pool.len())];
                consider(cand, &mut best, &mut best_sim);
            }
        }
        graph.neighbors_mut(best).push(orphan);
        stats.bridges_added += 1;
        total += bfs(graph, orphan, &mut visited);
        // Keeping the sample pool slightly stale is fine: it only biases
        // which reached vertex hosts the next bridge.
        reached_pool.push(orphan);
    }
    stats
}

/// Number of vertices reachable from the seed (diagnostic used by tests and
/// the index audit).
#[must_use]
pub fn reachable_from_seed(graph: &Graph) -> usize {
    let mut visited = vec![false; graph.len()];
    bfs(graph, graph.seed(), &mut visited)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::LineOracle;

    fn disconnected_graph() -> Graph {
        // Two components: {0,1,2} chained and {3,4} chained; seed = 0.
        Graph::new(vec![vec![1], vec![0, 2], vec![1], vec![4], vec![3]], 0)
    }

    #[test]
    fn detects_full_connectivity() {
        let mut g = Graph::new(vec![vec![1], vec![0]], 0);
        let oracle = LineOracle(2);
        let stats = ensure_connectivity(&mut g, &oracle, 4, 1);
        assert_eq!(stats.reachable_before, 2);
        assert_eq!(stats.bridges_added, 0);
    }

    #[test]
    fn bridges_disconnected_components() {
        let mut g = disconnected_graph();
        let oracle = LineOracle(5);
        assert_eq!(reachable_from_seed(&g), 3);
        let stats = ensure_connectivity(&mut g, &oracle, 4, 1);
        assert_eq!(stats.reachable_before, 3);
        assert!(stats.bridges_added >= 1);
        assert_eq!(reachable_from_seed(&g), 5);
    }

    #[test]
    fn bridge_head_prefers_similar_vertices() {
        // Orphan 3 is most similar to reached vertex 2 on the line; with a
        // generous sample the bridge should come from vertex 2.
        let mut g = disconnected_graph();
        let oracle = LineOracle(5);
        ensure_connectivity(&mut g, &oracle, 64, 9);
        let from2 = g.neighbors(2).contains(&3);
        let from1 = g.neighbors(1).contains(&3);
        let from0 = g.neighbors(0).contains(&3);
        assert!(from2 || from1 || from0);
        assert!(from2, "nearest reached vertex should host the bridge");
    }

    #[test]
    fn handles_fully_isolated_vertices() {
        let mut g = Graph::new(vec![vec![], vec![], vec![]], 1);
        let oracle = LineOracle(3);
        let stats = ensure_connectivity(&mut g, &oracle, 2, 3);
        assert_eq!(stats.reachable_before, 1);
        assert_eq!(reachable_from_seed(&g), 3);
        assert_eq!(stats.bridges_added, 2);
    }
}
