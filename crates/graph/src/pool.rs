//! The fixed-size result pool `R` of the joint search (Algorithm 2).
//!
//! A sorted (descending similarity) array of at most `l` entries with a
//! visited flag per entry — the classic proximity-graph search pool.  The
//! pool's worst similarity once full is the pruning threshold fed to
//! [`crate::QueryScorer::score_pruned`] (Lemma 4).

/// One pool entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolEntry {
    /// Similarity to the query (higher = better).
    pub sim: f32,
    /// Object id.
    pub id: u32,
    /// Whether the search already expanded this vertex.
    pub visited: bool,
}

/// Fixed-capacity result pool, sorted by descending similarity.
#[derive(Debug, Clone)]
pub struct Pool {
    entries: Vec<PoolEntry>,
    capacity: usize,
}

impl Default for Pool {
    /// An empty pool of capacity 1; callers reusing a pool as search
    /// scratch size it per query with [`Pool::reset`].
    fn default() -> Self {
        Self::new(1)
    }
}

impl Pool {
    /// Creates a pool of capacity `l`.
    #[must_use]
    pub fn new(l: usize) -> Self {
        assert!(l > 0, "pool capacity must be positive");
        Self { entries: Vec::with_capacity(l + 1), capacity: l }
    }

    /// Clears the pool and re-sizes it to capacity `l`, keeping the entry
    /// allocation — the steady state of a query batch allocates nothing.
    pub fn reset(&mut self, l: usize) {
        assert!(l > 0, "pool capacity must be positive");
        self.entries.clear();
        // `reserve` is relative to the (now zero) length, so this
        // guarantees room for the transient l+1-th entry `insert` holds
        // before evicting — no growth inside the search loop.
        self.entries.reserve(l + 1);
        self.capacity = l;
    }

    /// Capacity `l`.
    #[inline]
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool holds no entries.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the pool is at capacity.
    #[inline]
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// The similarity of the worst entry when full, else `-inf`:
    /// the safe discard threshold for new candidates.
    #[inline]
    #[must_use]
    pub fn threshold(&self) -> f32 {
        if self.is_full() {
            self.entries[self.entries.len() - 1].sim
        } else {
            f32::NEG_INFINITY
        }
    }

    /// Inserts `(id, sim)` keeping the pool sorted; evicts the worst entry
    /// when over capacity.  Returns `true` if the entry was kept.
    ///
    /// The caller is responsible for not inserting the same id twice (the
    /// search's visited set guarantees this).
    pub fn insert(&mut self, id: u32, sim: f32) -> bool {
        if self.is_full() && sim <= self.threshold() {
            return false;
        }
        let pos = self
            .entries
            .partition_point(|e| e.sim >= sim);
        self.entries.insert(pos, PoolEntry { sim, id, visited: false });
        if self.entries.len() > self.capacity {
            self.entries.pop();
        }
        true
    }

    /// Index of the best unvisited entry, if any (Line 5 of Algorithm 2).
    #[must_use]
    pub fn best_unvisited(&self) -> Option<usize> {
        self.entries.iter().position(|e| !e.visited)
    }

    /// Marks entry `idx` as visited and returns its id.
    pub fn visit(&mut self, idx: usize) -> u32 {
        self.entries[idx].visited = true;
        self.entries[idx].id
    }

    /// Entry access (tests, diagnostics).
    #[must_use]
    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// The best `k` `(id, sim)` pairs, descending.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(u32, f32)> {
        self.entries.iter().take(k).map(|e| (e.id, e.sim)).collect()
    }

    /// Sum of all pool similarities — the monotone function `f(eta)` of
    /// Lemma 3, exposed for the property test that pins the lemma.
    #[must_use]
    pub fn sim_sum(&self) -> f64 {
        self.entries.iter().map(|e| e.sim as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_descending_order() {
        let mut p = Pool::new(3);
        for (id, sim) in [(1, 0.5), (2, 0.9), (3, 0.1), (4, 0.7)] {
            p.insert(id, sim);
        }
        let sims: Vec<f32> = p.entries().iter().map(|e| e.sim).collect();
        assert_eq!(sims, vec![0.9, 0.7, 0.5]);
        assert!(p.is_full());
    }

    #[test]
    fn full_pool_rejects_worse_candidates() {
        let mut p = Pool::new(2);
        assert!(p.insert(1, 0.5));
        assert!(p.insert(2, 0.8));
        assert!(!p.insert(3, 0.4), "worse than threshold must be rejected");
        assert!((p.threshold() - 0.5).abs() < 1e-9);
        assert!(p.insert(4, 0.6));
        assert!((p.threshold() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn threshold_is_neg_inf_until_full() {
        let mut p = Pool::new(4);
        assert_eq!(p.threshold(), f32::NEG_INFINITY);
        p.insert(0, 0.1);
        assert_eq!(p.threshold(), f32::NEG_INFINITY);
    }

    #[test]
    fn visiting_walks_best_first() {
        let mut p = Pool::new(3);
        p.insert(10, 0.2);
        p.insert(20, 0.9);
        p.insert(30, 0.5);
        let i = p.best_unvisited().unwrap();
        assert_eq!(p.visit(i), 20);
        let i = p.best_unvisited().unwrap();
        assert_eq!(p.visit(i), 30);
        let i = p.best_unvisited().unwrap();
        assert_eq!(p.visit(i), 10);
        assert!(p.best_unvisited().is_none());
    }

    #[test]
    fn eviction_never_drops_visited_invariant() {
        // A visited entry evicted by better candidates must not resurface.
        let mut p = Pool::new(2);
        p.insert(1, 0.1);
        let i = p.best_unvisited().unwrap();
        p.visit(i);
        p.insert(2, 0.5);
        p.insert(3, 0.6); // evicts id 1 (visited)
        assert_eq!(p.len(), 2);
        assert!(p.entries().iter().all(|e| e.id != 1));
    }

    #[test]
    fn sim_sum_monotone_under_replacement() {
        // Lemma 3 core step: replacing the worst with a better candidate
        // cannot decrease the pool's similarity sum.
        let mut p = Pool::new(3);
        p.insert(1, 0.1);
        p.insert(2, 0.2);
        p.insert(3, 0.3);
        let before = p.sim_sum();
        p.insert(4, 0.25);
        assert!(p.sim_sum() >= before);
    }

    #[test]
    fn reset_reserves_for_the_transient_overflow_entry() {
        // A fresh default pool re-sized up must already have room for the
        // l+1-th entry `insert` briefly holds — no growth mid-search.
        let mut p = Pool::default();
        p.reset(100);
        assert!(p.entries.capacity() >= 101, "capacity {}", p.entries.capacity());
        for id in 0..150u32 {
            p.insert(id, id as f32);
        }
        assert_eq!(p.len(), 100);
        assert!(p.entries.capacity() >= 101);
    }

    #[test]
    fn top_k_truncates() {
        let mut p = Pool::new(5);
        for id in 0..4 {
            p.insert(id, id as f32);
        }
        let top = p.top_k(2);
        assert_eq!(top, vec![(3, 3.0), (2, 2.0)]);
    }
}
