//! Simulated encoders for the MUST reproduction.
//!
//! The paper embeds every modality of every object with trained deep
//! encoders (ResNet, LSTM, Transformer, GRU, ordinal Encoding) and fuses
//! image–text pairs with trained multimodal encoders (TIRG, CLIP, MPC).
//! Shipping and running those models offline is impossible, so this crate
//! substitutes a *latent-semantics simulator* that reproduces the geometric
//! properties the paper actually depends on (see `DESIGN.md` §1):
//!
//! 1. Every object/query content owns a **latent vector** split into a
//!    *class* part (what the thing is: noun, identity, garment) and an
//!    *attribute* part (its state: adjective, facial attributes, fabric).
//! 2. A **unimodal encoder** is a seeded random projection of the latent
//!    into the encoder's output space plus encoder-specific Gaussian noise
//!    (its quality), then L2 normalisation.  The noise is deterministic per
//!    `(encoder, content)` — the same image always embeds to the same
//!    vector, exactly like a real frozen model.
//! 3. A **multimodal encoder** composes a pseudo-latent from the query's
//!    latents — keeping the class of the grounded (image-like) inputs and
//!    replacing a `fidelity` fraction of their attributes with the
//!    descriptive (text-like) inputs' attributes — and then projects it with
//!    its visual backbone *plus an extra modality-gap noise term*.  The
//!    imperfect `fidelity` and the gap noise are what make Joint Embedding
//!    a lossy, limited-recall baseline in the paper (§III, §VIII-B).
//!
//! Per-encoder noise magnitudes are calibrated so the paper's encoder
//! ordering holds (CLIP > TIRG > MPC as composers; ResNet50 > ResNet17;
//! LSTM > Transformer on attribute text; structured Encoding is
//! near-noiseless but inherently ambiguous).
//!
//! Everything is behind the pluggable [`Embedder`] / [`Composer`] traits, so
//! a real ONNX-backed encoder could be dropped in without touching the rest
//! of the system — the paper's "pluggable embedding" property (§V).

//!
//! See `docs/ARCHITECTURE.md` at the repository root for the crate DAG
//! and a one-paragraph tour of every crate.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod latent;
mod multimodal;
pub mod noise;
mod registry;
mod unimodal;

pub use latent::{Latent, LatentKind, LatentSpace};
pub use multimodal::{ComposerKind, MultimodalEncoder};
pub use registry::{EncoderConfig, EncoderRegistry, TargetEncoding};
pub use unimodal::{UnimodalEncoder, UnimodalKind};

/// A pluggable unimodal embedder: content latent → unit vector.
///
/// Implemented by the simulated [`UnimodalEncoder`]s; any future encoder
/// (e.g. an ONNX runtime wrapper) only needs to implement this trait.
pub trait Embedder: Send + Sync {
    /// Human-readable encoder name (as it appears in the paper's tables).
    fn name(&self) -> &str;
    /// Output dimensionality.
    fn dim(&self) -> usize;
    /// Embeds one content latent into a unit-norm vector.
    fn embed(&self, latent: &Latent) -> Vec<f32>;
}

/// A pluggable multimodal composer: a set of content latents → one unit
/// vector *in the target-modality vector space* (the paper's
/// `Phi(q_0, ..., q_{t-1})`, Eq. 3).
pub trait Composer: Send + Sync {
    /// Human-readable composer name.
    fn name(&self) -> &str;
    /// Output dimensionality (must equal the target modality's).
    fn dim(&self) -> usize;
    /// Fuses the latents (target first) into a composition vector.
    fn compose(&self, latents: &[&Latent]) -> Vec<f32>;
    /// Embeds a single corpus-side content with the composer's backbone
    /// (how JE embeds `{phi_0(o_0) | o in S}` consistently with `Phi`).
    fn embed_single(&self, latent: &Latent) -> Vec<f32>;
}
