//! Simulated unimodal encoders (the paper's `phi_i`, Appendix B).

use must_vector::kernels;
use serde::{Deserialize, Serialize};

use crate::noise::{content_hash, projection_matrix, GaussianStream};
use crate::{Embedder, Latent, LatentSpace};

/// The unimodal encoder families used in the paper's experiments
/// (Appendix B), with the output dimensionality and noise level we
/// calibrated for each (higher noise = worse encoder = higher SME).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnimodalKind {
    /// 17-layer ResNet image encoder — weaker visual backbone.
    ResNet17,
    /// 50-layer ResNet image encoder — stronger visual backbone.
    ResNet50,
    /// LSTM text encoder — the stronger free-text encoder on
    /// attribute-style descriptions (Tab. III).
    Lstm,
    /// Transformer (BERT-style) text encoder — noisier than LSTM on the
    /// paper's short state descriptions (Tab. III).
    Transformer,
    /// GRU text encoder (used on MS-COCO).
    Gru,
    /// Ordinal/structured attribute encoding — near-noiseless but
    /// inherently ambiguous (many objects share identical attribute text).
    Encoding,
    /// CLIP's visual tower used as a unimodal image encoder
    /// (the corpus-side backbone of the CLIP composer).
    ClipVisual,
    /// TIRG's visual backbone.
    TirgVisual,
    /// MPC's visual backbone.
    MpcVisual,
}

impl UnimodalKind {
    /// Display name matching the paper's tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::ResNet17 => "ResNet17",
            Self::ResNet50 => "ResNet50",
            Self::Lstm => "LSTM",
            Self::Transformer => "Transformer",
            Self::Gru => "GRU",
            Self::Encoding => "Encoding",
            Self::ClipVisual => "CLIP-visual",
            Self::TirgVisual => "TIRG-visual",
            Self::MpcVisual => "MPC-visual",
        }
    }

    /// Output dimensionality of the simulated encoder.
    #[must_use]
    pub fn dim(self) -> usize {
        match self {
            Self::ResNet17 | Self::ResNet50 | Self::ClipVisual | Self::TirgVisual | Self::MpcVisual => 64,
            Self::Lstm | Self::Transformer | Self::Gru | Self::Encoding => 32,
        }
    }

    /// Calibrated encoder-noise standard deviation (relative to the
    /// unit-norm signal).  Chosen so the paper's encoder ordering holds.
    #[must_use]
    pub fn sigma(self) -> f32 {
        match self {
            Self::ResNet17 => 0.90,
            Self::ResNet50 => 0.60,
            Self::ClipVisual => 0.50,
            Self::TirgVisual => 0.70,
            Self::MpcVisual => 0.70,
            Self::Lstm => 0.40,
            Self::Transformer => 0.80,
            Self::Gru => 0.55,
            Self::Encoding => 0.05,
        }
    }

    /// A stable per-kind seed component, so two encoders of the same kind
    /// built with the same dataset seed share their projection.
    fn seed_tag(self) -> u64 {
        match self {
            Self::ResNet17 => 0x11,
            Self::ResNet50 => 0x22,
            Self::Lstm => 0x33,
            Self::Transformer => 0x44,
            Self::Gru => 0x55,
            Self::Encoding => 0x66,
            Self::ClipVisual => 0x77,
            Self::TirgVisual => 0x88,
            Self::MpcVisual => 0x99,
        }
    }
}

/// A simulated unimodal encoder: seeded random projection + per-content
/// deterministic Gaussian noise + L2 normalisation.
#[derive(Debug, Clone)]
pub struct UnimodalEncoder {
    kind: UnimodalKind,
    space: LatentSpace,
    /// Row-major `dim x space.total()` projection.
    projection: Vec<f32>,
    seed: u64,
    /// Noise override (defaults to `kind.sigma()`); dataset generators may
    /// scale it to model harder corpora.
    sigma: f32,
}

impl UnimodalEncoder {
    /// Builds the encoder for `kind` over `space`; `seed` namespaces the
    /// projection and the per-content noise (one seed per dataset).
    #[must_use]
    pub fn new(kind: UnimodalKind, space: LatentSpace, seed: u64) -> Self {
        let seed = seed ^ kind.seed_tag().wrapping_mul(0x2545_F491_4F6C_DD1D);
        Self {
            kind,
            space,
            projection: projection_matrix(kind.dim(), space.total(), seed),
            seed,
            sigma: kind.sigma(),
        }
    }

    /// Same encoder with a different noise level (dataset difficulty knob).
    #[must_use]
    pub fn with_sigma(mut self, sigma: f32) -> Self {
        self.sigma = sigma;
        self
    }

    /// The encoder family.
    #[must_use]
    pub fn kind(&self) -> UnimodalKind {
        self.kind
    }

    /// The latent space this encoder reads.
    #[must_use]
    pub fn space(&self) -> LatentSpace {
        self.space
    }

    /// Noise level in force.
    #[must_use]
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Projects a raw latent-value slice (no noise, no normalisation).
    /// Shared with the multimodal composers that reuse this backbone.
    pub(crate) fn project(&self, values: &[f32]) -> Vec<f32> {
        debug_assert_eq!(values.len(), self.space.total());
        let d = self.kind.dim();
        let l = self.space.total();
        let mut out = vec![0.0f32; d];
        for (r, o) in out.iter_mut().enumerate() {
            *o = kernels::ip(&self.projection[r * l..(r + 1) * l], values);
        }
        out
    }

    /// Adds deterministic per-content noise and normalises.
    ///
    /// `extra_sigma` stacks additional noise on top of the encoder's own
    /// (the composers' modality-gap term); `salt` separates noise streams
    /// of different consumers of the same backbone.
    pub(crate) fn finish_embedding(
        &self,
        mut projected: Vec<f32>,
        content: &[f32],
        extra_sigma: f32,
        salt: u64,
    ) -> Vec<f32> {
        let sigma = (self.sigma * self.sigma + extra_sigma * extra_sigma).sqrt();
        if sigma > 0.0 {
            let h = content_hash(content, self.seed ^ salt);
            let mut g = GaussianStream::new(h);
            // Noise scaled relative to the projected signal's norm so sigma
            // is a signal-to-noise knob independent of dimensionality.
            let signal = kernels::norm(&projected).max(1e-6);
            let per_coord = sigma * signal / (projected.len() as f32).sqrt();
            for x in projected.iter_mut() {
                *x += (g.next_standard() as f32) * per_coord;
            }
        }
        if !kernels::normalize(&mut projected) {
            // Degenerate (zero) latent: fall back to a deterministic unit
            // vector so downstream code never sees NaNs.
            projected = vec![0.0; self.kind.dim()];
            projected[0] = 1.0;
        }
        projected
    }
}

impl Embedder for UnimodalEncoder {
    fn name(&self) -> &str {
        self.kind.label()
    }

    fn dim(&self) -> usize {
        self.kind.dim()
    }

    fn embed(&self, latent: &Latent) -> Vec<f32> {
        let projected = self.project(latent.values());
        self.finish_embedding(projected, latent.values(), 0.0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatentKind;

    fn latent(seed: f32) -> Latent {
        let vals: Vec<f32> = (0..LatentSpace::DEFAULT.total())
            .map(|i| ((i as f32 + seed) * 0.37).sin())
            .collect();
        Latent::new(vals, LatentKind::Grounded)
    }

    #[test]
    fn embedding_is_unit_norm_and_deterministic() {
        let e = UnimodalEncoder::new(UnimodalKind::ResNet50, LatentSpace::DEFAULT, 7);
        let a = e.embed(&latent(1.0));
        let b = e.embed(&latent(1.0));
        assert_eq!(a, b);
        assert!(kernels::is_unit_norm(&a, 1e-5));
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn different_contents_embed_differently() {
        let e = UnimodalEncoder::new(UnimodalKind::Lstm, LatentSpace::DEFAULT, 7);
        let a = e.embed(&latent(1.0));
        let b = e.embed(&latent(2.0));
        assert!(kernels::ip(&a, &b) < 0.999);
    }

    #[test]
    fn similar_latents_embed_similarly_under_low_noise() {
        let e = UnimodalEncoder::new(UnimodalKind::Encoding, LatentSpace::DEFAULT, 7);
        let base = latent(1.0);
        let mut close_vals = base.values().to_vec();
        close_vals[0] += 0.01;
        let close = Latent::new(close_vals, LatentKind::Grounded);
        let far = latent(9.0);
        let e_base = e.embed(&base);
        let sim_close = kernels::ip(&e_base, &e.embed(&close));
        let sim_far = kernels::ip(&e_base, &e.embed(&far));
        assert!(
            sim_close > sim_far,
            "geometry must be preserved: close {sim_close} vs far {sim_far}"
        );
    }

    #[test]
    fn noisier_encoder_distorts_geometry_more() {
        // Measure how much each encoder perturbs the similarity of a fixed
        // latent pair, averaged over several pairs.
        let space = LatentSpace::DEFAULT;
        let mut err17 = 0.0f32;
        let mut err50 = 0.0f32;
        for trial in 0..20 {
            let a = latent(trial as f32);
            let b = latent(trial as f32 + 0.3);
            let true_sim = {
                let mut av = a.values().to_vec();
                let mut bv = b.values().to_vec();
                kernels::normalize(&mut av);
                kernels::normalize(&mut bv);
                kernels::ip(&av, &bv)
            };
            let e17 = UnimodalEncoder::new(UnimodalKind::ResNet17, space, trial);
            let e50 = UnimodalEncoder::new(UnimodalKind::ResNet50, space, trial);
            err17 += (kernels::ip(&e17.embed(&a), &e17.embed(&b)) - true_sim).abs();
            err50 += (kernels::ip(&e50.embed(&a), &e50.embed(&b)) - true_sim).abs();
        }
        assert!(err17 > err50, "ResNet17 ({err17}) must be noisier than ResNet50 ({err50})");
    }

    #[test]
    fn seeds_namespace_projections() {
        let a = UnimodalEncoder::new(UnimodalKind::Gru, LatentSpace::DEFAULT, 1);
        let b = UnimodalEncoder::new(UnimodalKind::Gru, LatentSpace::DEFAULT, 2);
        assert_ne!(a.embed(&latent(0.0)), b.embed(&latent(0.0)));
    }

    #[test]
    fn zero_latent_yields_fallback_unit_vector() {
        let e = UnimodalEncoder::new(UnimodalKind::Encoding, LatentSpace::DEFAULT, 1).with_sigma(0.0);
        let z = Latent::new(vec![0.0; LatentSpace::DEFAULT.total()], LatentKind::Descriptive);
        let v = e.embed(&z);
        assert!(kernels::is_unit_norm(&v, 1e-6));
    }
}
