//! Deterministic pseudo-random noise utilities.
//!
//! Encoder noise must be deterministic per `(encoder, content)` so the same
//! content always embeds to the same vector.  We hash the latent's bit
//! pattern together with the encoder seed and use the digest to seed a
//! counter-based Gaussian stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// FNV-1a over a byte stream; cheap and stable across platforms.
#[inline]
fn fnv1a(bytes: impl IntoIterator<Item = u8>, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Stable 64-bit content hash of a latent value slice mixed with `seed`.
#[must_use]
pub fn content_hash(values: &[f32], seed: u64) -> u64 {
    fnv1a(values.iter().flat_map(|v| v.to_bits().to_le_bytes()), seed)
}

/// A deterministic Gaussian sampler (Box–Muller over a seeded `StdRng`).
#[derive(Debug)]
pub struct GaussianStream {
    rng: StdRng,
    spare: Option<f64>,
}

impl GaussianStream {
    /// Creates a stream from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), spare: None }
    }

    /// Next standard-normal sample.
    pub fn next_standard(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller: two uniforms -> two normals.
        loop {
            let u1: f64 = self.rng.random();
            let u2: f64 = self.rng.random();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Fills `out` with i.i.d. `N(0, sigma^2)` samples.
    pub fn fill(&mut self, out: &mut [f32], sigma: f32) {
        for x in out.iter_mut() {
            *x = (self.next_standard() as f32) * sigma;
        }
    }
}

/// Samples a dense `rows x cols` matrix with entries `N(0, 1/cols)` —
/// a Johnson–Lindenstrauss-style random projection that approximately
/// preserves latent geometry.
#[must_use]
pub fn projection_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut g = GaussianStream::new(seed);
    let scale = (1.0 / cols as f64).sqrt() as f32;
    let mut m = vec![0.0f32; rows * cols];
    g.fill(&mut m, 1.0);
    for x in m.iter_mut() {
        *x *= scale;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_seed_sensitive() {
        let v = [0.25f32, -1.5, 3.0];
        assert_eq!(content_hash(&v, 7), content_hash(&v, 7));
        assert_ne!(content_hash(&v, 7), content_hash(&v, 8));
        let w = [0.25f32, -1.5, 3.0001];
        assert_ne!(content_hash(&v, 7), content_hash(&w, 7));
    }

    #[test]
    fn gaussian_stream_is_deterministic() {
        let mut a = GaussianStream::new(42);
        let mut b = GaussianStream::new(42);
        for _ in 0..32 {
            assert_eq!(a.next_standard().to_bits(), b.next_standard().to_bits());
        }
    }

    #[test]
    fn gaussian_stream_has_plausible_moments() {
        let mut g = GaussianStream::new(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.next_standard()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn projection_matrix_is_seeded() {
        let a = projection_matrix(4, 8, 3);
        let b = projection_matrix(4, 8, 3);
        let c = projection_matrix(4, 8, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn projection_approximately_preserves_norm() {
        // JL property sanity: a unit latent maps to a vector of norm ~1.
        let cols = 64;
        let rows = 96;
        let m = projection_matrix(rows, cols, 11);
        let latent: Vec<f32> = {
            let mut g = GaussianStream::new(99);
            let mut v = vec![0.0f32; cols];
            g.fill(&mut v, 1.0);
            let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            v.iter().map(|x| x / n).collect()
        };
        let mut out = vec![0.0f32; rows];
        for (r, o) in out.iter_mut().enumerate() {
            *o = m[r * cols..(r + 1) * cols]
                .iter()
                .zip(&latent)
                .map(|(a, b)| a * b)
                .sum();
        }
        let n = out.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 0.35, "projected norm {n}");
    }
}
