//! Simulated multimodal composers (the paper's `Phi`, Appendix B:
//! TIRG, CLIP combiner, MPC).

use serde::{Deserialize, Serialize};

use crate::{Composer, Embedder, Latent, LatentKind, LatentSpace, UnimodalEncoder, UnimodalKind};

/// The multimodal encoder families of the paper, with our calibrated
/// composition parameters.
///
/// * `fidelity` — the fraction of the grounded inputs' attribute semantics
///   the composer successfully *replaces* with the descriptive inputs'
///   attributes.  Real composed encoders do this imperfectly; the residue of
///   the reference's old state is the dominant JE error mode in the paper's
///   case studies (Figs. 3, 5, 16–21).
/// * `gap_sigma` — extra "modality gap" noise added on top of the visual
///   backbone's own noise (the joint-embedding error the paper quantifies
///   via SME).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComposerKind {
    /// Text-Image Residual Gating (Vo et al., CVPR 2019).
    Tirg,
    /// CLIP-based combiner (Baldrati et al., CVPR 2022) — the strongest
    /// composer in the paper.
    Clip,
    /// Multimodal Probabilistic Composer (Neculai et al., CVPR 2022) —
    /// fuses three or more modalities, with the largest embedding error
    /// (the paper's MS-COCO experiments, Tab. VI).
    Mpc,
}

impl ComposerKind {
    /// Display name matching the paper's tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Tirg => "TIRG",
            Self::Clip => "CLIP",
            Self::Mpc => "MPC",
        }
    }

    /// Composition fidelity `rho` (attribute-replacement success fraction).
    #[must_use]
    pub fn fidelity(self) -> f32 {
        match self {
            Self::Tirg => 0.45,
            Self::Clip => 0.60,
            Self::Mpc => 0.35,
        }
    }

    /// Modality-gap noise standard deviation.
    #[must_use]
    pub fn gap_sigma(self) -> f32 {
        match self {
            Self::Tirg => 0.65,
            Self::Clip => 0.50,
            Self::Mpc => 0.80,
        }
    }

    /// The visual backbone the composer shares with its corpus-side
    /// embedding (so `Phi(q)` and `phi_0(o_0)` live in one space, Eq. 3).
    #[must_use]
    pub fn backbone(self) -> UnimodalKind {
        match self {
            Self::Tirg => UnimodalKind::TirgVisual,
            Self::Clip => UnimodalKind::ClipVisual,
            Self::Mpc => UnimodalKind::MpcVisual,
        }
    }

    fn salt(self) -> u64 {
        match self {
            Self::Tirg => 0xA1,
            Self::Clip => 0xB2,
            Self::Mpc => 0xC3,
        }
    }
}

/// A simulated multimodal encoder: composes a pseudo-latent from the query
/// latents and projects it with its visual backbone plus modality-gap noise.
#[derive(Debug, Clone)]
pub struct MultimodalEncoder {
    kind: ComposerKind,
    backbone: UnimodalEncoder,
    space: LatentSpace,
}

impl MultimodalEncoder {
    /// Builds the composer for `kind` over `space` with dataset seed `seed`.
    #[must_use]
    pub fn new(kind: ComposerKind, space: LatentSpace, seed: u64) -> Self {
        Self { kind, backbone: UnimodalEncoder::new(kind.backbone(), space, seed), space }
    }

    /// The composer family.
    #[must_use]
    pub fn kind(&self) -> ComposerKind {
        self.kind
    }

    /// The shared visual backbone.
    #[must_use]
    pub fn backbone(&self) -> &UnimodalEncoder {
        &self.backbone
    }

    /// Builds the composed pseudo-latent: grounded class + fidelity-blended
    /// attributes.  Pure function of the inputs; exposed for tests.
    fn pseudo_latent(&self, latents: &[&Latent]) -> Vec<f32> {
        assert!(!latents.is_empty(), "composition needs at least one latent");
        let space = &self.space;
        let mut class = vec![0.0f32; space.class_dims];
        let mut attr_grounded = vec![0.0f32; space.attr_dims];
        let mut attr_desc = vec![0.0f32; space.attr_dims];
        let (mut n_grounded, mut n_desc) = (0usize, 0usize);
        for l in latents {
            match l.kind() {
                LatentKind::Grounded => {
                    for (c, v) in class.iter_mut().zip(l.class_part(space)) {
                        *c += v;
                    }
                    for (a, v) in attr_grounded.iter_mut().zip(l.attr_part(space)) {
                        *a += v;
                    }
                    n_grounded += 1;
                }
                LatentKind::Descriptive => {
                    for (a, v) in attr_desc.iter_mut().zip(l.attr_part(space)) {
                        *a += v;
                    }
                    n_desc += 1;
                }
            }
        }
        if n_grounded > 0 {
            let inv = 1.0 / n_grounded as f32;
            class.iter_mut().for_each(|c| *c *= inv);
            attr_grounded.iter_mut().for_each(|a| *a *= inv);
        }
        if n_desc > 0 {
            let inv = 1.0 / n_desc as f32;
            attr_desc.iter_mut().for_each(|a| *a *= inv);
        }
        let rho = if n_desc > 0 { self.kind.fidelity() } else { 0.0 };
        let mut out = Vec::with_capacity(space.total());
        out.extend_from_slice(&class);
        out.extend(
            attr_grounded
                .iter()
                .zip(&attr_desc)
                .map(|(g, d)| (1.0 - rho) * g + rho * d),
        );
        out
    }
}

impl Composer for MultimodalEncoder {
    fn name(&self) -> &str {
        self.kind.label()
    }

    fn dim(&self) -> usize {
        self.backbone.dim()
    }

    fn compose(&self, latents: &[&Latent]) -> Vec<f32> {
        let pseudo = self.pseudo_latent(latents);
        let projected = self.backbone.project(&pseudo);
        self.backbone
            .finish_embedding(projected, &pseudo, self.kind.gap_sigma(), self.kind.salt())
    }

    fn embed_single(&self, latent: &Latent) -> Vec<f32> {
        self.backbone.embed(latent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_vector::kernels;

    fn space() -> LatentSpace {
        LatentSpace::DEFAULT
    }

    fn img(class_seed: f32, attr_seed: f32) -> Latent {
        let s = space();
        let class: Vec<f32> = (0..s.class_dims).map(|i| ((i as f32 + class_seed) * 0.53).sin()).collect();
        let attr: Vec<f32> = (0..s.attr_dims).map(|i| ((i as f32 + attr_seed) * 0.71).cos()).collect();
        Latent::grounded(&class, &attr)
    }

    fn txt(attr_seed: f32) -> Latent {
        let s = space();
        let attr: Vec<f32> = (0..s.attr_dims).map(|i| ((i as f32 + attr_seed) * 0.71).cos()).collect();
        Latent::descriptive(s.class_dims, &attr)
    }

    #[test]
    fn composition_lives_in_backbone_space_and_is_unit_norm() {
        let c = MultimodalEncoder::new(ComposerKind::Clip, space(), 3);
        let a = img(1.0, 2.0);
        let t = txt(5.0);
        let v = c.compose(&[&a, &t]);
        assert_eq!(v.len(), c.dim());
        assert!(kernels::is_unit_norm(&v, 1e-5));
    }

    #[test]
    fn composition_moves_towards_described_attribute() {
        // Reference image has attr A1; text asks for attr A2.  The composed
        // vector must be closer to an image with (same class, A2) than the
        // raw reference embedding is.
        let c = MultimodalEncoder::new(ComposerKind::Clip, space(), 11);
        let reference = img(1.0, 2.0);
        let desired = img(1.0, 5.0); // same class, new attribute
        let text = txt(5.0);
        let composed = c.compose(&[&reference, &text]);
        let raw_ref = c.embed_single(&reference);
        let target_vec = c.embed_single(&desired);
        let sim_composed = kernels::ip(&composed, &target_vec);
        let sim_raw = kernels::ip(&raw_ref, &target_vec);
        assert!(
            sim_composed > sim_raw,
            "composition must help: composed {sim_composed} vs raw {sim_raw}"
        );
    }

    #[test]
    fn composition_keeps_reference_class() {
        // Composed query must stay closer to the same-class target than to a
        // different-class object with the described attribute.
        let c = MultimodalEncoder::new(ComposerKind::Clip, space(), 13);
        let reference = img(1.0, 2.0);
        let text = txt(5.0);
        let same_class_new_attr = img(1.0, 5.0);
        let other_class_new_attr = img(9.0, 5.0);
        let composed = c.compose(&[&reference, &text]);
        let s_same = kernels::ip(&composed, &c.embed_single(&same_class_new_attr));
        let s_other = kernels::ip(&composed, &c.embed_single(&other_class_new_attr));
        assert!(s_same > s_other, "class must dominate: {s_same} vs {s_other}");
    }

    #[test]
    fn clip_is_higher_fidelity_than_mpc() {
        assert!(ComposerKind::Clip.fidelity() > ComposerKind::Mpc.fidelity());
        assert!(ComposerKind::Clip.gap_sigma() < ComposerKind::Mpc.gap_sigma());
    }

    #[test]
    fn grounded_only_composition_averages_classes() {
        // MS-COCO style: two grounded images, no text.
        let c = MultimodalEncoder::new(ComposerKind::Mpc, space(), 17);
        let a = img(1.0, 2.0);
        let b = img(3.0, 4.0);
        let v = c.compose(&[&a, &b]);
        assert!(kernels::is_unit_norm(&v, 1e-5));
        // Deterministic for the same inputs.
        assert_eq!(v, c.compose(&[&a, &b]));
    }

    #[test]
    fn composition_is_deterministic_but_input_sensitive() {
        let c = MultimodalEncoder::new(ComposerKind::Tirg, space(), 19);
        let a = img(1.0, 2.0);
        let t1 = txt(5.0);
        let t2 = txt(6.0);
        assert_eq!(c.compose(&[&a, &t1]), c.compose(&[&a, &t1]));
        assert_ne!(c.compose(&[&a, &t1]), c.compose(&[&a, &t2]));
    }
}
