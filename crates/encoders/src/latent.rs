//! The latent-semantics model underlying the simulated encoders.

use serde::{Deserialize, Serialize};

/// The shared latent space every content latent lives in.
///
/// The space is split into a *class* subspace (identity of the thing — noun,
/// face identity, garment category) and an *attribute* subspace (its state —
/// adjective, facial attributes, fabric/colour/pattern).  The split is what
/// lets multimodal composition "replace the state": real composed encoders
/// are trained to do precisely this semantically; the simulator does it
/// geometrically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatentSpace {
    /// Dimensionality of the class subspace (first `class_dims` components).
    pub class_dims: usize,
    /// Dimensionality of the attribute subspace (remaining components).
    pub attr_dims: usize,
}

impl LatentSpace {
    /// The default space used across the reproduction.
    pub const DEFAULT: Self = Self { class_dims: 16, attr_dims: 16 };

    /// Total latent dimensionality.
    #[inline]
    #[must_use]
    pub fn total(&self) -> usize {
        self.class_dims + self.attr_dims
    }
}

/// How a content latent grounds its semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatentKind {
    /// Depicts a full object: class *and* attribute information
    /// (images, audio clips, video).
    Grounded,
    /// Describes attributes only; the class part is empty
    /// (text descriptions, structured attribute encodings).
    Descriptive,
}

/// One content's ground-truth semantics: a vector in the [`LatentSpace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Latent {
    values: Vec<f32>,
    kind: LatentKind,
}

impl Latent {
    /// Creates a latent; `values.len()` must equal `space.total()` — the
    /// caller (the dataset generator) guarantees this.
    #[must_use]
    pub fn new(values: Vec<f32>, kind: LatentKind) -> Self {
        Self { values, kind }
    }

    /// Builds a grounded latent from class and attribute parts.
    #[must_use]
    pub fn grounded(class: &[f32], attr: &[f32]) -> Self {
        let mut values = Vec::with_capacity(class.len() + attr.len());
        values.extend_from_slice(class);
        values.extend_from_slice(attr);
        Self::new(values, LatentKind::Grounded)
    }

    /// Builds a descriptive latent: zero class part, given attribute part.
    #[must_use]
    pub fn descriptive(class_dims: usize, attr: &[f32]) -> Self {
        let mut values = vec![0.0; class_dims];
        values.extend_from_slice(attr);
        Self::new(values, LatentKind::Descriptive)
    }

    /// Raw latent values.
    #[inline]
    #[must_use]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Grounding kind.
    #[inline]
    #[must_use]
    pub fn kind(&self) -> LatentKind {
        self.kind
    }

    /// The class part under `space`.
    #[inline]
    #[must_use]
    pub fn class_part<'a>(&'a self, space: &LatentSpace) -> &'a [f32] {
        &self.values[..space.class_dims]
    }

    /// The attribute part under `space`.
    #[inline]
    #[must_use]
    pub fn attr_part<'a>(&'a self, space: &LatentSpace) -> &'a [f32] {
        &self.values[space.class_dims..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grounded_concatenates_parts() {
        let l = Latent::grounded(&[1.0, 2.0], &[3.0]);
        assert_eq!(l.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(l.kind(), LatentKind::Grounded);
        let space = LatentSpace { class_dims: 2, attr_dims: 1 };
        assert_eq!(l.class_part(&space), &[1.0, 2.0]);
        assert_eq!(l.attr_part(&space), &[3.0]);
    }

    #[test]
    fn descriptive_zeroes_class_part() {
        let l = Latent::descriptive(3, &[5.0, 6.0]);
        assert_eq!(l.values(), &[0.0, 0.0, 0.0, 5.0, 6.0]);
        assert_eq!(l.kind(), LatentKind::Descriptive);
    }

    #[test]
    fn default_space_total() {
        assert_eq!(LatentSpace::DEFAULT.total(), 32);
    }
}
