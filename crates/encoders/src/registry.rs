//! Encoder configuration and registry: how an experiment names the encoder
//! stack used for each modality (the rows of Tabs. III–VI).

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{ComposerKind, Embedder, LatentSpace, MultimodalEncoder, UnimodalEncoder, UnimodalKind};

/// How modality 0 (the target) of a query is embedded (Fig. 4(f)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetEncoding {
    /// Option 1: encode the target input independently with a unimodal
    /// encoder.
    Independent(UnimodalKind),
    /// Option 2: fuse the target with the auxiliary inputs into a
    /// composition vector using a multimodal encoder.
    Composed(ComposerKind),
}

/// A complete encoder stack for one experiment: the target-modality choice
/// plus one unimodal encoder per auxiliary modality.
///
/// The `label()` matches the paper's row names, e.g. `"CLIP+LSTM"` means
/// target embedded by the CLIP composer (Option 2) and the text modality by
/// LSTM.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Target-modality encoding choice.
    pub target: TargetEncoding,
    /// Unimodal encoders for modalities `1..m`.
    pub auxiliary: Vec<UnimodalKind>,
}

impl EncoderConfig {
    /// Convenience constructor.
    #[must_use]
    pub fn new(target: TargetEncoding, auxiliary: Vec<UnimodalKind>) -> Self {
        Self { target, auxiliary }
    }

    /// Row label as in the paper's tables.
    #[must_use]
    pub fn label(&self) -> String {
        let head = match self.target {
            TargetEncoding::Independent(k) => k.label().to_string(),
            TargetEncoding::Composed(k) => k.label().to_string(),
        };
        let mut parts = vec![head];
        parts.extend(self.auxiliary.iter().map(|k| k.label().to_string()));
        parts.join("+")
    }

    /// Number of modalities covered (target + auxiliaries).
    #[must_use]
    pub fn modalities(&self) -> usize {
        1 + self.auxiliary.len()
    }
}

/// Instantiated encoders for one dataset: shares projections across
/// experiments through interior `Arc`s and hands out trait objects, making
/// the embedding component pluggable as the paper requires (§V).
pub struct EncoderRegistry {
    space: LatentSpace,
    seed: u64,
    unimodal: std::sync::Mutex<BTreeMap<UnimodalKind, Arc<UnimodalEncoder>>>,
    composers: std::sync::Mutex<BTreeMap<ComposerKind, Arc<MultimodalEncoder>>>,
}

impl EncoderRegistry {
    /// Creates a registry for one dataset (`seed` namespaces all encoders).
    #[must_use]
    pub fn new(space: LatentSpace, seed: u64) -> Self {
        Self {
            space,
            seed,
            unimodal: std::sync::Mutex::new(BTreeMap::new()),
            composers: std::sync::Mutex::new(BTreeMap::new()),
        }
    }

    /// The latent space in force.
    pub fn space(&self) -> LatentSpace {
        self.space
    }

    /// Returns (building on first use) the unimodal encoder of `kind`.
    pub fn unimodal(&self, kind: UnimodalKind) -> Arc<UnimodalEncoder> {
        self.unimodal
            .lock()
            .expect("registry lock not poisoned")
            .entry(kind)
            .or_insert_with(|| Arc::new(UnimodalEncoder::new(kind, self.space, self.seed)))
            .clone()
    }

    /// Returns (building on first use) the multimodal composer of `kind`.
    pub fn composer(&self, kind: ComposerKind) -> Arc<MultimodalEncoder> {
        self.composers
            .lock()
            .expect("registry lock not poisoned")
            .entry(kind)
            .or_insert_with(|| Arc::new(MultimodalEncoder::new(kind, self.space, self.seed)))
            .clone()
    }

    /// The unimodal embedder used for corpus-side target vectors under
    /// `config` — `Independent`'s own encoder, or the composer's backbone.
    pub fn target_embedder(&self, config: &EncoderConfig) -> Arc<dyn Embedder> {
        match config.target {
            TargetEncoding::Independent(k) => self.unimodal(k),
            TargetEncoding::Composed(k) => self.unimodal(k.backbone()),
        }
    }
}

// BTreeMap keys need Ord.
impl Ord for UnimodalKind {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (*self as usize).cmp(&(*other as usize))
    }
}
impl PartialOrd for UnimodalKind {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ComposerKind {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (*self as usize).cmp(&(*other as usize))
    }
}
impl PartialOrd for ComposerKind {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_rows() {
        let c = EncoderConfig::new(
            TargetEncoding::Composed(ComposerKind::Clip),
            vec![UnimodalKind::Lstm],
        );
        assert_eq!(c.label(), "CLIP+LSTM");
        let c = EncoderConfig::new(
            TargetEncoding::Independent(UnimodalKind::ResNet50),
            vec![UnimodalKind::Gru, UnimodalKind::ResNet50],
        );
        assert_eq!(c.label(), "ResNet50+GRU+ResNet50");
        assert_eq!(c.modalities(), 3);
    }

    #[test]
    fn registry_caches_encoders() {
        let r = EncoderRegistry::new(LatentSpace::DEFAULT, 5);
        let a = r.unimodal(UnimodalKind::Lstm);
        let b = r.unimodal(UnimodalKind::Lstm);
        assert!(Arc::ptr_eq(&a, &b));
        let c = r.composer(ComposerKind::Clip);
        let d = r.composer(ComposerKind::Clip);
        assert!(Arc::ptr_eq(&c, &d));
    }

    #[test]
    fn target_embedder_uses_composer_backbone_for_option2() {
        let r = EncoderRegistry::new(LatentSpace::DEFAULT, 5);
        let cfg = EncoderConfig::new(TargetEncoding::Composed(ComposerKind::Tirg), vec![]);
        let e = r.target_embedder(&cfg);
        assert_eq!(e.name(), "TIRG-visual");
    }
}
