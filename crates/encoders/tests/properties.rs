//! Property-based tests for the encoder simulator: determinism, unit
//! norm, geometry preservation, and composer semantics over random
//! latents.  Also pins the pluggability contract with a custom encoder.

use must_encoders::{
    Composer, ComposerKind, Embedder, Latent, LatentKind, LatentSpace, MultimodalEncoder,
    UnimodalEncoder, UnimodalKind,
};
use must_vector::kernels;
use proptest::prelude::*;

const SPACE: LatentSpace = LatentSpace::DEFAULT;

fn latent_values() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, SPACE.total())
        .prop_filter("non-degenerate", |v| v.iter().map(|x| x * x).sum::<f32>() > 1e-2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_unimodal_encoder_emits_deterministic_unit_vectors(vals in latent_values()) {
        for kind in [
            UnimodalKind::ResNet17,
            UnimodalKind::ResNet50,
            UnimodalKind::Lstm,
            UnimodalKind::Transformer,
            UnimodalKind::Gru,
            UnimodalKind::Encoding,
            UnimodalKind::ClipVisual,
        ] {
            let e = UnimodalEncoder::new(kind, SPACE, 9);
            let l = Latent::new(vals.clone(), LatentKind::Grounded);
            let a = e.embed(&l);
            let b = e.embed(&l);
            prop_assert_eq!(&a, &b, "{} must be deterministic", kind.label());
            prop_assert_eq!(a.len(), kind.dim());
            prop_assert!(kernels::is_unit_norm(&a, 1e-4));
        }
    }

    #[test]
    fn encoders_preserve_identity_similarity(vals in latent_values()) {
        // A content is always most similar to itself through any encoder.
        let e = UnimodalEncoder::new(UnimodalKind::ResNet50, SPACE, 3);
        let l = Latent::new(vals.clone(), LatentKind::Grounded);
        let mut other_vals = vals;
        other_vals[0] += 3.0;
        other_vals[5] -= 3.0;
        let other = Latent::new(other_vals, LatentKind::Grounded);
        let v = e.embed(&l);
        prop_assert!(kernels::ip(&v, &e.embed(&l)) > kernels::ip(&v, &e.embed(&other)) - 1e-6);
    }

    #[test]
    fn composition_is_unit_norm_and_deterministic(
        a in latent_values(),
        b in latent_values(),
    ) {
        for kind in [ComposerKind::Tirg, ComposerKind::Clip, ComposerKind::Mpc] {
            let c = MultimodalEncoder::new(kind, SPACE, 5);
            let img = Latent::new(a.clone(), LatentKind::Grounded);
            let txt = Latent::new(b.clone(), LatentKind::Descriptive);
            let v1 = c.compose(&[&img, &txt]);
            let v2 = c.compose(&[&img, &txt]);
            prop_assert_eq!(&v1, &v2);
            prop_assert!(kernels::is_unit_norm(&v1, 1e-4));
            prop_assert_eq!(v1.len(), c.dim());
        }
    }

    #[test]
    fn composition_depends_on_descriptive_input(a in latent_values(), b in latent_values(), c in latent_values()) {
        // Two different text latents must generally produce different
        // compositions (the composer actually reads its inputs).
        prop_assume!(b.iter().zip(&c).any(|(x, y)| (x - y).abs() > 0.2));
        let comp = MultimodalEncoder::new(ComposerKind::Clip, SPACE, 5);
        let img = Latent::new(a, LatentKind::Grounded);
        let t1 = Latent::new(b, LatentKind::Descriptive);
        let t2 = Latent::new(c, LatentKind::Descriptive);
        prop_assert_ne!(comp.compose(&[&img, &t1]), comp.compose(&[&img, &t2]));
    }
}

/// The paper's pluggability claim (§V): anything implementing `Embedder`
/// drops into the stack.  A trivial custom encoder (truncate + normalise)
/// satisfies the contract.
#[test]
fn custom_embedder_plugs_in() {
    struct Truncate {
        dim: usize,
    }
    impl Embedder for Truncate {
        fn name(&self) -> &str {
            "Truncate"
        }
        fn dim(&self) -> usize {
            self.dim
        }
        fn embed(&self, latent: &Latent) -> Vec<f32> {
            let mut v: Vec<f32> = latent.values()[..self.dim].to_vec();
            if !kernels::normalize(&mut v) {
                v[0] = 1.0;
            }
            v
        }
    }
    let enc: Box<dyn Embedder> = Box::new(Truncate { dim: 8 });
    let l = Latent::new((0..SPACE.total()).map(|i| i as f32 + 1.0).collect(), LatentKind::Grounded);
    let v = enc.embed(&l);
    assert_eq!(v.len(), 8);
    assert!(kernels::is_unit_norm(&v, 1e-5));
}
