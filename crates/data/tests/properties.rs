//! Property-based tests for the dataset generators: structural validity,
//! label/ground-truth coherence, and the MSTM query protocol across
//! random generator parameters.

use must_data::structured::{generate, StructuredSpec};
use must_data::semisynthetic::{self, SemiSyntheticSpec};
use must_data::ModalityRole;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = StructuredSpec> {
    (
        100usize..400,
        5usize..40,
        2usize..20,
        6usize..30,
        0.05f32..0.4,
        0.0f32..0.2,
        any::<u8>(),
        prop_oneof![Just(2usize), Just(3)],
    )
        .prop_map(|(n, nq, n_classes, n_attrs, jitter, text_var, seed, m)| {
            let attrs_per_class = (n_attrs / 2).clamp(2, 8);
            let mut roles = vec![ModalityRole::Target];
            if m == 3 {
                roles.push(ModalityRole::GroundedAux);
            }
            roles.push(ModalityRole::DescriptiveAux);
            StructuredSpec {
                name: "prop".into(),
                n_objects: n,
                n_queries: nq,
                n_classes,
                n_attrs,
                attrs_per_class,
                jitter,
                text_variation: text_var,
                reference_noise: jitter * 0.8,
                roles,
                grounded_aux_shares_content: seed % 2 == 0,
                seed: seed as u64,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn structured_datasets_always_validate(spec in spec_strategy()) {
        let ds = generate(&spec);
        prop_assert_eq!(ds.validate(), Ok(()));
        prop_assert_eq!(ds.len(), spec.n_objects);
        prop_assert_eq!(ds.queries.len(), spec.n_queries);
        prop_assert_eq!(ds.num_modalities(), spec.roles.len());
    }

    #[test]
    fn query_ground_truth_matches_wanted_labels(spec in spec_strategy()) {
        let ds = generate(&spec);
        for q in &ds.queries {
            for &g in &q.ground_truth {
                let l = ds.labels[g as usize];
                prop_assert_eq!(l.class, q.want.class);
                prop_assert_eq!(l.attr, q.want.attr);
            }
            // The anchor is always in the ground truth.
            prop_assert!(q.ground_truth.contains(&q.anchor));
        }
    }

    #[test]
    fn object_labels_use_valid_vocabulary(spec in spec_strategy()) {
        let ds = generate(&spec);
        for l in &ds.labels {
            prop_assert!((l.class as usize) < spec.n_classes);
            prop_assert!((l.attr as usize) < spec.n_attrs);
        }
    }

    #[test]
    fn descriptive_modalities_have_zero_class_part(spec in spec_strategy()) {
        let ds = generate(&spec);
        let space = ds.space;
        let desc_idx = ds
            .roles
            .iter()
            .position(|r| *r == ModalityRole::DescriptiveAux)
            .expect("spec always has a text modality");
        for mods in ds.object_latents.iter().take(20) {
            let class_part = mods[desc_idx].class_part(&space);
            prop_assert!(class_part.iter().all(|x| *x == 0.0));
        }
    }

    #[test]
    fn semisynthetic_datasets_validate(
        n in 100usize..500,
        nq in 5usize..30,
        n_attrs in 4usize..64,
        seed in any::<u8>(),
    ) {
        let ds = semisynthetic::generate(&SemiSyntheticSpec {
            name: "prop-semi".into(),
            n_objects: n,
            n_queries: nq,
            n_attrs,
            query_perturbation: 0.25,
            seed: seed as u64,
        });
        prop_assert_eq!(ds.validate(), Ok(()));
        // Queries carry no label ground truth (computed downstream).
        prop_assert!(ds.queries.iter().all(|q| q.ground_truth.is_empty()));
        prop_assert!(ds.queries.iter().all(|q| (q.anchor as usize) < n));
    }
}
