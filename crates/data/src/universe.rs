//! The class/attribute vocabulary from which structured corpora are drawn.

use must_encoders::noise::GaussianStream;
use must_encoders::LatentSpace;

/// A vocabulary of class and attribute prototype latents.
///
/// Classes are unit vectors in the class subspace; attributes are unit
/// vectors in the attribute subspace.  Objects are drawn as
/// `[class + jitter ; attr + jitter]`.
#[derive(Debug, Clone)]
pub struct Universe {
    space: LatentSpace,
    classes: Vec<Vec<f32>>,
    attrs: Vec<Vec<f32>>,
    /// Standard deviation of per-object individual variation.
    pub jitter: f32,
    stream_seed: u64,
}

fn unit_gaussian(g: &mut GaussianStream, dim: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; dim];
    loop {
        g.fill(&mut v, 1.0);
        if must_vector::kernels::normalize(&mut v) {
            return v;
        }
    }
}

impl Universe {
    /// Samples a vocabulary of `n_classes` x `n_attrs` prototypes.
    #[must_use]
    pub fn new(space: LatentSpace, n_classes: usize, n_attrs: usize, jitter: f32, seed: u64) -> Self {
        assert!(n_classes > 0 && n_attrs > 0);
        let mut g = GaussianStream::new(seed ^ 0xC1A5);
        let classes = (0..n_classes).map(|_| unit_gaussian(&mut g, space.class_dims)).collect();
        let mut g = GaussianStream::new(seed ^ 0xA77);
        let attrs = (0..n_attrs).map(|_| unit_gaussian(&mut g, space.attr_dims)).collect();
        Self { space, classes, attrs, jitter, stream_seed: seed }
    }

    /// The latent space.
    #[must_use]
    pub fn space(&self) -> LatentSpace {
        self.space
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of attributes.
    #[must_use]
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Class prototype `c`.
    #[must_use]
    pub fn class(&self, c: u32) -> &[f32] {
        &self.classes[c as usize]
    }

    /// Attribute prototype `a`.
    #[must_use]
    pub fn attr(&self, a: u32) -> &[f32] {
        &self.attrs[a as usize]
    }

    /// The grounded latent parts of an object instance `(c, a, instance)` —
    /// prototypes plus deterministic per-instance jitter.  Returns
    /// `(class_part, attr_part)`.
    #[must_use]
    pub fn instance_parts(&self, c: u32, a: u32, instance: u64) -> (Vec<f32>, Vec<f32>) {
        let mut class = self.classes[c as usize].clone();
        let mut attr = self.attrs[a as usize].clone();
        if self.jitter > 0.0 {
            let seed = self
                .stream_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ instance.wrapping_mul(0xD1B5_4A32_D192_ED03)
                ^ ((c as u64) << 32 | a as u64);
            let mut g = GaussianStream::new(seed);
            for x in class.iter_mut() {
                *x += (g.next_standard() as f32) * self.jitter;
            }
            for x in attr.iter_mut() {
                *x += (g.next_standard() as f32) * self.jitter;
            }
        }
        (class, attr)
    }

    /// The descriptive attribute part for attribute `a` (no jitter: a text
    /// description of "moldy" is the same string for every object).
    #[must_use]
    pub fn describe_attr(&self, a: u32) -> Vec<f32> {
        self.attrs[a as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use must_vector::kernels;

    fn universe() -> Universe {
        Universe::new(LatentSpace::DEFAULT, 10, 6, 0.15, 42)
    }

    #[test]
    fn prototypes_are_unit_norm_and_distinct() {
        let u = universe();
        for c in 0..u.num_classes() as u32 {
            assert!(kernels::is_unit_norm(u.class(c), 1e-5));
        }
        assert!(kernels::ip(u.class(0), u.class(1)) < 0.99);
        assert!(kernels::ip(u.attr(0), u.attr(1)) < 0.99);
    }

    #[test]
    fn instances_are_deterministic() {
        let u = universe();
        assert_eq!(u.instance_parts(3, 2, 77), u.instance_parts(3, 2, 77));
        assert_ne!(u.instance_parts(3, 2, 77), u.instance_parts(3, 2, 78));
    }

    #[test]
    fn instances_stay_near_their_prototype() {
        let u = universe();
        let (class, _) = u.instance_parts(4, 1, 5);
        let mut c = class.clone();
        kernels::normalize(&mut c);
        let own = kernels::ip(&c, u.class(4));
        let other = kernels::ip(&c, u.class(5));
        assert!(own > other, "instance must resemble its class: {own} vs {other}");
    }

    #[test]
    fn descriptions_have_no_jitter() {
        let u = universe();
        assert_eq!(u.describe_attr(2), u.describe_attr(2));
        assert_eq!(u.describe_attr(2), u.attr(2).to_vec());
    }
}
