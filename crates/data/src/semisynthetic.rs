//! Generator for the large-scale semi-synthetic datasets (ImageText1M,
//! AudioText1M, VideoText1M, ImageText16M — scaled per DESIGN.md §1).
//!
//! Following the paper (Appendix J), these take a single-modal vector
//! corpus and attach a text modality.  Here every object gets a unique
//! grounded latent (no class structure — SIFT/MSONG/UQ-V/DEEP vectors are
//! individual items) plus an attribute drawn from a shared vocabulary that
//! the text modality describes.  Ground truth is *not* label-based: the
//! efficiency experiments (Figs. 6–8, Tab. VII) define it as the exact
//! top-k under joint similarity, computed downstream by brute force.

use must_encoders::noise::GaussianStream;
use must_encoders::{Latent, LatentSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::universe::Universe;
use crate::{LatentDataset, LatentQuery, ModalityRole, ObjectLabels};

/// Parameters of a semi-synthetic dataset.
#[derive(Debug, Clone)]
pub struct SemiSyntheticSpec {
    /// Dataset name.
    pub name: String,
    /// Number of objects.
    pub n_objects: usize,
    /// Number of queries.
    pub n_queries: usize,
    /// Attribute vocabulary size shared by the text modality.
    pub n_attrs: usize,
    /// Noise between a query's grounded content and its anchor object
    /// (how far the query vector sits from its nearest corpus vector).
    pub query_perturbation: f32,
    /// RNG seed.
    pub seed: u64,
}

fn unique_grounded(space: &LatentSpace, universe: &Universe, attr: u32, id: u64, seed: u64) -> Latent {
    // Unique class latent per object: a fresh unit Gaussian direction.
    let mut g = GaussianStream::new(seed ^ id.wrapping_mul(0xA076_1D64_78BD_642F));
    let mut class = vec![0.0f32; space.class_dims];
    g.fill(&mut class, 1.0);
    let _ = must_vector::kernels::normalize(&mut class);
    let (_, attr_part) = universe.instance_parts(0, attr, id);
    Latent::grounded(&class, &attr_part)
}

/// Generates the dataset: modalities are `[Target, DescriptiveAux]`.
#[must_use]
pub fn generate(spec: &SemiSyntheticSpec) -> LatentDataset {
    assert!(spec.n_objects > 0 && spec.n_queries > 0 && spec.n_attrs > 0);
    let space = LatentSpace::DEFAULT;
    // One dummy class (unused for grounded parts), full attribute vocab.
    let universe = Universe::new(space, 1, spec.n_attrs, 0.1, spec.seed);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5E51);

    let mut labels = Vec::with_capacity(spec.n_objects);
    let mut object_latents = Vec::with_capacity(spec.n_objects);
    for o in 0..spec.n_objects {
        let attr = rng.random_range(0..spec.n_attrs as u32);
        let grounded = unique_grounded(&space, &universe, attr, o as u64, spec.seed);
        let text = Latent::descriptive(space.class_dims, &universe.describe_attr(attr));
        labels.push(ObjectLabels { class: o as u32, attr });
        object_latents.push(vec![grounded, text]);
    }

    let mut queries = Vec::with_capacity(spec.n_queries);
    for qi in 0..spec.n_queries {
        let anchor = rng.random_range(0..spec.n_objects as u32);
        let attr = labels[anchor as usize].attr;
        // Query content: the anchor's grounded latent, perturbed.
        let base = &object_latents[anchor as usize][0];
        let mut g = GaussianStream::new(spec.seed ^ 0x9E ^ ((qi as u64) << 3));
        let perturbed: Vec<f32> = base
            .values()
            .iter()
            .map(|v| v + (g.next_standard() as f32) * spec.query_perturbation)
            .collect();
        let target = Latent::new(perturbed, must_encoders::LatentKind::Grounded);
        let text = Latent::descriptive(space.class_dims, &universe.describe_attr(attr));
        queries.push(LatentQuery {
            latents: vec![Some(target), Some(text)],
            ground_truth: Vec::new(), // exact top-k computed downstream
            anchor,
            want: ObjectLabels { class: anchor, attr },
        });
    }

    let ds = LatentDataset {
        name: spec.name.clone(),
        space,
        roles: vec![ModalityRole::Target, ModalityRole::DescriptiveAux],
        object_latents,
        labels,
        queries,
    };
    debug_assert_eq!(ds.validate(), Ok(()));
    ds
}

/// SplitMix64: a one-shot hash from a 64-bit key to a 64-bit value, used
/// to derive per-id attributes and per-query anchors without a sequential
/// RNG pass — what makes [`SemiSyntheticStream`] O(1) per object.
fn splitmix64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streaming variant of [`generate`] for corpora too large to hold as
/// latents (the 1M scale tier): every object is a *pure function* of
/// `(spec.seed, id)`, so callers materialise any chunk in any order —
/// embed it, fold it into the index, and drop it — in O(chunk) memory.
///
/// Unlike [`generate`], which draws attributes and query anchors from one
/// sequential RNG, the stream derives both by hashing the id
/// (splitmix64), so `object(i)` never needs objects `0..i`.  The two
/// generators therefore produce *different* (equally distributed) corpora
/// for the same spec; benchmarks pick one and stay with it.
pub struct SemiSyntheticStream {
    spec: SemiSyntheticSpec,
    space: LatentSpace,
    universe: Universe,
}

impl SemiSyntheticStream {
    /// Builds the stream head: the shared latent space and attribute
    /// universe (O(`n_attrs`), independent of `n_objects`).
    ///
    /// # Panics
    /// When the spec asks for zero objects, queries, or attributes.
    #[must_use]
    pub fn new(spec: SemiSyntheticSpec) -> Self {
        assert!(spec.n_objects > 0 && spec.n_queries > 0 && spec.n_attrs > 0);
        let space = LatentSpace::DEFAULT;
        let universe = Universe::new(space, 1, spec.n_attrs, 0.1, spec.seed);
        Self { spec, space, universe }
    }

    /// Number of objects in the corpus.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spec.n_objects
    }

    /// Whether the corpus is empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spec.n_objects == 0
    }

    /// The generating spec.
    #[must_use]
    pub fn spec(&self) -> &SemiSyntheticSpec {
        &self.spec
    }

    /// Modality roles, identical to [`generate`]'s.
    #[must_use]
    pub fn roles(&self) -> Vec<ModalityRole> {
        vec![ModalityRole::Target, ModalityRole::DescriptiveAux]
    }

    /// The latent space every latent lives in.
    #[must_use]
    pub fn space(&self) -> LatentSpace {
        self.space
    }

    /// The attribute of object `id`, hash-derived (no sequential state).
    #[must_use]
    pub fn attr_of(&self, id: u64) -> u32 {
        (splitmix64(self.spec.seed ^ 0x5E51 ^ id) % self.spec.n_attrs as u64) as u32
    }

    /// Labels of object `id`, matching [`generate`]'s shape (`class` is
    /// the object id — every object is its own unique item).
    #[must_use]
    pub fn labels_of(&self, id: u64) -> ObjectLabels {
        ObjectLabels { class: id as u32, attr: self.attr_of(id) }
    }

    /// Materialises object `id`'s latents (`[grounded target, text]`).
    /// Pure in `(seed, id)`: the same id always yields the same latents.
    ///
    /// # Panics
    /// When `id` is out of range.
    #[must_use]
    pub fn object(&self, id: u64) -> Vec<Latent> {
        assert!((id as usize) < self.spec.n_objects, "object {id} out of range");
        let attr = self.attr_of(id);
        let grounded = unique_grounded(&self.space, &self.universe, attr, id, self.spec.seed);
        let text = Latent::descriptive(self.space.class_dims, &self.universe.describe_attr(attr));
        vec![grounded, text]
    }

    /// Materialises the query set (`n_queries` is small; this is the one
    /// non-streaming piece).  Anchors are hash-derived per query index;
    /// each query perturbs its anchor's grounded latent exactly as
    /// [`generate`] does.
    #[must_use]
    pub fn queries(&self) -> Vec<LatentQuery> {
        (0..self.spec.n_queries)
            .map(|qi| {
                let anchor = (splitmix64(self.spec.seed ^ 0xA17C ^ qi as u64)
                    % self.spec.n_objects as u64) as u32;
                let attr = self.attr_of(u64::from(anchor));
                let base = self.object(u64::from(anchor));
                let mut g = GaussianStream::new(self.spec.seed ^ 0x9E ^ ((qi as u64) << 3));
                let perturbed: Vec<f32> = base[0]
                    .values()
                    .iter()
                    .map(|v| v + (g.next_standard() as f32) * self.spec.query_perturbation)
                    .collect();
                let target = Latent::new(perturbed, must_encoders::LatentKind::Grounded);
                let text = Latent::descriptive(
                    self.space.class_dims,
                    &self.universe.describe_attr(attr),
                );
                LatentQuery {
                    latents: vec![Some(target), Some(text)],
                    ground_truth: Vec::new(),
                    anchor,
                    want: ObjectLabels { class: anchor, attr },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SemiSyntheticSpec {
        SemiSyntheticSpec {
            name: "ImageTextTest".into(),
            n_objects: 500,
            n_queries: 20,
            n_attrs: 40,
            query_perturbation: 0.25,
            seed: 3,
        }
    }

    #[test]
    fn generates_consistent_two_modality_dataset() {
        let ds = generate(&spec());
        assert_eq!(ds.validate(), Ok(()));
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.num_modalities(), 2);
        assert!(ds.queries.iter().all(|q| q.ground_truth.is_empty()));
    }

    #[test]
    fn grounded_latents_are_unique_per_object() {
        let ds = generate(&spec());
        let a = ds.object_latents[0][0].values();
        let b = ds.object_latents[1][0].values();
        assert_ne!(a, b);
    }

    #[test]
    fn query_content_is_near_its_anchor() {
        let ds = generate(&spec());
        for q in &ds.queries {
            let qv = q.latents[0].as_ref().unwrap().values();
            let anchor = ds.object_latents[q.anchor as usize][0].values();
            let d_anchor: f32 = qv.iter().zip(anchor).map(|(a, b)| (a - b) * (a - b)).sum();
            // Distance to a random other object should typically be larger.
            let other = ds.object_latents[(q.anchor as usize + 7) % ds.len()][0].values();
            let d_other: f32 = qv.iter().zip(other).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(d_anchor < d_other, "{d_anchor} vs {d_other}");
        }
    }

    #[test]
    fn stream_objects_are_pure_and_order_free() {
        let stream = SemiSyntheticStream::new(spec());
        assert_eq!(stream.len(), 500);
        // Same id twice — and out of order — yields bit-identical latents.
        let late = stream.object(499);
        let early = stream.object(3);
        assert_eq!(stream.object(3), early);
        assert_eq!(stream.object(499), late);
        assert_ne!(early[0].values(), late[0].values(), "objects stay unique");
        for id in [0u64, 7, 499] {
            let attr = stream.attr_of(id);
            assert!((attr as usize) < stream.spec().n_attrs);
            assert_eq!(stream.labels_of(id).attr, attr);
            // The text latent describes exactly the hashed attribute.
            let o = stream.object(id);
            let want = Latent::descriptive(
                stream.space().class_dims,
                &Universe::new(stream.space(), 1, 40, 0.1, 3).describe_attr(attr),
            );
            assert_eq!(o[1].values(), want.values());
        }
    }

    #[test]
    fn stream_queries_perturb_their_hashed_anchors() {
        let stream = SemiSyntheticStream::new(spec());
        let queries = stream.queries();
        assert_eq!(queries.len(), 20);
        for q in &queries {
            let anchor = stream.object(u64::from(q.anchor));
            let qv = q.latents[0].as_ref().unwrap().values();
            let av = anchor[0].values();
            let d_anchor: f32 = qv.iter().zip(av).map(|(a, b)| (a - b) * (a - b)).sum();
            let other = stream.object(u64::from((q.anchor + 11) % 500));
            let d_other: f32 =
                qv.iter().zip(other[0].values()).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(d_anchor < d_other, "{d_anchor} vs {d_other}");
            assert_eq!(q.latents[1].as_ref().unwrap().values(), anchor[1].values());
        }
    }

    #[test]
    fn text_modality_matches_anchor_attribute() {
        let ds = generate(&spec());
        for q in &ds.queries {
            let qt = q.latents[1].as_ref().unwrap().values();
            let at = ds.object_latents[q.anchor as usize][1].values();
            assert_eq!(qt, at, "query text must describe the anchor's attribute");
        }
    }
}
