//! Generator for the large-scale semi-synthetic datasets (ImageText1M,
//! AudioText1M, VideoText1M, ImageText16M — scaled per DESIGN.md §1).
//!
//! Following the paper (Appendix J), these take a single-modal vector
//! corpus and attach a text modality.  Here every object gets a unique
//! grounded latent (no class structure — SIFT/MSONG/UQ-V/DEEP vectors are
//! individual items) plus an attribute drawn from a shared vocabulary that
//! the text modality describes.  Ground truth is *not* label-based: the
//! efficiency experiments (Figs. 6–8, Tab. VII) define it as the exact
//! top-k under joint similarity, computed downstream by brute force.

use must_encoders::noise::GaussianStream;
use must_encoders::{Latent, LatentSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::universe::Universe;
use crate::{LatentDataset, LatentQuery, ModalityRole, ObjectLabels};

/// Parameters of a semi-synthetic dataset.
#[derive(Debug, Clone)]
pub struct SemiSyntheticSpec {
    /// Dataset name.
    pub name: String,
    /// Number of objects.
    pub n_objects: usize,
    /// Number of queries.
    pub n_queries: usize,
    /// Attribute vocabulary size shared by the text modality.
    pub n_attrs: usize,
    /// Noise between a query's grounded content and its anchor object
    /// (how far the query vector sits from its nearest corpus vector).
    pub query_perturbation: f32,
    /// RNG seed.
    pub seed: u64,
}

fn unique_grounded(space: &LatentSpace, universe: &Universe, attr: u32, id: u64, seed: u64) -> Latent {
    // Unique class latent per object: a fresh unit Gaussian direction.
    let mut g = GaussianStream::new(seed ^ id.wrapping_mul(0xA076_1D64_78BD_642F));
    let mut class = vec![0.0f32; space.class_dims];
    g.fill(&mut class, 1.0);
    let _ = must_vector::kernels::normalize(&mut class);
    let (_, attr_part) = universe.instance_parts(0, attr, id);
    Latent::grounded(&class, &attr_part)
}

/// Generates the dataset: modalities are `[Target, DescriptiveAux]`.
#[must_use]
pub fn generate(spec: &SemiSyntheticSpec) -> LatentDataset {
    assert!(spec.n_objects > 0 && spec.n_queries > 0 && spec.n_attrs > 0);
    let space = LatentSpace::DEFAULT;
    // One dummy class (unused for grounded parts), full attribute vocab.
    let universe = Universe::new(space, 1, spec.n_attrs, 0.1, spec.seed);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5E51);

    let mut labels = Vec::with_capacity(spec.n_objects);
    let mut object_latents = Vec::with_capacity(spec.n_objects);
    for o in 0..spec.n_objects {
        let attr = rng.random_range(0..spec.n_attrs as u32);
        let grounded = unique_grounded(&space, &universe, attr, o as u64, spec.seed);
        let text = Latent::descriptive(space.class_dims, &universe.describe_attr(attr));
        labels.push(ObjectLabels { class: o as u32, attr });
        object_latents.push(vec![grounded, text]);
    }

    let mut queries = Vec::with_capacity(spec.n_queries);
    for qi in 0..spec.n_queries {
        let anchor = rng.random_range(0..spec.n_objects as u32);
        let attr = labels[anchor as usize].attr;
        // Query content: the anchor's grounded latent, perturbed.
        let base = &object_latents[anchor as usize][0];
        let mut g = GaussianStream::new(spec.seed ^ 0x9E ^ ((qi as u64) << 3));
        let perturbed: Vec<f32> = base
            .values()
            .iter()
            .map(|v| v + (g.next_standard() as f32) * spec.query_perturbation)
            .collect();
        let target = Latent::new(perturbed, must_encoders::LatentKind::Grounded);
        let text = Latent::descriptive(space.class_dims, &universe.describe_attr(attr));
        queries.push(LatentQuery {
            latents: vec![Some(target), Some(text)],
            ground_truth: Vec::new(), // exact top-k computed downstream
            anchor,
            want: ObjectLabels { class: anchor, attr },
        });
    }

    let ds = LatentDataset {
        name: spec.name.clone(),
        space,
        roles: vec![ModalityRole::Target, ModalityRole::DescriptiveAux],
        object_latents,
        labels,
        queries,
    };
    debug_assert_eq!(ds.validate(), Ok(()));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SemiSyntheticSpec {
        SemiSyntheticSpec {
            name: "ImageTextTest".into(),
            n_objects: 500,
            n_queries: 20,
            n_attrs: 40,
            query_perturbation: 0.25,
            seed: 3,
        }
    }

    #[test]
    fn generates_consistent_two_modality_dataset() {
        let ds = generate(&spec());
        assert_eq!(ds.validate(), Ok(()));
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.num_modalities(), 2);
        assert!(ds.queries.iter().all(|q| q.ground_truth.is_empty()));
    }

    #[test]
    fn grounded_latents_are_unique_per_object() {
        let ds = generate(&spec());
        let a = ds.object_latents[0][0].values();
        let b = ds.object_latents[1][0].values();
        assert_ne!(a, b);
    }

    #[test]
    fn query_content_is_near_its_anchor() {
        let ds = generate(&spec());
        for q in &ds.queries {
            let qv = q.latents[0].as_ref().unwrap().values();
            let anchor = ds.object_latents[q.anchor as usize][0].values();
            let d_anchor: f32 = qv.iter().zip(anchor).map(|(a, b)| (a - b) * (a - b)).sum();
            // Distance to a random other object should typically be larger.
            let other = ds.object_latents[(q.anchor as usize + 7) % ds.len()][0].values();
            let d_other: f32 = qv.iter().zip(other).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(d_anchor < d_other, "{d_anchor} vs {d_other}");
        }
    }

    #[test]
    fn text_modality_matches_anchor_attribute() {
        let ds = generate(&spec());
        for q in &ds.queries {
            let qt = q.latents[1].as_ref().unwrap().values();
            let at = ds.object_latents[q.anchor as usize][1].values();
            assert_eq!(qt, at, "query text must describe the anchor's attribute");
        }
    }
}
