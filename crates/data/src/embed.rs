//! Materialises a [`LatentDataset`] into vector corpora and query workloads
//! under a chosen encoder configuration (the embedding stage of Fig. 4).

use must_encoders::{Composer, Embedder, EncoderConfig, EncoderRegistry, TargetEncoding};
use must_vector::{MultiQuery, MultiVectorSet, VectorSet, VectorSetBuilder};

use crate::{LatentDataset, ObjectLabels};

/// One embedded query: vectors, ground truth, anchor.
#[derive(Debug, Clone)]
pub struct EmbeddedQuery {
    /// Per-modality query vectors (slot 0 is Option-1 or Option-2 encoded
    /// per the configuration).
    pub query: MultiQuery,
    /// Label-based ground truth (empty for semi-synthetic datasets).
    pub ground_truth: Vec<u32>,
    /// The generating anchor object (weight-learning positive example).
    pub anchor: u32,
    /// Wanted labels.
    pub want: ObjectLabels,
}

/// A fully materialised dataset: the multi-vector corpus plus the workload.
#[derive(Debug, Clone)]
pub struct EmbeddedDataset {
    /// Dataset name.
    pub name: String,
    /// Encoder configuration label (paper's table rows).
    pub config_label: String,
    /// The multi-vector object corpus.
    pub objects: MultiVectorSet,
    /// The query workload.
    pub queries: Vec<EmbeddedQuery>,
    /// Object labels (for case studies and label-based recall).
    pub labels: Vec<ObjectLabels>,
}

/// Small scoped-thread parallel map (the data crate does not depend on
/// `must-graph`, so it carries its own 15-line helper).
fn par_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let threads = std::thread::available_parallelism().map_or(1, usize::from).min(n.max(1));
    if threads <= 1 || n < 256 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, s) in slot.iter_mut().enumerate() {
                    *s = Some(f(t * chunk + off));
                }
            });
        }
    });
    out.into_iter().map(|x| x.expect("filled")).collect()
}

/// Embeds `dataset` under `config` using `registry`'s encoders.
///
/// # Panics
/// Panics when the configuration arity does not match the dataset's
/// modality count (programmer error at the experiment level).
pub fn embed_dataset(
    dataset: &LatentDataset,
    config: &EncoderConfig,
    registry: &EncoderRegistry,
) -> EmbeddedDataset {
    assert_eq!(
        config.modalities(),
        dataset.num_modalities(),
        "encoder config covers {} modalities but dataset {} has {}",
        config.modalities(),
        dataset.name,
        dataset.num_modalities()
    );
    let n = dataset.len();
    let m = dataset.num_modalities();

    // Corpus-side embedders: target first, then auxiliaries.
    let target_embedder = registry.target_embedder(config);
    let aux_embedders: Vec<_> =
        config.auxiliary.iter().map(|&k| registry.unimodal(k)).collect();

    let mut modality_sets: Vec<VectorSet> = Vec::with_capacity(m);
    for mi in 0..m {
        let embedder: &dyn Embedder = if mi == 0 {
            target_embedder.as_ref()
        } else {
            aux_embedders[mi - 1].as_ref()
        };
        let rows = par_map(n, |o| embedder.embed(&dataset.object_latents[o][mi]));
        let mut builder = VectorSetBuilder::new(embedder.dim(), n);
        for row in &rows {
            builder.push_normalized(row).expect("encoders emit valid vectors");
        }
        modality_sets.push(builder.finish());
    }
    let objects = MultiVectorSet::new(modality_sets).expect("equal cardinality");

    // Query-side embedding.
    let composer = match config.target {
        TargetEncoding::Composed(kind) => Some(registry.composer(kind)),
        TargetEncoding::Independent(_) => None,
    };
    let queries = par_map(dataset.queries.len(), |qi| {
        let q = &dataset.queries[qi];
        let mut slots: Vec<Option<Vec<f32>>> = Vec::with_capacity(m);
        // Slot 0: Option 1 (independent) or Option 2 (composed).
        let slot0 = match (&composer, &q.latents[0]) {
            (Some(c), Some(_)) => {
                let supplied: Vec<&must_encoders::Latent> =
                    q.latents.iter().flatten().collect();
                Some(c.compose(&supplied))
            }
            (None, Some(l)) => Some(target_embedder.embed(l)),
            (_, None) => None,
        };
        slots.push(slot0);
        for mi in 1..m {
            slots.push(q.latents[mi].as_ref().map(|l| aux_embedders[mi - 1].embed(l)));
        }
        EmbeddedQuery {
            query: MultiQuery::partial(slots),
            ground_truth: q.ground_truth.clone(),
            anchor: q.anchor,
            want: q.want,
        }
    });

    EmbeddedDataset {
        name: dataset.name.clone(),
        config_label: config.label(),
        objects,
        queries,
        labels: dataset.labels.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::{generate, StructuredSpec};
    use crate::ModalityRole;
    use must_encoders::{ComposerKind, LatentSpace, UnimodalKind};

    fn dataset() -> LatentDataset {
        generate(&StructuredSpec {
            name: "embed-test".into(),
            n_objects: 120,
            n_queries: 15,
            n_classes: 10,
            n_attrs: 8,
            attrs_per_class: 3,
            jitter: 0.15,
            text_variation: 0.0,
            reference_noise: 0.08,
            roles: vec![ModalityRole::Target, ModalityRole::DescriptiveAux],
            grounded_aux_shares_content: false,
            seed: 9,
        })
    }

    #[test]
    fn option1_embeds_target_independently() {
        let ds = dataset();
        let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 9);
        let config = EncoderConfig::new(
            must_encoders::TargetEncoding::Independent(UnimodalKind::ResNet50),
            vec![UnimodalKind::Lstm],
        );
        let e = embed_dataset(&ds, &config, &registry);
        assert_eq!(e.objects.len(), 120);
        assert_eq!(e.objects.num_modalities(), 2);
        assert_eq!(e.objects.modality(0).dim(), 64);
        assert_eq!(e.objects.modality(1).dim(), 32);
        assert_eq!(e.queries.len(), 15);
        assert_eq!(e.config_label, "ResNet50+LSTM");
    }

    #[test]
    fn option2_composes_the_target_slot() {
        let ds = dataset();
        let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 9);
        let composed = EncoderConfig::new(
            must_encoders::TargetEncoding::Composed(ComposerKind::Clip),
            vec![UnimodalKind::Lstm],
        );
        let independent = EncoderConfig::new(
            must_encoders::TargetEncoding::Independent(UnimodalKind::ResNet50),
            vec![UnimodalKind::Lstm],
        );
        let a = embed_dataset(&ds, &composed, &registry);
        let b = embed_dataset(&ds, &independent, &registry);
        // Composed slot-0 differs from independent slot-0.
        let qa = a.queries[0].query.slot(0).unwrap();
        let qb = b.queries[0].query.slot(0).unwrap();
        assert_ne!(qa, qb);
        // But the auxiliary slot is identical (same LSTM encoder).
        assert_eq!(a.queries[0].query.slot(1), b.queries[0].query.slot(1));
    }

    #[test]
    fn composed_query_is_closer_to_anchor_than_raw_reference() {
        // The whole point of Option 2: the composition moves the query
        // towards the (class, wanted-attr) target.
        let ds = dataset();
        let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 9);
        let composed = EncoderConfig::new(
            must_encoders::TargetEncoding::Composed(ComposerKind::Clip),
            vec![UnimodalKind::Lstm],
        );
        let raw = EncoderConfig::new(
            must_encoders::TargetEncoding::Independent(UnimodalKind::ClipVisual),
            vec![UnimodalKind::Lstm],
        );
        let a = embed_dataset(&ds, &composed, &registry);
        let b = embed_dataset(&ds, &raw, &registry);
        let mut composed_better = 0;
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            let anchor_vec = a.objects.modality(0).get(qa.anchor);
            let s_comp = must_vector::kernels::ip(qa.query.slot(0).unwrap(), anchor_vec);
            let s_raw = must_vector::kernels::ip(qb.query.slot(0).unwrap(), anchor_vec);
            if s_comp > s_raw {
                composed_better += 1;
            }
        }
        assert!(
            composed_better * 3 >= a.queries.len() * 2,
            "composition should usually help: {composed_better}/{}",
            a.queries.len()
        );
    }

    #[test]
    #[should_panic(expected = "encoder config covers")]
    fn arity_mismatch_panics() {
        let ds = dataset();
        let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 9);
        let config = EncoderConfig::new(
            must_encoders::TargetEncoding::Independent(UnimodalKind::ResNet50),
            vec![UnimodalKind::Lstm, UnimodalKind::Gru],
        );
        let _ = embed_dataset(&ds, &config, &registry);
    }
}
