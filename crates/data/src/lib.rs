//! Dataset generators for the MUST reproduction.
//!
//! The paper evaluates on four real-world multimodal datasets (CelebA,
//! MIT-States, Shopping, MS-COCO), one extended dataset (CelebA+), and four
//! semi-synthetic large-scale ones (ImageText1M, AudioText1M, VideoText1M,
//! ImageText16M).  We cannot ship those corpora, so this crate generates
//! *attribute-structured* synthetic equivalents that preserve the structure
//! the paper's measurements depend on (DESIGN.md §1):
//!
//! * every object is a `(class, attribute)` pair plus individual variation —
//!   a noun in a state (MIT-States), an identity with facial attributes
//!   (CelebA), a garment with fabric/colour/pattern (Shopping);
//! * the corpus text for an object *describes its attribute*, so many
//!   objects share (near-)identical auxiliary content — the source of MR's
//!   merge ambiguity;
//! * an MSTM query supplies a *reference* object of the desired class but a
//!   different attribute, plus a description of the desired attribute; its
//!   ground truth is every object matching `(class, desired attribute)` —
//!   exactly the protocol of the paper's Figs. 3 and 5.
//!
//! Generators emit [`LatentDataset`]s (pure semantics); the [`embed`] module
//! materialises them into vector corpora and query workloads for a chosen
//! [`must_encoders::EncoderConfig`].

//!
//! See `docs/ARCHITECTURE.md` at the repository root for the crate DAG
//! and a one-paragraph tour of every crate.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod embed;
pub mod semisynthetic;
pub mod structured;
pub mod universe;

use must_encoders::{Latent, LatentSpace};
use serde::{Deserialize, Serialize};

/// The role a modality plays in a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModalityRole {
    /// The target modality (always index 0): grounded content the search
    /// results are rendered in.
    Target,
    /// An auxiliary grounded modality (a second reference image, audio…).
    GroundedAux,
    /// An auxiliary descriptive modality (text, structured attributes).
    DescriptiveAux,
}

/// Ground-truth labels of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectLabels {
    /// Class id (noun / identity / garment).
    pub class: u32,
    /// Attribute id (state / facial attributes / fabric-colour-pattern).
    pub attr: u32,
}

/// One MSTM query in latent form.
#[derive(Debug, Clone)]
pub struct LatentQuery {
    /// Per-modality latents; `None` for unsupplied modalities (`t < m`).
    pub latents: Vec<Option<Latent>>,
    /// Label-based ground truth: ids of all matching objects (`G` in
    /// Eq. 1).  Empty for semi-synthetic datasets, whose ground truth is
    /// computed by exact joint search downstream.
    pub ground_truth: Vec<u32>,
    /// The object this query was generated around — the positive example
    /// for the vector-weight-learning model (Section VI-A).
    pub anchor: u32,
    /// Labels the query asks for (desired class and attribute).
    pub want: ObjectLabels,
}

/// A generated dataset in latent (pre-embedding) form.
#[derive(Debug, Clone)]
pub struct LatentDataset {
    /// Dataset name (paper's Tab. II).
    pub name: String,
    /// The latent space all contents live in.
    pub space: LatentSpace,
    /// Modality roles; `roles[0]` is always [`ModalityRole::Target`].
    pub roles: Vec<ModalityRole>,
    /// `object_latents[o][i]` — latent of object `o` in modality `i`.
    pub object_latents: Vec<Vec<Latent>>,
    /// Labels of every object.
    pub labels: Vec<ObjectLabels>,
    /// The query workload.
    pub queries: Vec<LatentQuery>,
}

impl LatentDataset {
    /// Number of objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.object_latents.len()
    }

    /// Whether the dataset has no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.object_latents.is_empty()
    }

    /// Number of modalities `m`.
    #[must_use]
    pub fn num_modalities(&self) -> usize {
        self.roles.len()
    }

    /// One-line statistics row (Tab. II style).
    #[must_use]
    pub fn stats_row(&self) -> String {
        format!(
            "{:<16} m={} n={} queries={}",
            self.name,
            self.num_modalities(),
            self.len(),
            self.queries.len()
        )
    }

    /// Validates internal consistency (used by tests and debug builds).
    pub fn validate(&self) -> Result<(), String> {
        if self.roles.first() != Some(&ModalityRole::Target) {
            return Err("modality 0 must be the target".into());
        }
        if self.labels.len() != self.len() {
            return Err("labels/objects length mismatch".into());
        }
        for (o, mods) in self.object_latents.iter().enumerate() {
            if mods.len() != self.num_modalities() {
                return Err(format!("object {o} has {} modalities", mods.len()));
            }
        }
        for (qi, q) in self.queries.iter().enumerate() {
            if q.latents.len() != self.num_modalities() {
                return Err(format!("query {qi} has {} slots", q.latents.len()));
            }
            if q.latents[0].is_none() && q.latents.iter().all(Option::is_none) {
                return Err(format!("query {qi} supplies no modality"));
            }
            if q.anchor as usize >= self.len() {
                return Err(format!("query {qi} anchor out of range"));
            }
            for &g in &q.ground_truth {
                if g as usize >= self.len() {
                    return Err(format!("query {qi} ground truth out of range"));
                }
            }
        }
        Ok(())
    }
}
