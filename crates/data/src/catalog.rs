//! Named dataset constructors mirroring the paper's Tab. II, at
//! configurable scale.
//!
//! Paper cardinalities (CelebA 191 k, MIT-States 54 k, Shopping 96 k,
//! MS-COCO 20 k, 1M/16M semi-synthetic) are scaled down by default so the
//! full experiment suite runs in minutes; pass a larger `scale` (or set the
//! `MUST_SCALE` environment variable in the bench harness) to grow them.
//! Class/attribute vocabularies mirror the real datasets' proportions
//! (MIT-States: 245 nouns, ~9 adjectives per noun; vocabulary sizes are
//! scaled with the corpora so per-attribute pools keep the paper's
//! ambiguity ratio; MS-COCO: 80 categories).

use crate::semisynthetic::{self, SemiSyntheticSpec};
use crate::structured::{self, StructuredSpec};
use crate::{LatentDataset, ModalityRole};

/// Shopping has per-category experiments in the paper (T-shirt in Tab. V,
/// Bottoms in Tab. XXI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShoppingCategory {
    /// T-shirts.
    TShirt,
    /// Bottoms.
    Bottoms,
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(64)
}

/// Scales an attribute vocabulary with the corpus so the per-attribute
/// object pool keeps the paper's ambiguity ratio (e.g. MIT-States: 53 k
/// objects over 115 adjectives ≈ 470 per adjective, comfortably above a
/// merge-baseline candidate budget).  Never drops below `floor` so query
/// generation (which needs a source *and* a target attribute per class)
/// stays well-posed.
fn scaled_vocab(base: usize, scale: f64, floor: usize) -> usize {
    ((base as f64 * scale).round() as usize).clamp(floor, base)
}

/// MIT-States: image + free-text state description
/// (Tab. III; 53 743 objects in the paper).
#[must_use]
pub fn mit_states(scale: f64, seed: u64) -> LatentDataset {
    let n_attrs = scaled_vocab(40, scale, 4);
    structured::generate(&StructuredSpec {
        name: "MIT-States".into(),
        n_objects: scaled(16_000, scale),
        n_queries: scaled(1_500, scale.min(1.0)),
        n_classes: 245,
        // 40 attribute prototypes at full scale, shrunk with the corpus so
        // the per-attribute pool exceeds a merge baseline's candidate
        // budget, preserving the paper's ambiguity ratio (53k objects /
        // 115 adjectives there).
        n_attrs,
        attrs_per_class: 9.min(n_attrs),
        jitter: 0.25,
        text_variation: 0.10,
        reference_noise: 0.22,
        roles: vec![ModalityRole::Target, ModalityRole::DescriptiveAux],
        grounded_aux_shares_content: false,
        seed: seed ^ 0x1115,
    })
}

/// CelebA: face image + structured attribute text (Tab. IV; 191 549
/// objects in the paper).
#[must_use]
pub fn celeba(scale: f64, seed: u64) -> LatentDataset {
    let n_attrs = scaled_vocab(30, scale, 4);
    structured::generate(&StructuredSpec {
        name: "CelebA".into(),
        n_objects: scaled(20_000, scale),
        n_queries: scaled(1_500, scale.min(1.0)),
        n_classes: 2_000, // identities
        // Attribute combinations (shared by ~650 faces each in the paper),
        // shrunk with the corpus to preserve that sharing ratio.
        n_attrs,
        attrs_per_class: 4.min(n_attrs),
        jitter: 0.12,
        text_variation: 0.0, // structured encoding: identical text per combo
        reference_noise: 0.07,
        roles: vec![ModalityRole::Target, ModalityRole::DescriptiveAux],
        grounded_aux_shares_content: false,
        seed: seed ^ 0xCE1B,
    })
}

/// CelebA+ with `m` modalities (2–4): the paper simulates the extra
/// modalities by re-encoding the same face with additional encoders
/// (Tab. VIII), so the extra grounded modalities share content.
#[must_use]
pub fn celeba_plus(m: usize, scale: f64, seed: u64) -> LatentDataset {
    assert!((2..=4).contains(&m), "CelebA+ supports m in 2..=4");
    let mut roles = vec![ModalityRole::Target, ModalityRole::DescriptiveAux];
    for _ in 2..m {
        roles.push(ModalityRole::GroundedAux);
    }
    let n_attrs = scaled_vocab(30, scale, 4);
    let mut ds = structured::generate(&StructuredSpec {
        name: format!("CelebA+(m={m})"),
        n_objects: scaled(20_000, scale),
        n_queries: scaled(1_500, scale.min(1.0)),
        n_classes: 2_000,
        n_attrs,
        attrs_per_class: 4.min(n_attrs),
        jitter: 0.12,
        text_variation: 0.0,
        reference_noise: 0.07,
        roles,
        grounded_aux_shares_content: true,
        seed: seed ^ 0xCE1B, // same universe as CelebA
    });
    ds.name = format!("CelebA+(m={m})");
    ds
}

/// Shopping: garment image + structured attribute text (Tabs. V, XXI;
/// 96 009 objects in the paper).
#[must_use]
pub fn shopping(category: ShoppingCategory, scale: f64, seed: u64) -> LatentDataset {
    let (name, cat_seed) = match category {
        ShoppingCategory::TShirt => ("Shopping (T-shirt)", 0x7511u64),
        ShoppingCategory::Bottoms => ("Shopping (Bottoms)", 0xB077u64),
    };
    let n_attrs = scaled_vocab(20, scale, 4);
    structured::generate(&StructuredSpec {
        name: name.into(),
        n_objects: scaled(12_000, scale),
        n_queries: scaled(1_200, scale.min(1.0)),
        n_classes: 800, // garment designs
        // Fabric x colour x pattern combinations, shrunk with the corpus.
        n_attrs,
        attrs_per_class: 6.min(n_attrs),
        jitter: 0.14,
        text_variation: 0.0,
        reference_noise: 0.10,
        roles: vec![ModalityRole::Target, ModalityRole::DescriptiveAux],
        grounded_aux_shares_content: false,
        seed: seed ^ cat_seed,
    })
}

/// MS-COCO: target image + second reference image + text (Tab. VI;
/// 19 711 objects, 1 237 queries in the paper).  Few classes and heavy
/// intra-class variation make it the hardest dataset (recall reported at
/// k = 10/50/100).
#[must_use]
pub fn ms_coco(scale: f64, seed: u64) -> LatentDataset {
    let n_attrs = scaled_vocab(300, scale, 8);
    structured::generate(&StructuredSpec {
        name: "MS-COCO".into(),
        n_objects: scaled(10_000, scale),
        n_queries: scaled(600, scale.min(1.0)),
        n_classes: 80,
        n_attrs,
        attrs_per_class: 24.min(n_attrs),
        jitter: 0.30, // large intra-class variation
        text_variation: 0.08,
        reference_noise: 0.18,
        roles: vec![ModalityRole::Target, ModalityRole::GroundedAux, ModalityRole::DescriptiveAux],
        grounded_aux_shares_content: false,
        seed: seed ^ 0xC0C0,
    })
}

/// ImageText1M analogue (SIFT + text), scaled.
#[must_use]
pub fn image_text(n_objects: usize, n_queries: usize, seed: u64) -> LatentDataset {
    semisynthetic::generate(&SemiSyntheticSpec {
        name: "ImageText1M".into(),
        n_objects,
        n_queries,
        n_attrs: 500,
        query_perturbation: 0.25,
        seed: seed ^ 0x517F,
    })
}

/// AudioText1M analogue (MSONG + text), scaled.
#[must_use]
pub fn audio_text(n_objects: usize, n_queries: usize, seed: u64) -> LatentDataset {
    semisynthetic::generate(&SemiSyntheticSpec {
        name: "AudioText1M".into(),
        n_objects,
        n_queries,
        n_attrs: 300,
        query_perturbation: 0.30,
        seed: seed ^ 0xA0D1,
    })
}

/// VideoText1M analogue (UQ-V + text), scaled.
#[must_use]
pub fn video_text(n_objects: usize, n_queries: usize, seed: u64) -> LatentDataset {
    semisynthetic::generate(&SemiSyntheticSpec {
        name: "VideoText1M".into(),
        n_objects,
        n_queries,
        n_attrs: 400,
        query_perturbation: 0.28,
        seed: seed ^ 0x71DE,
    })
}

/// ImageText16M analogue (DEEP + text) at an arbitrary scale — used for the
/// Tab. VII / Fig. 7 data-volume sweeps.
#[must_use]
pub fn deep_image_text(n_objects: usize, n_queries: usize, seed: u64) -> LatentDataset {
    semisynthetic::generate(&SemiSyntheticSpec {
        name: format!("ImageText16M[n={n_objects}]"),
        n_objects,
        n_queries,
        n_attrs: 600,
        query_perturbation: 0.25,
        seed: seed ^ 0xDEE9,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_catalog_datasets_validate_at_small_scale() {
        let scale = 0.02;
        for ds in [
            mit_states(scale, 1),
            celeba(scale, 1),
            shopping(ShoppingCategory::TShirt, scale, 1),
            shopping(ShoppingCategory::Bottoms, scale, 1),
            ms_coco(scale, 1),
            celeba_plus(3, scale, 1),
            celeba_plus(4, scale, 1),
            image_text(400, 10, 1),
            audio_text(400, 10, 1),
            video_text(400, 10, 1),
            deep_image_text(400, 10, 1),
        ] {
            assert_eq!(ds.validate(), Ok(()), "{}", ds.name);
            assert!(!ds.stats_row().is_empty());
        }
    }

    #[test]
    fn celeba_plus_modality_counts() {
        assert_eq!(celeba_plus(2, 0.02, 1).num_modalities(), 2);
        assert_eq!(celeba_plus(3, 0.02, 1).num_modalities(), 3);
        assert_eq!(celeba_plus(4, 0.02, 1).num_modalities(), 4);
    }

    #[test]
    fn shopping_categories_differ() {
        let a = shopping(ShoppingCategory::TShirt, 0.02, 1);
        let b = shopping(ShoppingCategory::Bottoms, 0.02, 1);
        assert_ne!(a.object_latents[0][0].values(), b.object_latents[0][0].values());
    }

    #[test]
    fn ms_coco_has_three_modalities() {
        let ds = ms_coco(0.02, 1);
        assert_eq!(ds.num_modalities(), 3);
        assert_eq!(ds.roles[1], ModalityRole::GroundedAux);
    }
}
