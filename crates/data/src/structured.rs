//! Generator for the real-world-like structured datasets (CelebA,
//! MIT-States, Shopping, MS-COCO, CelebA+).

use must_encoders::noise::GaussianStream;
use must_encoders::{Latent, LatentSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::universe::Universe;
use crate::{LatentDataset, LatentQuery, ModalityRole, ObjectLabels};

/// Parameters of a structured dataset.
#[derive(Debug, Clone)]
pub struct StructuredSpec {
    /// Dataset name.
    pub name: String,
    /// Number of objects.
    pub n_objects: usize,
    /// Number of queries.
    pub n_queries: usize,
    /// Vocabulary sizes.
    pub n_classes: usize,
    /// Number of attribute prototypes.
    pub n_attrs: usize,
    /// Attributes each class actually occurs with (MIT-States: ~9
    /// adjectives per noun).
    pub attrs_per_class: usize,
    /// Per-object individual variation.
    pub jitter: f32,
    /// Per-object variation of descriptive (text) latents: 0 for
    /// structured attribute encodings, small for free text.
    pub text_variation: f32,
    /// Noise between the query's reference content and the anchor object's
    /// class appearance (how different the user's photo is from the target).
    pub reference_noise: f32,
    /// Modality roles (`roles[0]` must be `Target`).
    pub roles: Vec<ModalityRole>,
    /// Whether auxiliary grounded modalities carry the *same* content as
    /// the target (CelebA+: one image, several encoders) or an independent
    /// view (MS-COCO: a second reference image).
    pub grounded_aux_shares_content: bool,
    /// RNG seed.
    pub seed: u64,
}

impl StructuredSpec {
    fn validate(&self) {
        assert!(self.n_objects > 0 && self.n_queries > 0);
        assert!(self.attrs_per_class >= 2, "queries need a source and a target attribute");
        assert!(self.attrs_per_class <= self.n_attrs);
        assert_eq!(self.roles.first(), Some(&ModalityRole::Target));
    }
}

/// The attribute palette of a class: a deterministic pseudo-random subset
/// of the attribute vocabulary.
fn palette(class: u32, n_attrs: usize, k: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ (class as u64).wrapping_mul(0xB5AD_4ECE_DA1C_E2A9));
    let mut chosen = Vec::with_capacity(k);
    while chosen.len() < k {
        let a = rng.random_range(0..n_attrs as u32);
        if !chosen.contains(&a) {
            chosen.push(a);
        }
    }
    chosen
}

fn perturb(values: &[f32], sigma: f32, seed: u64) -> Vec<f32> {
    if sigma <= 0.0 {
        return values.to_vec();
    }
    let mut g = GaussianStream::new(seed);
    values.iter().map(|v| v + (g.next_standard() as f32) * sigma).collect()
}

/// Generates the dataset.
#[must_use]
pub fn generate(spec: &StructuredSpec) -> LatentDataset {
    spec.validate();
    let space = LatentSpace::DEFAULT;
    let universe = Universe::new(space, spec.n_classes, spec.n_attrs, spec.jitter, spec.seed);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x0B1);

    // Objects: round-robin classes for coverage, attributes from the
    // class palette.
    let mut labels = Vec::with_capacity(spec.n_objects);
    let mut object_latents = Vec::with_capacity(spec.n_objects);
    // (class, attr) -> object ids, for query ground truth.
    let mut cells: std::collections::HashMap<(u32, u32), Vec<u32>> = std::collections::HashMap::new();
    for o in 0..spec.n_objects {
        let class = (o % spec.n_classes) as u32;
        let pal = palette(class, spec.n_attrs, spec.attrs_per_class, spec.seed);
        let attr = pal[rng.random_range(0..pal.len())];
        let (class_part, attr_part) = universe.instance_parts(class, attr, o as u64);
        let grounded = Latent::grounded(&class_part, &attr_part);
        let mut mods = Vec::with_capacity(spec.roles.len());
        for (mi, role) in spec.roles.iter().enumerate() {
            match role {
                ModalityRole::Target => mods.push(grounded.clone()),
                ModalityRole::GroundedAux => {
                    if spec.grounded_aux_shares_content {
                        mods.push(grounded.clone());
                    } else {
                        // An independent view of the same object.
                        let (c2, a2) =
                            universe.instance_parts(class, attr, (o as u64) << 8 | mi as u64);
                        mods.push(Latent::grounded(&c2, &a2));
                    }
                }
                ModalityRole::DescriptiveAux => {
                    let desc = perturb(
                        &universe.describe_attr(attr),
                        spec.text_variation,
                        spec.seed ^ ((o as u64) << 16 | mi as u64),
                    );
                    mods.push(Latent::descriptive(space.class_dims, &desc));
                }
            }
        }
        cells.entry((class, attr)).or_default().push(o as u32);
        labels.push(ObjectLabels { class, attr });
        object_latents.push(mods);
    }

    // Queries: anchor object (class C, attr S2); reference content shows
    // the same individual in a different state S1; text describes S2.
    let mut queries = Vec::with_capacity(spec.n_queries);
    for qi in 0..spec.n_queries {
        let anchor = rng.random_range(0..spec.n_objects as u32);
        let ObjectLabels { class, attr: want_attr } = labels[anchor as usize];
        let pal = palette(class, spec.n_attrs, spec.attrs_per_class, spec.seed);
        let from_attr = loop {
            let a = pal[rng.random_range(0..pal.len())];
            if a != want_attr {
                break a;
            }
        };
        // Reference: the anchor's class appearance (slightly re-shot) in
        // state `from_attr`.
        let anchor_class_part =
            object_latents[anchor as usize][0].class_part(&space).to_vec();
        let ref_class = perturb(
            &anchor_class_part,
            spec.reference_noise,
            spec.seed ^ 0x0EEF ^ ((qi as u64) << 1),
        );
        let (_, ref_attr_part) =
            universe.instance_parts(class, from_attr, 0x4000_0000_0000_0000 | qi as u64);
        let reference = Latent::grounded(&ref_class, &ref_attr_part);
        let desc_latent = Latent::descriptive(space.class_dims, &universe.describe_attr(want_attr));

        let mut slots = Vec::with_capacity(spec.roles.len());
        for (mi, role) in spec.roles.iter().enumerate() {
            match role {
                ModalityRole::Target => slots.push(Some(reference.clone())),
                ModalityRole::GroundedAux => {
                    if spec.grounded_aux_shares_content {
                        slots.push(Some(reference.clone()));
                    } else {
                        let ref2_class = perturb(
                            &anchor_class_part,
                            spec.reference_noise,
                            spec.seed ^ 0x5ECu64 ^ ((qi as u64) << 8 | mi as u64),
                        );
                        let (_, ref2_attr) = universe.instance_parts(
                            class,
                            from_attr,
                            0x2000_0000_0000_0000 | ((qi as u64) << 8 | mi as u64),
                        );
                        slots.push(Some(Latent::grounded(&ref2_class, &ref2_attr)));
                    }
                }
                ModalityRole::DescriptiveAux => slots.push(Some(desc_latent.clone())),
            }
        }
        // Ground truth: the anchor (k' = 1, the paper's Recall@k(1)
        // protocol — one designated target object per query).
        queries.push(LatentQuery {
            latents: slots,
            ground_truth: vec![anchor],
            anchor,
            want: ObjectLabels { class, attr: want_attr },
        });
    }

    let ds = LatentDataset {
        name: spec.name.clone(),
        space,
        roles: spec.roles.clone(),
        object_latents,
        labels,
        queries,
    };
    debug_assert_eq!(ds.validate(), Ok(()));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> StructuredSpec {
        StructuredSpec {
            name: "test".into(),
            n_objects: 300,
            n_queries: 50,
            n_classes: 20,
            n_attrs: 12,
            attrs_per_class: 4,
            jitter: 0.15,
            text_variation: 0.05,
            reference_noise: 0.08,
            roles: vec![ModalityRole::Target, ModalityRole::DescriptiveAux],
            grounded_aux_shares_content: false,
            seed: 7,
        }
    }

    #[test]
    fn generated_dataset_is_consistent() {
        let ds = generate(&small_spec());
        assert_eq!(ds.validate(), Ok(()));
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.queries.len(), 50);
        assert_eq!(ds.num_modalities(), 2);
    }

    #[test]
    fn queries_want_a_different_attribute_than_the_reference_shows() {
        let ds = generate(&small_spec());
        for q in &ds.queries {
            let anchor_labels = ds.labels[q.anchor as usize];
            assert_eq!(q.want.class, anchor_labels.class);
            assert_eq!(q.want.attr, anchor_labels.attr, "anchor must carry the wanted attr");
            assert_eq!(q.ground_truth, vec![q.anchor]);
        }
    }

    #[test]
    fn corpus_text_is_shared_within_attribute_up_to_variation() {
        let mut spec = small_spec();
        spec.text_variation = 0.0;
        let ds = generate(&spec);
        // Find two objects with the same attribute: their text latents must
        // be identical when text_variation = 0 (structured encoding).
        let mut by_attr: std::collections::HashMap<u32, Vec<usize>> = Default::default();
        for (o, l) in ds.labels.iter().enumerate() {
            by_attr.entry(l.attr).or_default().push(o);
        }
        let group = by_attr.values().find(|v| v.len() >= 2).expect("shared attribute exists");
        let a = &ds.object_latents[group[0]][1];
        let b = &ds.object_latents[group[1]][1];
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn reference_is_close_to_anchor_in_class_but_not_attr() {
        let ds = generate(&small_spec());
        let space = ds.space;
        for q in ds.queries.iter().take(10) {
            let reference = q.latents[0].as_ref().unwrap();
            let anchor = &ds.object_latents[q.anchor as usize][0];
            let class_dist: f32 = reference
                .class_part(&space)
                .iter()
                .zip(anchor.class_part(&space))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let attr_dist: f32 = reference
                .attr_part(&space)
                .iter()
                .zip(anchor.attr_part(&space))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            assert!(class_dist < attr_dist, "class {class_dist} vs attr {attr_dist}");
        }
    }

    #[test]
    fn three_modality_datasets_generate() {
        let mut spec = small_spec();
        spec.roles = vec![
            ModalityRole::Target,
            ModalityRole::GroundedAux,
            ModalityRole::DescriptiveAux,
        ];
        let ds = generate(&spec);
        assert_eq!(ds.validate(), Ok(()));
        assert_eq!(ds.num_modalities(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.object_latents[5][0].values(), b.object_latents[5][0].values());
        assert_eq!(a.queries[3].anchor, b.queries[3].anchor);
    }
}
