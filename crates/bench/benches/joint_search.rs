//! Criterion benchmark of the joint search (Algorithm 2) on a scaled
//! ImageText corpus: per-query latency with and without the Lemma-4
//! multi-vector pruning.

use criterion::{criterion_group, criterion_main, Criterion};
use must_core::{Must, MustBuildOptions};
use must_data::embed::embed_dataset;
use must_vector::Weights;

fn bench_search(c: &mut Criterion) {
    let ds = must_data::catalog::image_text(8_000, 64, 1);
    let registry = must_bench::registry();
    let embedded = embed_dataset(&ds, &must_bench::efficiency::semisynthetic_config(), &registry);
    let queries: Vec<_> = embedded.queries.iter().map(|q| q.query.clone()).collect();
    let mut must = Must::build(
        embedded.objects,
        Weights::from_squared(vec![0.12, 0.56]).unwrap(),
        MustBuildOptions::default(),
    )
    .unwrap();

    let mut group = c.benchmark_group("joint_search");
    for (prune, name) in [(true, "l200_pruned"), (false, "l200_unpruned")] {
        must.set_prune(prune);
        let mut searcher = must.searcher();
        let mut qi = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                qi = (qi + 1) % queries.len();
                searcher.search(&queries[qi], 10, 200).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_search
}
criterion_main!(benches);
