//! Criterion microbenchmarks for the similarity kernels — the innermost
//! loops of the whole system (up to 90 % of search time per the paper).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use must_vector::kernels;

fn vectors(dim: usize) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..dim).map(|i| ((i * 37 + 11) as f32).sin()).collect();
    let b: Vec<f32> = (0..dim).map(|i| ((i * 53 + 7) as f32).cos()).collect();
    (a, b)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for dim in [32usize, 64, 128, 256] {
        let (a, b) = vectors(dim);
        group.bench_with_input(BenchmarkId::new("ip", dim), &dim, |bch, _| {
            bch.iter(|| kernels::ip(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("l2_sq", dim), &dim, |bch, _| {
            bch.iter(|| kernels::l2_sq(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_joint(c: &mut Criterion) {
    use must_vector::{JointDistance, MultiQuery, MultiVectorSet, VectorSetBuilder, Weights};
    let n = 4096;
    let mut m0 = VectorSetBuilder::new(64, n);
    let mut m1 = VectorSetBuilder::new(32, n);
    for i in 0..n {
        let v0: Vec<f32> = (0..64).map(|j| ((i * 31 + j * 7) as f32).sin()).collect();
        let v1: Vec<f32> = (0..32).map(|j| ((i * 17 + j * 13) as f32).cos()).collect();
        m0.push_normalized(&v0).unwrap();
        m1.push_normalized(&v1).unwrap();
    }
    let set = MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap();
    let joint = JointDistance::new(&set, Weights::new(vec![0.8, 0.33]).unwrap()).unwrap();
    let query = MultiQuery::full(vec![
        set.modality(0).get(0).to_vec(),
        set.modality(1).get(0).to_vec(),
    ]);
    let ev = joint.query(&query).unwrap();

    let mut group = c.benchmark_group("joint");
    group.bench_function("exact_ip", |b| {
        let mut id = 0u32;
        b.iter(|| {
            id = (id + 1) % n as u32;
            black_box(ev.ip(id))
        })
    });
    group.bench_function("pruned_ip_tight_threshold", |b| {
        let mut id = 0u32;
        b.iter(|| {
            id = (id + 1) % n as u32;
            black_box(ev.ip_pruned(id, 0.9))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels, bench_joint
}
criterion_main!(benches);
