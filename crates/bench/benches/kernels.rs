//! Criterion microbenchmarks for the similarity kernels — the innermost
//! loops of the whole system (up to 90 % of search time per the paper).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use must_vector::kernels;

fn vectors(dim: usize) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..dim).map(|i| ((i * 37 + 11) as f32).sin()).collect();
    let b: Vec<f32> = (0..dim).map(|i| ((i * 53 + 7) as f32).cos()).collect();
    (a, b)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for dim in [32usize, 64, 128, 256] {
        let (a, b) = vectors(dim);
        group.bench_with_input(BenchmarkId::new("ip", dim), &dim, |bch, _| {
            bch.iter(|| kernels::ip(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("l2_sq", dim), &dim, |bch, _| {
            bch.iter(|| kernels::l2_sq(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

/// Fused-row vs per-modality joint similarity: `m` modality segments of
/// dimension `d` each, weights baked into the fused *query* row (stored
/// rows stay raw), against the old layout's loop of `m` separate `ip`
/// calls with per-modality weight multiplies.  Reports the speedup ratio
/// per `(m, d)` point.
fn bench_ip_prescaled_segments(c: &mut Criterion) {
    use must_vector::{FusedRows, VectorSetBuilder, Weights};
    use std::time::Instant;

    let mut group = c.benchmark_group("ip_prescaled_segments");
    let mut ratios: Vec<(usize, usize, f64)> = Vec::new();
    for m in [2usize, 3, 4] {
        for d in [64usize, 128] {
            // A small corpus so rows live in cache: this isolates the
            // kernel shape (one fused pass vs m dispatched passes), not
            // memory latency — the serving bench measures the cache side.
            let n = 256usize;
            let sets: Vec<_> = (0..m)
                .map(|k| {
                    let mut b = VectorSetBuilder::new(d, n);
                    for i in 0..n {
                        let v: Vec<f32> =
                            (0..d).map(|j| ((i * 31 + j * 7 + k * 13) as f32).sin()).collect();
                        b.push_normalized(&v).unwrap();
                    }
                    b.finish()
                })
                .collect();
            let w = Weights::new((0..m).map(|k| 0.4 + 0.2 * k as f32).collect()).unwrap();
            let fused = FusedRows::from_sets(&sets).unwrap();
            // The serving-path query row: omega^2 baked into the query
            // side only, stored rows stay raw.
            let mut qrow = fused.row(0).to_vec();
            for (k, &wsq) in w.squared().iter().enumerate() {
                let (start, end) = fused.segment_bounds(k);
                for x in &mut qrow[start..end] {
                    *x *= wsq;
                }
            }

            group.bench_with_input(BenchmarkId::new(format!("fused_m{m}"), d), &d, |bch, _| {
                let mut id = 0u32;
                bch.iter(|| {
                    id = (id + 1) % n as u32;
                    kernels::ip_prescaled_segments(black_box(fused.row(id)), black_box(&qrow))
                })
            });
            group.bench_with_input(
                BenchmarkId::new(format!("per_modality_m{m}"), d),
                &d,
                |bch, _| {
                    let mut id = 0u32;
                    bch.iter(|| {
                        id = (id + 1) % n as u32;
                        let id = black_box(id);
                        let mut sum = 0.0f32;
                        for (k, set) in sets.iter().enumerate() {
                            sum += w.sq(k) * kernels::ip(set.get(id), black_box(set.get(0)));
                        }
                        sum
                    })
                },
            );

            // Direct ratio measurement (same work, interleaved timing) so
            // the bench output carries the headline number.
            let iters = 200_000u32;
            let t0 = Instant::now();
            let mut acc = 0.0f32;
            for i in 0..iters {
                let id = i % n as u32;
                acc += kernels::ip_prescaled_segments(black_box(fused.row(id)), black_box(&qrow));
            }
            let fused_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            let t0 = Instant::now();
            for i in 0..iters {
                let id = i % n as u32;
                let mut sum = 0.0f32;
                for (k, set) in sets.iter().enumerate() {
                    sum += w.sq(k) * kernels::ip(set.get(id), black_box(set.get(0)));
                }
                acc += sum;
            }
            let loop_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            black_box(acc);
            ratios.push((m, d, loop_ns / fused_ns));
        }
    }
    group.finish();
    for (m, d, ratio) in &ratios {
        eprintln!(
            "[kernels] fused/per-modality ratio  m={m} d={d}: {ratio:.2}x \
             (fused row is one contiguous ip)"
        );
    }
}

/// SQ8 quantized scan: the 8-lane `seg_quant_stats` decode+accumulate hot
/// loop (matching `FUSED_LANE`) against the 4-lane unroll it replaced.
/// Reports the per-dim delta ratio.
fn bench_sq8_scan(c: &mut Criterion) {
    use must_vector::quant::seg_quant_stats;
    use std::time::Instant;

    // The previous 4-lane unroll, kept here as the measurement baseline.
    fn seg_quant_stats_4lane(q: &[f32], codes: &[u8], min: f32, step: f32) -> (f32, f32) {
        let n = q.len();
        let mut d2 = [0.0f32; 4];
        let mut dot = [0.0f32; 4];
        let chunks = n / 4;
        for c in 0..chunks {
            let i = c * 4;
            for lane in 0..4 {
                let v = min + step * f32::from(codes[i + lane]);
                let d = q[i + lane] - v;
                d2[lane] += d * d;
                dot[lane] += q[i + lane] * v;
            }
        }
        let (mut d2s, mut dots) =
            (d2[0] + d2[1] + d2[2] + d2[3], dot[0] + dot[1] + dot[2] + dot[3]);
        for i in chunks * 4..n {
            let v = min + step * f32::from(codes[i]);
            let d = q[i] - v;
            d2s += d * d;
            dots += q[i] * v;
        }
        (d2s, dots)
    }

    let mut group = c.benchmark_group("sq8_scan");
    let mut ratios: Vec<(usize, f64)> = Vec::new();
    for dim in [64usize, 96, 256] {
        let q: Vec<f32> = (0..dim).map(|i| ((i * 37 + 11) as f32).sin()).collect();
        let codes: Vec<u8> = (0..dim).map(|i| (i.wrapping_mul(89).wrapping_add(31)) as u8).collect();
        let (min, step) = (-0.71f32, 0.005_6f32);
        group.bench_with_input(BenchmarkId::new("lanes8", dim), &dim, |bch, _| {
            bch.iter(|| seg_quant_stats(black_box(&q), black_box(&codes), min, step))
        });
        group.bench_with_input(BenchmarkId::new("lanes4", dim), &dim, |bch, _| {
            bch.iter(|| seg_quant_stats_4lane(black_box(&q), black_box(&codes), min, step))
        });

        // Direct interleaved ratio so the bench output carries the number.
        let iters = 400_000u32;
        let t0 = Instant::now();
        let mut acc = 0.0f32;
        for _ in 0..iters {
            let (a, b) = seg_quant_stats(black_box(&q), black_box(&codes), min, step);
            acc += a + b;
        }
        let ns8 = t0.elapsed().as_nanos() as f64 / f64::from(iters);
        let t0 = Instant::now();
        for _ in 0..iters {
            let (a, b) = seg_quant_stats_4lane(black_box(&q), black_box(&codes), min, step);
            acc += a + b;
        }
        let ns4 = t0.elapsed().as_nanos() as f64 / f64::from(iters);
        black_box(acc);
        ratios.push((dim, ns4 / ns8));
    }
    group.finish();
    for (dim, ratio) in &ratios {
        eprintln!("[kernels] sq8 scan 8-lane vs 4-lane  d={dim}: {ratio:.2}x");
    }
}

fn bench_joint(c: &mut Criterion) {
    use must_vector::{JointDistance, MultiQuery, MultiVectorSet, VectorSetBuilder, Weights};
    let n = 4096;
    let mut m0 = VectorSetBuilder::new(64, n);
    let mut m1 = VectorSetBuilder::new(32, n);
    for i in 0..n {
        let v0: Vec<f32> = (0..64).map(|j| ((i * 31 + j * 7) as f32).sin()).collect();
        let v1: Vec<f32> = (0..32).map(|j| ((i * 17 + j * 13) as f32).cos()).collect();
        m0.push_normalized(&v0).unwrap();
        m1.push_normalized(&v1).unwrap();
    }
    let set = MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap();
    let joint = JointDistance::new(&set, Weights::new(vec![0.8, 0.33]).unwrap()).unwrap();
    let query = MultiQuery::full(vec![
        set.modality(0).get(0).to_vec(),
        set.modality(1).get(0).to_vec(),
    ]);
    let ev = joint.query(&query).unwrap();

    let mut group = c.benchmark_group("joint");
    group.bench_function("exact_ip", |b| {
        let mut id = 0u32;
        b.iter(|| {
            id = (id + 1) % n as u32;
            black_box(ev.ip(id))
        })
    });
    group.bench_function("pruned_ip_tight_threshold", |b| {
        let mut id = 0u32;
        b.iter(|| {
            id = (id + 1) % n as u32;
            black_box(ev.ip_pruned(id, 0.9))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels, bench_ip_prescaled_segments, bench_sq8_scan, bench_joint
}
criterion_main!(benches);
