//! Criterion benchmark of fused-index construction (Algorithm 1) across
//! graph recipes on a small corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use must_core::index::{build_index, IndexOptions};
use must_core::oracle::JointOracle;
use must_data::embed::embed_dataset;
use must_graph::GraphRecipe;
use must_vector::Weights;

fn bench_build(c: &mut Criterion) {
    let ds = must_data::catalog::image_text(4_000, 16, 1);
    let registry = must_bench::registry();
    let embedded = embed_dataset(&ds, &must_bench::efficiency::semisynthetic_config(), &registry);
    let oracle = JointOracle::new(&embedded.objects, Weights::uniform(2)).unwrap();

    let mut group = c.benchmark_group("index_build_4k");
    group.sample_size(10);
    for recipe in [GraphRecipe::Fused, GraphRecipe::KGraph, GraphRecipe::Nssg, GraphRecipe::Hnsw] {
        group.bench_with_input(BenchmarkId::from_parameter(recipe.label()), &recipe, |b, &r| {
            b.iter(|| {
                build_index(&oracle, IndexOptions { gamma: 16, recipe: r, ..Default::default() })
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
