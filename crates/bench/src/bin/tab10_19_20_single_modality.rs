//! Tabs. X, XIX, XX — accuracy when queries supply only one modality:
//! target only (Tab. XIX) or auxiliary only (Tab. XX) on MIT-States,
//! CelebA and Shopping; Tab. X is the MIT-States slice.

use must_bench::accuracy::{prepare, run_single_modality};
use must_bench::report::{f4, Table};
use must_data::catalog::ShoppingCategory;
use must_data::LatentDataset;
use must_encoders::{EncoderConfig, EncoderRegistry, TargetEncoding, UnimodalKind};

fn run_rows(
    table: &mut Table,
    ds: &LatentDataset,
    registry: &EncoderRegistry,
    target_encoders: &[UnimodalKind],
    aux_encoder: UnimodalKind,
) {
    for &te in target_encoders {
        let config = EncoderConfig::new(TargetEncoding::Independent(te), vec![aux_encoder]);
        let prepared = prepare(ds, &config, registry);
        let target = run_single_modality(&prepared, &[1, 5, 10], 0);
        table.push_row(vec![
            ds.name.clone(),
            "Target".into(),
            te.label().into(),
            f4(target.recalls[0]),
            f4(target.recalls[1]),
            f4(target.recalls[2]),
        ]);
    }
    // Auxiliary-only row (encoder choice for the target slot is irrelevant).
    let config =
        EncoderConfig::new(TargetEncoding::Independent(target_encoders[0]), vec![aux_encoder]);
    let prepared = prepare(ds, &config, registry);
    let auxiliary = run_single_modality(&prepared, &[1, 5, 10], 1);
    table.push_row(vec![
        ds.name.clone(),
        "Auxiliary".into(),
        aux_encoder.label().into(),
        f4(auxiliary.recalls[0]),
        f4(auxiliary.recalls[1]),
        f4(auxiliary.recalls[2]),
    ]);
}

fn main() {
    let registry = must_bench::registry();
    let scale = must_bench::scale();
    let seed = must_bench::DATASET_SEED;
    let mut table = Table::new(
        "Tab. X XIX XX",
        "Search accuracy with a single query modality",
        &["Dataset", "Modality", "Encoder", "Recall@1(1)", "Recall@5(1)", "Recall@10(1)"],
    );

    use UnimodalKind::*;
    let mit = must_data::catalog::mit_states(scale, seed);
    must_bench::banner(&mit);
    run_rows(&mut table, &mit, &registry, &[ResNet17, ResNet50], Lstm);
    // Tab. X also reports the Transformer auxiliary row on MIT-States.
    let config = EncoderConfig::new(TargetEncoding::Independent(ResNet17), vec![Transformer]);
    let prepared = prepare(&mit, &config, &registry);
    let tr = run_single_modality(&prepared, &[1, 5, 10], 1);
    table.push_row(vec![
        mit.name.clone(),
        "Auxiliary".into(),
        Transformer.label().into(),
        f4(tr.recalls[0]),
        f4(tr.recalls[1]),
        f4(tr.recalls[2]),
    ]);

    let celeba = must_data::catalog::celeba(scale, seed);
    must_bench::banner(&celeba);
    run_rows(&mut table, &celeba, &registry, &[ResNet17, ResNet50], Encoding);

    let shopping = must_data::catalog::shopping(ShoppingCategory::TShirt, scale, seed);
    must_bench::banner(&shopping);
    run_rows(&mut table, &shopping, &registry, &[ResNet17], Encoding);

    table.emit();
}
