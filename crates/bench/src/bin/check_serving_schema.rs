//! Schema + drift check for the serving-bench artefact: verifies that a
//! freshly generated `BENCH_serving.json` carries every key the perf
//! trajectory depends on (including the weight-churn entries) and that
//! its recall figures sit within ±0.01 of a committed reference artefact
//! — so layout or seam changes cannot silently reshape or degrade the
//! artefact CI publishes.
//!
//! Usage: `check_serving_schema <fresh.json> [committed.json]`
//! (the committed path is optional: without it only the schema is
//! checked).  Exits non-zero with a message per violation.

use serde::Value;

/// Required numeric keys per `entries[]` element.
const ENTRY_KEYS: &[&str] = &["threads", "batch", "qps", "p50_ms", "p99_ms", "recall_at_10"];
/// Required numeric keys per `shard_entries[]` element.
const SHARD_KEYS: &[&str] =
    &["shards", "threads", "batch", "build_secs", "qps", "p50_ms", "p99_ms", "recall_at_10"];
/// Required numeric keys per `weight_churn[]` element.
const CHURN_KEYS: &[&str] = &[
    "switch_every",
    "switches",
    "threads",
    "steady_qps",
    "churn_qps",
    "rebuild_qps",
    "churn_over_steady",
    "recall_at_10_churn",
    "recall_at_10_rebuild",
];

/// How far a fresh recall figure may drift from the committed artefact's.
const RECALL_TOLERANCE: f64 = 0.01;

fn num(v: &Value, key: &str, ctx: &str, errors: &mut Vec<String>) -> Option<f64> {
    match v.get_field(key).and_then(Value::as_num) {
        Some(n) => Some(n),
        None => {
            errors.push(format!("{ctx}: missing or non-numeric key `{key}`"));
            None
        }
    }
}

fn check_array(
    root: &Value,
    field: &str,
    keys: &[&str],
    errors: &mut Vec<String>,
) -> Vec<Value> {
    let Some(items) = root.get_field(field).and_then(Value::as_array) else {
        errors.push(format!("artefact: missing array `{field}`"));
        return Vec::new();
    };
    if items.is_empty() {
        errors.push(format!("artefact: `{field}` is empty"));
    }
    for (i, item) in items.iter().enumerate() {
        for key in keys {
            num(item, key, &format!("{field}[{i}]"), errors);
        }
    }
    items.to_vec()
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read artefact {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse artefact {path}: {e}"))
}

/// Keys identifying an operating point, per array kind — recall is
/// compared only between matching points.
fn point_key(kind: &str, v: &Value) -> String {
    let get = |k: &str| v.get_field(k).and_then(Value::as_num).unwrap_or(-1.0);
    match kind {
        "entries" => format!("t{}b{}", get("threads"), get("batch")),
        "shard_entries" => format!("s{}t{}b{}", get("shards"), get("threads"), get("batch")),
        _ => format!("q{}", get("switch_every")),
    }
}

fn compare_recall(
    kind: &str,
    recall_key: &str,
    fresh: &[Value],
    committed: &[Value],
    errors: &mut Vec<String>,
) {
    for f in fresh {
        let key = point_key(kind, f);
        let Some(c) = committed.iter().find(|c| point_key(kind, c) == key) else {
            // Operating points may legitimately differ across hosts
            // (thread sweeps clamp to the machine); only matching points
            // are compared.
            continue;
        };
        let (Some(fr), Some(cr)) = (
            f.get_field(recall_key).and_then(Value::as_num),
            c.get_field(recall_key).and_then(Value::as_num),
        ) else {
            continue; // missing keys are already reported by the schema pass
        };
        if (fr - cr).abs() > RECALL_TOLERANCE {
            errors.push(format!(
                "{kind}[{key}]: {recall_key} drifted from committed artefact: \
                 {fr:.4} vs {cr:.4} (tolerance ±{RECALL_TOLERANCE})"
            ));
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let fresh_path = args.next().unwrap_or_else(|| "BENCH_serving.json".into());
    let committed_path = args.next();

    let mut errors = Vec::new();
    let fresh = load(&fresh_path);
    for key in ["bench", "dataset", "index"] {
        if fresh.get_field(key).is_none() {
            errors.push(format!("artefact: missing key `{key}`"));
        }
    }
    for key in ["n_objects", "n_queries", "k", "l"] {
        num(&fresh, key, "artefact", &mut errors);
    }
    let entries = check_array(&fresh, "entries", ENTRY_KEYS, &mut errors);
    let shard_entries = check_array(&fresh, "shard_entries", SHARD_KEYS, &mut errors);
    let churn = check_array(&fresh, "weight_churn", CHURN_KEYS, &mut errors);

    // The headline claim of the weight-churn sweep must hold in the
    // artefact itself: the per-query-weight path sustains >= 0.9x the
    // steady-state QPS (while the rebuild baseline is free to collapse).
    for (i, e) in churn.iter().enumerate() {
        if let Some(ratio) = e.get_field("churn_over_steady").and_then(Value::as_num) {
            if ratio < 0.9 {
                errors.push(format!(
                    "weight_churn[{i}]: churn_over_steady {ratio:.3} < 0.9 — the query-time \
                     weighting path must not pay a rebuild-shaped cost"
                ));
            }
        }
    }

    if let Some(committed_path) = committed_path {
        let committed = load(&committed_path);
        let corpus_of = |v: &Value| {
            (
                v.get_field("n_objects").and_then(Value::as_num),
                v.get_field("n_queries").and_then(Value::as_num),
            )
        };
        if corpus_of(&fresh) == corpus_of(&committed) {
            let get =
                |f: &str| committed.get_field(f).and_then(Value::as_array).map(<[Value]>::to_vec);
            if let Some(c) = get("entries") {
                compare_recall("entries", "recall_at_10", &entries, &c, &mut errors);
            }
            if let Some(c) = get("shard_entries") {
                compare_recall("shard_entries", "recall_at_10", &shard_entries, &c, &mut errors);
            }
            if let Some(c) = get("weight_churn") {
                compare_recall("weight_churn", "recall_at_10_churn", &churn, &c, &mut errors);
            }
        } else {
            // A smoke run at a different MUST_SCALE serves a different
            // corpus; its recall is not comparable to the committed
            // artefact's, so only the schema and ratio checks apply.
            println!(
                "note: corpus differs from committed artefact \
                 (fresh {:?} vs committed {:?}); recall drift not compared",
                corpus_of(&fresh),
                corpus_of(&committed)
            );
        }
    }

    if errors.is_empty() {
        println!(
            "{fresh_path}: schema ok ({} entries, {} shard entries, {} churn entries)",
            entries.len(),
            shard_entries.len(),
            churn.len()
        );
    } else {
        for e in &errors {
            eprintln!("SCHEMA ERROR: {e}");
        }
        std::process::exit(1);
    }
}
