//! Schema + drift check for the serving-bench artefact: verifies that a
//! freshly generated `BENCH_serving.json` carries every key the perf
//! trajectory depends on (including the routing, weight-churn, and
//! open-loop entries), that its recall figures sit within ±0.01 of a
//! committed reference artefact, that **thread scaling holds**: with two
//! workers the server must clear 1.15× the single-worker QPS and keep
//! p99 within 3× — so a regression back toward a shared-dequeue hot path
//! cannot land silently — and that **selective routing pays**: at full
//! scale at least one routed S=8 point must hold Recall@10 ≥ 0.98 at
//! S=1-class QPS (≥ 0.7× the single-shard entry) while beating the S=8
//! full fan-out by ≥ 4×.
//!
//! The **scale tier** (`scale_tier[]`, written by `serving -- --scale`)
//! gets its own gates in both artefacts: hot-path storage ≤ 5 bytes per
//! dimension (retained f32 rows + SQ8 codes), Recall@10 ≥ 0.97 at the
//! 1M-object tier (≥ 0.9 for reduced-size smoke entries), and the
//! committed artefact must carry at least one ≥ 1M entry — the
//! acceptance pin for the quantized-scan + exact-re-rank serving path.
//!
//! The **build sweep** (`build_sweep[]`, written by `serving --
//! --build-sweep`) gets the build-parallelism gate: when the fresh host
//! has ≥ 2 hardware threads, the wave-scheduled graph build at `T = 2`
//! must run ≥ 1.6× faster than at `T = 1` on the same corpus — the
//! wall-clock proof that the deterministic wave schedule actually
//! converts workers into build throughput.
//!
//! Both scaling gates are guarded twice, mirroring the recall-drift
//! guard: they only arm when (a) the fresh artefact's corpus matches the
//! committed reference (a CI smoke run at a different `MUST_SCALE` is
//! not a performance measurement) and (b) the fresh artefact reports
//! `host_threads >= 2` — on a single hardware thread, `threads=2`
//! measures preemption, not parallelism, and no runtime can beat physics.
//!
//! Usage: `check_serving_schema <fresh.json> [committed.json]`
//! (the committed path is optional: without it only the schema is
//! checked).  Exits non-zero with a message per violation.

use serde::Value;

/// Required numeric keys per `entries[]` element.
const ENTRY_KEYS: &[&str] = &[
    "threads",
    "batch",
    "qps",
    "p50_ms",
    "p99_ms",
    "recall_at_10",
    "scaling_efficiency",
];
/// Required numeric keys per `shard_entries[]` element.
const SHARD_KEYS: &[&str] = &[
    "shards",
    "threads",
    "batch",
    "build_secs",
    "build_threads",
    "qps",
    "p50_ms",
    "p99_ms",
    "recall_at_10",
];
/// Required numeric keys per `routing[]` element.
const ROUTING_KEYS: &[&str] = &[
    "shards",
    "threads",
    "batch",
    "fan_out",
    "l_shard",
    "qps",
    "p50_ms",
    "p99_ms",
    "recall_at_10",
];
/// Required numeric keys per `weight_churn[]` element.
const CHURN_KEYS: &[&str] = &[
    "switch_every",
    "switches",
    "threads",
    "steady_qps",
    "churn_qps",
    "rebuild_qps",
    "churn_over_steady",
    "recall_at_10_churn",
    "recall_at_10_rebuild",
];

/// Required numeric keys per `open_loop[]` element.
const OPEN_LOOP_KEYS: &[&str] =
    &["workers", "target_qps", "offered", "achieved_qps", "p50_ms", "p99_ms"];

/// Required numeric keys per `scale_tier[]` element.
const SCALE_KEYS: &[&str] = &[
    "n_objects",
    "n_queries",
    "total_dims",
    "bytes_per_object",
    "bytes_per_dim",
    "overhead_bytes_per_object",
    "embed_secs",
    "build_secs",
    "build_threads",
    "threads",
    "qps",
    "p50_ms",
    "p99_ms",
    "recall_at_10",
    "rerank_k",
    "l",
];

/// Required numeric keys per `build_sweep[]` element.
const BUILD_KEYS: &[&str] = &["n_objects", "threads", "build_secs", "speedup_vs_t1"];

/// Scale-tier gate: hot-path storage (retained f32 rows + SQ8 codes)
/// per dimension.  96 dims cost 384 f32 bytes + 96 code bytes = exactly
/// 5 B/dim; the epsilon absorbs float division, not a layout change.
const MAX_SCALE_BYTES_PER_DIM: f64 = 5.0 + 1e-9;

/// Scale-tier gate: Recall@10 of the quantized-scan + exact-re-rank
/// path at the full 1M-object tier.
const MIN_SCALE_RECALL_FULL: f64 = 0.97;

/// Scale-tier gate: Recall@10 floor for reduced-size (smoke) entries.
const MIN_SCALE_RECALL_SMOKE: f64 = 0.9;

/// Entries at or above this object count are "full" scale-tier runs.
const SCALE_FULL_N: f64 = 1_000_000.0;

/// How far a fresh recall figure may drift from the committed artefact's.
const RECALL_TOLERANCE: f64 = 0.01;

/// Scaling gate: two workers must clear this multiple of one worker's QPS.
const MIN_T2_SPEEDUP: f64 = 1.15;

/// Scaling gate: two workers may inflate p99 by at most this factor.
const MAX_T2_P99_BLOWUP: f64 = 3.0;

/// Build-parallelism gate: the wave-scheduled graph build at `T = 2`
/// must run at least this much faster than `T = 1` on the same corpus.
/// The per-wave serial commit is a tiny fraction of the work (memory
/// appends only — every descent, search, and re-prune runs in the
/// parallel phases), so two workers clearing 1.6× is a loose bar for a
/// correctly wave-scheduled build and an impossible one for a build
/// that secretly serialises.  Armed only when the fresh artefact's
/// `host_threads >= 2`, like the serving thread-scaling gate.
const MIN_BUILD_T2_SPEEDUP: f64 = 1.6;

/// Routing gate: at least one routed operating point must hold this
/// Recall@10 while clearing both throughput bars below — otherwise
/// selective routing is costing throughput instead of buying it.
const MIN_ROUTED_RECALL: f64 = 0.98;

/// Routing gate, bar 1: the qualifying routed point must reach this
/// fraction of the S=1 shard entry's QPS.  Exact parity is not physical
/// on a single-core host: a fan-out-2 query pays two graph descents
/// where S=1 pays one (~15 % at the committed operating point — DESIGN
/// §10), and host-load noise adds ±10 % run to run.  The bar pins the
/// routed dial *at* S=1-class throughput while those two effects keep a
/// strict `>= 1.0` check permanently flapping.
const MIN_ROUTED_S1_RATIO: f64 = 0.7;

/// Routing gate, bar 2: the qualifying routed point must beat the S=8
/// full-fan-out shard entry's QPS by this factor — the dial's actual
/// claim is that routing rescues sharded serving from the ~1/S QPS
/// cliff, and a 4× floor (measured ~6×) cannot be met by accident.
const MIN_ROUTED_S8_SPEEDUP: f64 = 4.0;

fn num(v: &Value, key: &str, ctx: &str, errors: &mut Vec<String>) -> Option<f64> {
    match v.get_field(key).and_then(Value::as_num) {
        Some(n) => Some(n),
        None => {
            errors.push(format!("{ctx}: missing or non-numeric key `{key}`"));
            None
        }
    }
}

fn check_array(
    root: &Value,
    field: &str,
    keys: &[&str],
    errors: &mut Vec<String>,
) -> Vec<Value> {
    let Some(items) = root.get_field(field).and_then(Value::as_array) else {
        errors.push(format!("artefact: missing array `{field}`"));
        return Vec::new();
    };
    if items.is_empty() {
        errors.push(format!("artefact: `{field}` is empty"));
    }
    for (i, item) in items.iter().enumerate() {
        for key in keys {
            num(item, key, &format!("{field}[{i}]"), errors);
        }
    }
    items.to_vec()
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read artefact {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse artefact {path}: {e}"))
}

/// Keys identifying an operating point, per array kind — recall is
/// compared only between matching points.
fn point_key(kind: &str, v: &Value) -> String {
    let get = |k: &str| v.get_field(k).and_then(Value::as_num).unwrap_or(-1.0);
    match kind {
        "entries" => format!("t{}b{}", get("threads"), get("batch")),
        // Shard (and routing) sweeps pin their thread count to the host's
        // parallelism, so `threads` is host-dependent and must stay out of
        // the identity — keying on it silently skipped every shard-recall
        // comparison between hosts with different core counts.
        "shard_entries" => format!("s{}", get("shards")),
        "routing" => format!("s{}r{}ls{}", get("shards"), get("fan_out"), get("l_shard")),
        // Scale-tier entries are identified by corpus size alone: a 64k
        // smoke entry must never be recall-compared against the 1M tier.
        "scale_tier" => format!("n{}", get("n_objects")),
        _ => format!("q{}", get("switch_every")),
    }
}

/// The scale-tier gates, applied to every entry of `which` artefact:
/// hot-path storage stays at or under `MAX_SCALE_BYTES_PER_DIM`, and
/// the quantized-scan + exact-re-rank path holds Recall@10 ≥ 0.97 at
/// the 1M tier (≥ 0.9 for reduced-size smoke entries).
fn check_scale_gates(which: &str, items: &[Value], errors: &mut Vec<String>) {
    for (i, e) in items.iter().enumerate() {
        let get = |k: &str| e.get_field(k).and_then(Value::as_num);
        let n = get("n_objects").unwrap_or(-1.0);
        if let Some(bpd) = get("bytes_per_dim") {
            if bpd > MAX_SCALE_BYTES_PER_DIM {
                errors.push(format!(
                    "{which} scale_tier[{i}] (n={n}): bytes_per_dim {bpd:.3} > 5 — the \
                     SQ8 tier must keep hot-path storage at <= 5 bytes per dimension"
                ));
            }
        }
        if let Some(recall) = get("recall_at_10") {
            let floor = if n >= SCALE_FULL_N {
                MIN_SCALE_RECALL_FULL
            } else {
                MIN_SCALE_RECALL_SMOKE
            };
            if recall < floor {
                errors.push(format!(
                    "{which} scale_tier[{i}] (n={n}): recall_at_10 {recall:.4} < {floor} — \
                     the quantized scan with exact re-rank must hold recall at scale"
                ));
            }
        }
    }
    if !items.iter().any(|e| {
        e.get_field("n_objects").and_then(Value::as_num).unwrap_or(-1.0) >= SCALE_FULL_N
    }) {
        errors.push(format!(
            "{which} artefact: scale_tier has no entry with n_objects >= 1M — run \
             `MUST_SCALE_N=1000000 serving -- --scale` and commit the result"
        ));
    }
}

fn compare_recall(
    kind: &str,
    recall_key: &str,
    fresh: &[Value],
    committed: &[Value],
    errors: &mut Vec<String>,
) {
    for f in fresh {
        let key = point_key(kind, f);
        let Some(c) = committed.iter().find(|c| point_key(kind, c) == key) else {
            // Operating points may legitimately differ across hosts
            // (thread sweeps clamp to the machine); only matching points
            // are compared.
            continue;
        };
        let (Some(fr), Some(cr)) = (
            f.get_field(recall_key).and_then(Value::as_num),
            c.get_field(recall_key).and_then(Value::as_num),
        ) else {
            continue; // missing keys are already reported by the schema pass
        };
        if (fr - cr).abs() > RECALL_TOLERANCE {
            errors.push(format!(
                "{kind}[{key}]: {recall_key} drifted from committed artefact: \
                 {fr:.4} vs {cr:.4} (tolerance ±{RECALL_TOLERANCE})"
            ));
        }
    }
}

/// The thread-scaling gates over the fresh `entries[]`: for every batch
/// size measured at both `threads=1` and `threads=2`, two workers must
/// reach `MIN_T2_SPEEDUP` × the one-worker QPS and stay within
/// `MAX_T2_P99_BLOWUP` × its p99.  The caller applies the corpus-match
/// and `host_threads` guards.
fn check_scaling(entries: &[Value], errors: &mut Vec<String>) {
    let point = |threads: f64, batch: f64| {
        entries.iter().find(|e| {
            let get = |k: &str| e.get_field(k).and_then(Value::as_num).unwrap_or(-1.0);
            (get("threads") - threads).abs() < 0.5 && (get("batch") - batch).abs() < 0.5
        })
    };
    // Each batch value appears once per thread count in `entries`; dedup
    // so every gate fires (and reports) once per batch size.
    let mut batches: Vec<f64> = entries
        .iter()
        .filter_map(|e| e.get_field("batch").and_then(Value::as_num))
        .collect();
    batches.sort_by(f64::total_cmp);
    batches.dedup();
    let mut checked = false;
    for &batch in &batches {
        let (Some(t1), Some(t2)) = (point(1.0, batch), point(2.0, batch)) else { continue };
        let get = |e: &Value, k: &str| e.get_field(k).and_then(Value::as_num);
        if let (Some(q1), Some(q2)) = (get(t1, "qps"), get(t2, "qps")) {
            checked = true;
            if q2 < MIN_T2_SPEEDUP * q1 {
                errors.push(format!(
                    "entries[b{batch}]: threads=2 qps {q2:.0} < {MIN_T2_SPEEDUP}x threads=1 qps \
                     {q1:.0} — thread scaling regressed (shared hot-path contention?)"
                ));
            }
        }
        if let (Some(p1), Some(p2)) = (get(t1, "p99_ms"), get(t2, "p99_ms")) {
            if p2 > MAX_T2_P99_BLOWUP * p1 {
                errors.push(format!(
                    "entries[b{batch}]: threads=2 p99 {p2:.3}ms > {MAX_T2_P99_BLOWUP}x threads=1 \
                     p99 {p1:.3}ms — tail latency regressed under concurrency"
                ));
            }
        }
    }
    if !checked {
        errors.push("scaling gate: no batch size has both threads=1 and threads=2 entries".into());
    }
}

/// The build-parallelism gate over the fresh `build_sweep[]`: for every
/// corpus size measured at both `T=1` and `T=2`, the wave build at two
/// workers must finish in at most `1 / MIN_BUILD_T2_SPEEDUP` of the
/// single-worker wall clock.  The caller applies the `host_threads`
/// guard (a single hardware thread cannot exhibit parallel speedup).
fn check_build_speedup(build_sweep: &[Value], errors: &mut Vec<String>) {
    let get = |e: &Value, k: &str| e.get_field(k).and_then(Value::as_num);
    let mut sizes: Vec<f64> = build_sweep.iter().filter_map(|e| get(e, "n_objects")).collect();
    sizes.sort_by(f64::total_cmp);
    sizes.dedup();
    let mut checked = false;
    for &n in &sizes {
        let point = |threads: f64| {
            build_sweep.iter().find(|e| {
                get(e, "n_objects") == Some(n)
                    && (get(e, "threads").unwrap_or(-1.0) - threads).abs() < 0.5
            })
        };
        let (Some(t1), Some(t2)) = (point(1.0), point(2.0)) else { continue };
        let (Some(s1), Some(s2)) = (get(t1, "build_secs"), get(t2, "build_secs")) else { continue };
        checked = true;
        if s2 * MIN_BUILD_T2_SPEEDUP > s1 {
            errors.push(format!(
                "build_sweep[n{n}]: T=2 build {s2:.2}s is only {:.2}x the T=1 build {s1:.2}s \
                 (need >= {MIN_BUILD_T2_SPEEDUP}x) — the wave-scheduled build stopped \
                 converting workers into wall clock",
                s1 / s2
            ));
        }
    }
    if !checked {
        errors.push(
            "build-speedup gate: build_sweep has no corpus size with both T=1 and T=2 entries"
                .into(),
        );
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let fresh_path = args.next().unwrap_or_else(|| "BENCH_serving.json".into());
    let committed_path = args.next();

    let mut errors = Vec::new();
    let fresh = load(&fresh_path);
    for key in ["bench", "dataset", "index"] {
        if fresh.get_field(key).is_none() {
            errors.push(format!("artefact: missing key `{key}`"));
        }
    }
    for key in ["n_objects", "n_queries", "k", "l", "host_threads"] {
        num(&fresh, key, "artefact", &mut errors);
    }
    let entries = check_array(&fresh, "entries", ENTRY_KEYS, &mut errors);
    let shard_entries = check_array(&fresh, "shard_entries", SHARD_KEYS, &mut errors);
    let routing = check_array(&fresh, "routing", ROUTING_KEYS, &mut errors);
    let churn = check_array(&fresh, "weight_churn", CHURN_KEYS, &mut errors);
    let open_loop = check_array(&fresh, "open_loop", OPEN_LOOP_KEYS, &mut errors);
    let scale_tier = check_array(&fresh, "scale_tier", SCALE_KEYS, &mut errors);
    check_scale_gates("fresh", &scale_tier, &mut errors);
    let build_sweep = check_array(&fresh, "build_sweep", BUILD_KEYS, &mut errors);
    // Build-parallelism gate: armed by the fresh host alone — the sweep
    // carries its own corpus size, so no committed/corpus match applies.
    let host_threads = fresh.get_field("host_threads").and_then(Value::as_num).unwrap_or(0.0);
    if host_threads >= 2.0 {
        check_build_speedup(&build_sweep, &mut errors);
    } else {
        println!(
            "note: host_threads={host_threads} < 2; build-speedup gate not applicable on \
             this host"
        );
    }
    if open_loop.len() < 3 {
        errors.push(format!(
            "artefact: `open_loop` has {} entries, needs >= 3 arrival rates",
            open_loop.len()
        ));
    }

    // The headline claim of the weight-churn sweep must hold in the
    // artefact itself: the per-query-weight path sustains >= 0.9x the
    // steady-state QPS (while the rebuild baseline is free to collapse).
    for (i, e) in churn.iter().enumerate() {
        if let Some(ratio) = e.get_field("churn_over_steady").and_then(Value::as_num) {
            if ratio < 0.9 {
                errors.push(format!(
                    "weight_churn[{i}]: churn_over_steady {ratio:.3} < 0.9 — the query-time \
                     weighting path must not pay a rebuild-shaped cost"
                ));
            }
        }
    }

    if let Some(committed_path) = committed_path {
        let committed = load(&committed_path);
        // Surface the provenance of the committed trajectory loudly: on a
        // one-hardware-thread bench host every thread/shard sweep in the
        // artefact measures scheduler overhead, not parallel speedup, and
        // downstream readers comparing QPS across thread counts need to
        // know that before drawing conclusions.
        let committed_host =
            committed.get_field("host_threads").and_then(Value::as_num).unwrap_or(0.0);
        if committed_host < 2.0 {
            println!(
                "WARNING: committed artefact {committed_path} was benched with \
                 host_threads={committed_host} — its thread-scaling and multi-shard figures \
                 measure a single hardware thread, not parallel speedup"
            );
        }
        // The scale tier rides outside the corpus-match guard: its
        // entries are keyed by their own `n_objects`, so a smoke run's
        // 64k entry never compares against the committed 1M tier, and
        // the committed artefact itself must carry a gate-passing 1M
        // entry (the acceptance pin for the SQ8 serving path).
        if let Some(c) = committed.get_field("scale_tier").and_then(Value::as_array) {
            check_scale_gates("committed", c, &mut errors);
            compare_recall("scale_tier", "recall_at_10", &scale_tier, c, &mut errors);
        } else {
            errors.push(format!(
                "committed artefact {committed_path}: missing array `scale_tier`"
            ));
        }
        let corpus_of = |v: &Value| {
            (
                v.get_field("n_objects").and_then(Value::as_num),
                v.get_field("n_queries").and_then(Value::as_num),
            )
        };
        if corpus_of(&fresh) == corpus_of(&committed) {
            let get =
                |f: &str| committed.get_field(f).and_then(Value::as_array).map(<[Value]>::to_vec);
            if let Some(c) = get("entries") {
                compare_recall("entries", "recall_at_10", &entries, &c, &mut errors);
            }
            if let Some(c) = get("shard_entries") {
                compare_recall("shard_entries", "recall_at_10", &shard_entries, &c, &mut errors);
            }
            if let Some(c) = get("routing") {
                compare_recall("routing", "recall_at_10", &routing, &c, &mut errors);
            }
            // Routing acceptance gate (full-scale runs only): selective
            // routing must *buy* throughput — at least one routed S=8
            // operating point has to hold Recall@10 while reaching
            // S=1-class QPS (bar 1) and beating the S=8 full fan-out by
            // a wide margin (bar 2).  Otherwise scattering to fewer
            // shards is pure overhead and the dial should not ship.
            let shard_qps = |s: f64| {
                shard_entries
                    .iter()
                    .filter(|e| {
                        e.get_field("shards").and_then(Value::as_num).unwrap_or(-1.0) == s
                    })
                    .filter_map(|e| e.get_field("qps").and_then(Value::as_num))
                    .fold(f64::NAN, f64::max)
            };
            let (s1_qps, s8_qps) = (shard_qps(1.0), shard_qps(8.0));
            if s1_qps.is_finite() && s8_qps.is_finite() && !routing.is_empty() {
                let cleared = routing.iter().any(|e| {
                    let get = |k: &str| e.get_field(k).and_then(Value::as_num).unwrap_or(-1.0);
                    get("recall_at_10") >= MIN_ROUTED_RECALL
                        && get("qps") >= MIN_ROUTED_S1_RATIO * s1_qps
                        && get("qps") >= MIN_ROUTED_S8_SPEEDUP * s8_qps
                });
                if !cleared {
                    errors.push(format!(
                        "routing: no routed operating point reaches recall@10 >= \
                         {MIN_ROUTED_RECALL} at qps >= {MIN_ROUTED_S1_RATIO} x the S=1 \
                         shard entry's {s1_qps:.0} and >= {MIN_ROUTED_S8_SPEEDUP} x the \
                         S=8 full fan-out's {s8_qps:.0} — selective routing is costing \
                         throughput instead of buying it"
                    ));
                }
            }
            if let Some(c) = get("weight_churn") {
                compare_recall("weight_churn", "recall_at_10_churn", &churn, &c, &mut errors);
            }
            // Thread-scaling gates: a full-scale run on a multi-core host
            // must demonstrate real scaling.  `host_threads` is the fresh
            // run's own parallelism — a 1-thread host cannot exhibit
            // parallel speedup, so the gate stays disarmed there.
            if host_threads >= 2.0 {
                check_scaling(&entries, &mut errors);
            } else {
                println!(
                    "note: host_threads={host_threads} < 2; thread-scaling gates not \
                     applicable on this host"
                );
            }
        } else {
            // A smoke run at a different MUST_SCALE serves a different
            // corpus; its recall is not comparable to the committed
            // artefact's, so only the schema and ratio checks apply.
            println!(
                "note: corpus differs from committed artefact \
                 (fresh {:?} vs committed {:?}); recall drift not compared",
                corpus_of(&fresh),
                corpus_of(&committed)
            );
        }
    }

    if errors.is_empty() {
        println!(
            "{fresh_path}: schema ok ({} entries, {} shard entries, {} routing entries, \
             {} churn entries, {} open-loop entries, {} scale-tier entries, {} build-sweep \
             entries)",
            entries.len(),
            shard_entries.len(),
            routing.len(),
            churn.len(),
            open_loop.len(),
            scale_tier.len(),
            build_sweep.len()
        );
    } else {
        for e in &errors {
            eprintln!("SCHEMA ERROR: {e}");
        }
        std::process::exit(1);
    }
}
