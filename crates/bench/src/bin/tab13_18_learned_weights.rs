//! Tabs. XIII–XVIII — the learned weights (squared) per dataset and
//! encoder configuration (Appendix K).

use must_bench::accuracy::prepare;
use must_bench::report::Table;
use must_core::weights::WeightLearnConfig;
use must_data::catalog::ShoppingCategory;
use must_data::LatentDataset;
use must_encoders::{ComposerKind, EncoderConfig, EncoderRegistry, TargetEncoding, UnimodalKind};

fn learn_row(
    table: &mut Table,
    ds: &LatentDataset,
    config: &EncoderConfig,
    registry: &EncoderRegistry,
) {
    let prepared = prepare(ds, config, registry);
    let learned = prepared.learn(&WeightLearnConfig::default());
    let squared: Vec<String> =
        learned.weights.squared().iter().map(|w| format!("{w:.4}")).collect();
    table.push_row(vec![
        ds.name.clone(),
        config.label(),
        squared.join(", "),
        format!("{:.1}s", learned.train_secs),
    ]);
}

fn main() {
    let scale = must_bench::scale();
    let seed = must_bench::DATASET_SEED;
    let registry = must_bench::registry();
    let mut table = Table::new(
        "Tab. XIII-XVIII",
        "Learned weights (squared, modality order) per dataset and encoder",
        &["Dataset", "Encoder", "w^2 (per modality)", "Train time"],
    );

    use ComposerKind::*;
    use UnimodalKind::*;
    let ind = TargetEncoding::Independent;
    let comp = TargetEncoding::Composed;

    let mit = must_data::catalog::mit_states(scale, seed);
    for config in [
        EncoderConfig::new(ind(ResNet17), vec![Lstm]),
        EncoderConfig::new(ind(ResNet50), vec![Lstm]),
        EncoderConfig::new(ind(ResNet17), vec![Transformer]),
        EncoderConfig::new(ind(ResNet50), vec![Transformer]),
        EncoderConfig::new(comp(Tirg), vec![Lstm]),
        EncoderConfig::new(comp(Tirg), vec![Transformer]),
        EncoderConfig::new(comp(Clip), vec![Lstm]),
        EncoderConfig::new(comp(Clip), vec![Transformer]),
    ] {
        learn_row(&mut table, &mit, &config, &registry);
    }

    let celeba = must_data::catalog::celeba(scale, seed);
    for config in [
        EncoderConfig::new(ind(ResNet17), vec![Encoding]),
        EncoderConfig::new(ind(ResNet50), vec![Encoding]),
        EncoderConfig::new(comp(Tirg), vec![Encoding]),
        EncoderConfig::new(comp(Clip), vec![Encoding]),
    ] {
        learn_row(&mut table, &celeba, &config, &registry);
    }

    let shopping = must_data::catalog::shopping(ShoppingCategory::TShirt, scale, seed);
    for config in [
        EncoderConfig::new(ind(ResNet17), vec![Encoding]),
        EncoderConfig::new(comp(Tirg), vec![Encoding]),
    ] {
        learn_row(&mut table, &shopping, &config, &registry);
    }

    let coco = must_data::catalog::ms_coco(scale, seed);
    for config in [
        EncoderConfig::new(comp(Mpc), vec![ResNet50, Gru]),
        EncoderConfig::new(ind(ResNet50), vec![ResNet50, Gru]),
    ] {
        learn_row(&mut table, &coco, &config, &registry);
    }

    let celeba4 = must_data::catalog::celeba_plus(4, scale, seed);
    learn_row(
        &mut table,
        &celeba4,
        &EncoderConfig::new(comp(Clip), vec![Encoding, ResNet17, ResNet50]),
        &registry,
    );

    // Semi-synthetic datasets (Tab. XVIII).
    let n = (20_000.0 * scale) as usize;
    for ds in [
        must_data::catalog::image_text(n, 300, seed),
        must_data::catalog::audio_text(n, 300, seed),
        must_data::catalog::video_text(n, 300, seed),
        must_data::catalog::deep_image_text(n, 300, seed),
    ] {
        learn_row(
            &mut table,
            &ds,
            &must_bench::efficiency::semisynthetic_config(),
            &registry,
        );
    }

    table.emit();
}
