//! Tab. IV — search accuracy on CelebA (face image + structured attribute
//! text).

use must_bench::accuracy::{accuracy_table, Framework, RowSpec};
use must_core::weights::WeightLearnConfig;
use must_encoders::{ComposerKind, EncoderConfig, TargetEncoding, UnimodalKind};

fn main() {
    let ds = must_data::catalog::celeba(must_bench::scale(), must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let registry = must_bench::registry();

    use ComposerKind::*;
    use UnimodalKind::*;
    let aux = vec![Encoding];
    let mut rows = vec![
        RowSpec::new(Framework::Je, EncoderConfig::new(TargetEncoding::Composed(Tirg), aux.clone())),
        RowSpec::new(Framework::Je, EncoderConfig::new(TargetEncoding::Composed(Clip), aux.clone())),
    ];
    for fw in [Framework::Mr, Framework::Must] {
        rows.extend([
            RowSpec::new(fw, EncoderConfig::new(TargetEncoding::Independent(ResNet17), aux.clone())),
            RowSpec::new(fw, EncoderConfig::new(TargetEncoding::Independent(ResNet50), aux.clone())),
            RowSpec::new(fw, EncoderConfig::new(TargetEncoding::Composed(Tirg), aux.clone())),
            RowSpec::new(fw, EncoderConfig::new(TargetEncoding::Composed(Clip), aux.clone())),
        ]);
    }

    let (table, _) = accuracy_table(
        "Tab. IV",
        "Search accuracy on CelebA",
        &ds,
        &rows,
        &[1, 5, 10],
        &registry,
        500,
        &WeightLearnConfig::default(),
    );
    table.emit();
}
