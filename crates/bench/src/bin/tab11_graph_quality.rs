//! Tab. XI — graph quality vs number of NNDescent iterations (epsilon) on
//! the three large datasets.

use must_bench::report::{f4, Table};
use must_core::oracle::JointOracle;
use must_data::embed::embed_dataset;
use must_graph::pipeline::{CandidateStrategy, PipelineBuilder};
use must_graph::quality::graph_quality;
use must_graph::select::SelectionStrategy;
use must_vector::Weights;

fn main() {
    let scale = must_bench::scale();
    let n = (20_000.0 * scale) as usize;
    let seed = must_bench::DATASET_SEED;
    let registry = must_bench::registry();
    let config = must_bench::efficiency::semisynthetic_config();

    let mut table = Table::new(
        "Tab. XI",
        "Graph quality under different numbers of NNDescent iterations",
        &["# Iterations", "ImageText1M", "AudioText1M", "VideoText1M"],
    );
    let datasets = [
        must_data::catalog::image_text(n, 50, seed),
        must_data::catalog::audio_text(n, 50, seed),
        must_data::catalog::video_text(n, 50, seed),
    ];
    let embedded: Vec<_> =
        datasets.iter().map(|ds| embed_dataset(ds, &config, &registry)).collect();

    for eps in 1..=3usize {
        let mut row = vec![eps.to_string()];
        for e in &embedded {
            let oracle = JointOracle::new(&e.objects, Weights::uniform(2)).unwrap();
            // Measure the *initialisation* component's quality: top-gamma
            // lists straight out of NNDescent (no pruning afterwards).
            let builder = PipelineBuilder {
                gamma: 10,
                init_iterations: eps,
                candidates: CandidateStrategy::InitOnly,
                selection: SelectionStrategy::TopGamma,
                connectivity: false,
                ..PipelineBuilder::default()
            };
            let (graph, _) = builder.build(&oracle);
            let q = graph_quality(&oracle, &graph, 10, 200, 7);
            row.push(f4(q));
        }
        table.push_row(row);
    }
    table.emit();
}
