//! Fig. 13 — effect of the number of negative examples `|N-|` on the
//! weight-learning model (loss and recall curves, ImageText1M).

use must_bench::report::Figure;
use must_core::weights::{WeightLearnConfig, WeightLearner};
use must_data::embed::embed_dataset;
use must_vector::{MultiQuery, ObjectId};

fn main() {
    let scale = must_bench::scale();
    let ds = must_data::catalog::image_text(
        (30_000.0 * scale) as usize,
        400,
        must_bench::DATASET_SEED,
    );
    must_bench::banner(&ds);
    let registry = must_bench::registry();
    let embedded = embed_dataset(&ds, &must_bench::efficiency::semisynthetic_config(), &registry);
    let anchors: Vec<(&MultiQuery, ObjectId)> =
        embedded.queries.iter().map(|q| (&q.query, q.anchor)).collect();

    let mut fig = Figure::new(
        "Fig. 13",
        "Effect of the number of negatives |N-| on weight learning",
        "epoch",
        "loss / recall",
    );
    for n_neg in [1usize, 2, 4, 6, 8, 10] {
        let config = WeightLearnConfig {
            epochs: 150,
            num_negatives: n_neg,
            ..Default::default()
        };
        let learner = WeightLearner::new(&embedded.objects, &anchors, &config);
        let out = learner.train(&config);
        fig.push_series(
            &format!("|N-|={n_neg}:loss"),
            out.curve.loss.iter().enumerate().map(|(e, l)| (e as f64, *l)).collect(),
        );
        fig.push_series(
            &format!("|N-|={n_neg}:recall"),
            out.curve.recall.iter().enumerate().map(|(e, r)| (e as f64, *r)).collect(),
        );
        println!(
            "|N-| = {n_neg:>2}: final loss {:.4}, final recall {:.3}",
            out.curve.loss.last().unwrap_or(&0.0),
            out.curve.recall.last().unwrap_or(&0.0)
        );
    }
    fig.emit();
}
