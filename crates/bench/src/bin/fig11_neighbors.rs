//! Fig. 11 — neighbour visualisation on CelebA: the top-3 neighbours of an
//! object in MUST's fused index balance both modalities, while MR's
//! per-modality indexes only consider one modality each.

use must_bench::accuracy::prepare;
use must_core::baselines::{BaselineOptions, MultiStreamedRetrieval};
use must_core::weights::WeightLearnConfig;
use must_core::{Must, MustBuildOptions};
use must_encoders::{ComposerKind, EncoderConfig, TargetEncoding, UnimodalKind};

fn main() {
    let scale = must_bench::scale() * 0.5; // a smaller corpus is plenty here
    let ds = must_data::catalog::celeba(scale, must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let registry = must_bench::registry();
    let config = EncoderConfig::new(
        TargetEncoding::Composed(ComposerKind::Clip),
        vec![UnimodalKind::Encoding],
    );
    let prepared = prepare(&ds, &config, &registry);
    let learned = prepared.learn(&WeightLearnConfig::default());
    let objects = prepared.embedded.objects.clone();

    let must = Must::build(objects, learned.weights.clone(), MustBuildOptions::default()).unwrap();
    let mr = MultiStreamedRetrieval::build(must.objects(), BaselineOptions::default()).unwrap();
    let _ = &mr;

    let vertex = 100u32;
    let objects = must.objects();
    println!(
        "Object {vertex}: class {} attr {}\n",
        prepared.embedded.labels[vertex as usize].class,
        prepared.embedded.labels[vertex as usize].attr
    );

    println!("MUST fused-index neighbours (top 3) — per-modality + joint similarity:");
    let graph = must.index().graph().expect("fused recipe is flat");
    for &nb in graph.neighbors(vertex).iter().take(3) {
        let ips: Vec<f32> = objects.modality_ips(vertex, nb).collect();
        let joint = objects.joint_ip(vertex, nb, must.weights()).unwrap();
        println!(
            "   object {nb:>6}  sim(m0) = {:.4}  sim(m1) = {:.4}  joint = {:.4}",
            ips[0], ips[1], joint
        );
    }

    // MR's per-modality graphs: rebuild them individually to inspect.
    for mi in 0..objects.num_modalities() {
        use must_core::baselines::SingleModalityOracle;
        use must_graph::GraphRecipe;
        let oracle = SingleModalityOracle::new(objects.modality(mi));
        let (graph, _) = GraphRecipe::Fused.pipeline(30, 0xF19).unwrap().build(&oracle);
        println!("\nMR modality-{mi} index neighbours (top 3):");
        for &nb in graph.neighbors(vertex).iter().take(3) {
            let ips: Vec<f32> = objects.modality_ips(vertex, nb).collect();
            println!("   object {nb:>6}  sim(m0) = {:.4}  sim(m1) = {:.4}", ips[0], ips[1]);
        }
    }
}
