//! Fig. 6 — efficiency: QPS vs Recall@10(10) for MUST, MUST--, MR and
//! MR-- on the three million-scale datasets (scaled per DESIGN.md §1).

use must_bench::efficiency::{
    build_mr, mr_brute_point, mr_sweep, must_brute_point, must_sweep, prepare, to_series,
    MR_LS, MUST_LS,
};
use must_bench::report::Figure;
use must_core::baselines::BaselineOptions;
use must_core::MustBuildOptions;
use must_data::LatentDataset;

fn run_one(tag: &str, ds: &LatentDataset) {
    must_bench::banner(ds);
    let setup = prepare(ds, 10, MustBuildOptions::default());
    let mut fig = Figure::new(
        &format!("Fig. 6{tag}"),
        &format!("QPS vs Recall@10(10) on {}", ds.name),
        "Recall@10(10)",
        "QPS",
    );
    fig.push_series("MUST", to_series(&must_sweep(&setup, MUST_LS)));
    let bf = must_brute_point(&setup);
    fig.push_series("MUST--", vec![(bf.recall, bf.qps)]);
    let mr = build_mr(&setup, BaselineOptions::default());
    fig.push_series("MR", to_series(&mr_sweep(&setup, &mr, MR_LS)));
    let mr_bf = mr_brute_point(&setup, &mr, 1000);
    fig.push_series("MR--", vec![(mr_bf.recall, mr_bf.qps)]);
    fig.emit();
}

fn main() {
    let scale = must_bench::scale();
    let n = (40_000.0 * scale) as usize;
    let seed = must_bench::DATASET_SEED;
    run_one("a", &must_data::catalog::image_text(n, 400, seed));
    run_one("b", &must_data::catalog::audio_text(n, 400, seed));
    run_one("c", &must_data::catalog::video_text(n, 400, seed));
}
