//! Tab. VII + Fig. 7 — scalability in data volume n:
//! response time of MUST-- vs MUST at Recall@10(10) > 0.99 (Tab. VII),
//! and build time / index size of MUST vs MR (Fig. 7).

use std::time::Instant;

use must_bench::efficiency::{must_brute_point, must_sweep, prepare};
use must_bench::report::{Figure, Table};
use must_core::baselines::{BaselineOptions, MultiStreamedRetrieval};
use must_core::MustBuildOptions;

fn main() {
    let scale = must_bench::scale();
    let volumes: Vec<usize> = [10_000usize, 20_000, 40_000, 80_000, 160_000]
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(1_000))
        .collect();

    let mut time_table = Table::new(
        "Tab. VII",
        "Response time (ms/query) of MUST-- vs MUST at Recall@10(10) > 0.99",
        &["n", "MUST-- (ms)", "MUST (ms)", "reduction"],
    );
    let mut build_fig = Figure::new("Fig. 7a", "Build time vs data volume", "n", "build secs");
    let mut size_fig = Figure::new("Fig. 7b", "Index size vs data volume", "n", "index MB");
    let (mut must_build, mut mr_build) = (Vec::new(), Vec::new());
    let (mut must_size, mut mr_size) = (Vec::new(), Vec::new());

    for &n in &volumes {
        let ds = must_data::catalog::deep_image_text(n, 200, must_bench::DATASET_SEED);
        must_bench::banner(&ds);
        let setup = prepare(&ds, 10, MustBuildOptions::default());

        // Tab. VII: find the smallest l whose recall clears 0.99 and time it.
        let mut must_ms = f64::NAN;
        for l in [40usize, 80, 160, 320, 640, 1280, 2560, 5120] {
            let pts = must_sweep(&setup, &[l]);
            if pts[0].recall > 0.99 {
                must_ms = 1000.0 / pts[0].qps;
                break;
            }
            must_ms = 1000.0 / pts[0].qps; // fall back to the largest l
        }
        let bf = must_brute_point(&setup);
        let bf_ms = 1000.0 / bf.qps;
        time_table.push_row(vec![
            n.to_string(),
            format!("{bf_ms:.2}"),
            format!("{must_ms:.2}"),
            format!("-{:.1}%", (1.0 - must_ms / bf_ms) * 100.0),
        ]);

        // Fig. 7: build time + index size for MUST and MR.
        let report = setup.must.report();
        must_build.push((n as f64, report.build_secs));
        must_size.push((n as f64, report.index_bytes as f64 / (1024.0 * 1024.0)));
        let t0 = Instant::now();
        let mr = MultiStreamedRetrieval::build(setup.must.objects(), BaselineOptions::default())
            .expect("MR build");
        mr_build.push((n as f64, t0.elapsed().as_secs_f64()));
        mr_size.push((n as f64, mr.index_bytes() as f64 / (1024.0 * 1024.0)));
    }

    build_fig.push_series("MUST", must_build);
    build_fig.push_series("MR", mr_build);
    size_fig.push_series("MUST", must_size);
    size_fig.push_series("MR", mr_size);
    time_table.emit();
    build_fig.emit();
    size_fig.emit();
}
