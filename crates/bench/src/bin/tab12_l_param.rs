//! Tab. XII — the result-pool size l: recall and response time trade-off
//! (Appendix I) on ImageText1M.

use must_bench::efficiency::{must_sweep, prepare};
use must_bench::report::{f4, Table};
use must_core::MustBuildOptions;

fn main() {
    let scale = must_bench::scale();
    let n = (40_000.0 * scale) as usize;
    let ds = must_data::catalog::image_text(n, 300, must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let setup = prepare(&ds, 10, MustBuildOptions::default());

    let mut table = Table::new(
        "Tab. XII",
        "Search performance under different values of l (gamma = 30)",
        &["l", "Recall@10(10)", "Response time (ms)"],
    );
    for point in must_sweep(&setup, &[100, 200, 400, 700, 1000, 1500, 2000, 4000]) {
        table.push_row(vec![
            point.l.to_string(),
            f4(point.recall),
            format!("{:.2}", 1000.0 / point.qps),
        ]);
    }
    table.emit();
}
