//! Tab. VI — search accuracy on MS-COCO (three modalities: target image,
//! second reference image, text; recall reported at k = 10/50/100).

use must_bench::accuracy::{accuracy_table, Framework, RowSpec};
use must_core::weights::WeightLearnConfig;
use must_encoders::{ComposerKind, EncoderConfig, TargetEncoding, UnimodalKind};

fn main() {
    let ds = must_data::catalog::ms_coco(must_bench::scale(), must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let registry = must_bench::registry();

    use UnimodalKind::*;
    let aux = vec![ResNet50, Gru]; // second image + text
    let rows = vec![
        RowSpec::new(
            Framework::Je,
            EncoderConfig::new(TargetEncoding::Composed(ComposerKind::Mpc), aux.clone()),
        ),
        RowSpec::new(
            Framework::Mr,
            EncoderConfig::new(TargetEncoding::Composed(ComposerKind::Mpc), aux.clone()),
        ),
        RowSpec::new(
            Framework::Mr,
            EncoderConfig::new(TargetEncoding::Independent(ResNet50), aux.clone()),
        ),
        RowSpec::new(
            Framework::Must,
            EncoderConfig::new(TargetEncoding::Composed(ComposerKind::Mpc), aux.clone()),
        ),
        RowSpec::new(
            Framework::Must,
            EncoderConfig::new(TargetEncoding::Independent(ResNet50), aux.clone()),
        ),
    ];

    let (table, _) = accuracy_table(
        "Tab. VI",
        "Search accuracy on MS-COCO",
        &ds,
        &rows,
        &[10, 50, 100],
        &registry,
        800,
        &WeightLearnConfig::default(),
    );
    table.emit();
}
