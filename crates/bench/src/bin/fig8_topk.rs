//! Fig. 8 — effect of the number of results k (1, 50, 100) on
//! ImageText1M: QPS vs Recall@k(k) for MUST and MR.

use must_bench::efficiency::{build_mr, mr_sweep, must_sweep, prepare, to_series, MUST_LS};
use must_bench::report::Figure;
use must_core::baselines::BaselineOptions;
use must_core::MustBuildOptions;

fn main() {
    let scale = must_bench::scale();
    let n = (40_000.0 * scale) as usize;
    let ds = must_data::catalog::image_text(n, 400, must_bench::DATASET_SEED);
    must_bench::banner(&ds);

    for (tag, k) in [("a", 1usize), ("b", 50), ("c", 100)] {
        let setup = prepare(&ds, k, MustBuildOptions::default());
        let mut fig = Figure::new(
            &format!("Fig. 8{tag}"),
            &format!("QPS vs Recall@{k}({k}) on ImageText1M"),
            &format!("Recall@{k}({k})"),
            "QPS",
        );
        let ls: Vec<usize> = MUST_LS.iter().map(|&l| l.max(k)).collect();
        fig.push_series("MUST", to_series(&must_sweep(&setup, &ls)));
        let mr = build_mr(&setup, BaselineOptions::default());
        // MR needs candidates >= k per channel; sweep upwards from there.
        let mr_ls: Vec<usize> = [1usize, 3, 10, 30, 100]
            .iter()
            .map(|m| (k * m).max(10))
            .collect();
        fig.push_series("MR", to_series(&mr_sweep(&setup, &mr, &mr_ls)));
        fig.emit();
    }
}
