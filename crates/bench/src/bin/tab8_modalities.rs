//! Tab. VIII — recall vs number of modalities (m = 2, 3, 4) on CelebA+:
//! the paper's scalability-in-m experiment.

use must_bench::accuracy::{prepare, run_mr, run_must_learned, Framework};
use must_bench::report::{f4, Table};
use must_core::weights::WeightLearnConfig;
use must_encoders::{ComposerKind, EncoderConfig, TargetEncoding, UnimodalKind};

fn main() {
    let registry = must_bench::registry();
    let mut table = Table::new(
        "Tab. VIII",
        "Recall@1(1) with different numbers of modalities on CelebA+",
        &["Framework", "m=2", "m=3", "m=4"],
    );
    let mut mr_row = vec![Framework::Mr.label().to_string()];
    let mut must_row = vec![Framework::Must.label().to_string()];
    for m in 2..=4usize {
        let ds = must_data::catalog::celeba_plus(m, must_bench::scale(), must_bench::DATASET_SEED);
        must_bench::banner(&ds);
        // CLIP + Encoding (+ ResNet17 + ResNet50) as in Tab. XVII.
        let mut aux = vec![UnimodalKind::Encoding];
        if m >= 3 {
            aux.push(UnimodalKind::ResNet17);
        }
        if m >= 4 {
            aux.push(UnimodalKind::ResNet50);
        }
        let config = EncoderConfig::new(TargetEncoding::Composed(ComposerKind::Clip), aux);
        let prepared = prepare(&ds, &config, &registry);
        let mr = run_mr(&prepared, &[1], 500);
        let must = run_must_learned(&prepared, &[1], &WeightLearnConfig::default());
        mr_row.push(f4(mr.recalls[0]));
        must_row.push(f4(must.recalls[0]));
    }
    table.push_row(mr_row);
    table.push_row(must_row);
    table.emit();
}
