//! Runs every experiment binary in sequence, regenerating all tables and
//! figures into `EXPERIMENTS-out/`.  Honour `MUST_SCALE` to shrink or grow
//! the datasets.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "tab3_accuracy_mitstates",
    "tab4_accuracy_celeba",
    "tab5_accuracy_shopping",
    "tab6_accuracy_mscoco",
    "fig5_case_study",
    "fig6_qps_recall",
    "tab7_fig7_scalability",
    "tab8_modalities",
    "fig8_topk",
    "sec8f_weight_generalization",
    "tab9_user_weights",
    "tab10_19_20_single_modality",
    "fig9_negatives",
    "fig10_graph_ablation",
    "fig11_neighbors",
    "tab11_graph_quality",
    "tab12_l_param",
    "fig13_num_negatives",
    "fig14_15_gamma",
    "tab13_18_learned_weights",
    "tab21_shopping_bottoms",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        eprintln!("\n===== running {name} =====");
        let t0 = std::time::Instant::now();
        let status = Command::new(bin_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        eprintln!("===== {name} finished in {:.1}s =====", t0.elapsed().as_secs_f64());
        if !status.success() {
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        eprintln!("\nAll {} experiments completed; artefacts in EXPERIMENTS-out/.", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
