//! Tab. V — search accuracy on Shopping (T-shirt category).

use must_bench::accuracy::{accuracy_table, Framework, RowSpec};
use must_core::weights::WeightLearnConfig;
use must_data::catalog::ShoppingCategory;
use must_encoders::{ComposerKind, EncoderConfig, TargetEncoding, UnimodalKind};

fn main() {
    let ds = must_data::catalog::shopping(
        ShoppingCategory::TShirt,
        must_bench::scale(),
        must_bench::DATASET_SEED,
    );
    must_bench::banner(&ds);
    let registry = must_bench::registry();

    let aux = vec![UnimodalKind::Encoding];
    let rows = vec![
        RowSpec::new(
            Framework::Je,
            EncoderConfig::new(TargetEncoding::Composed(ComposerKind::Tirg), aux.clone()),
        ),
        RowSpec::new(
            Framework::Mr,
            EncoderConfig::new(TargetEncoding::Independent(UnimodalKind::ResNet17), aux.clone()),
        ),
        RowSpec::new(
            Framework::Mr,
            EncoderConfig::new(TargetEncoding::Composed(ComposerKind::Tirg), aux.clone()),
        ),
        RowSpec::new(
            Framework::Must,
            EncoderConfig::new(TargetEncoding::Independent(UnimodalKind::ResNet17), aux.clone()),
        ),
        RowSpec::new(
            Framework::Must,
            EncoderConfig::new(TargetEncoding::Composed(ComposerKind::Tirg), aux.clone()),
        ),
    ];

    let (table, _) = accuracy_table(
        "Tab. V",
        "Search accuracy on Shopping (T-shirt)",
        &ds,
        &rows,
        &[1, 5, 10],
        &registry,
        500,
        &WeightLearnConfig::default(),
    );
    table.emit();
}
