//! Fig. 9 — vector-weight-learning ablation: hard negatives (Eq. 5) vs
//! random negatives — loss and top-1 recall per epoch on ImageText1M.

use must_bench::report::Figure;
use must_core::weights::{WeightLearnConfig, WeightLearner};
use must_data::embed::embed_dataset;
use must_vector::{MultiQuery, ObjectId};

fn main() {
    let scale = must_bench::scale();
    let ds = must_data::catalog::image_text(
        (40_000.0 * scale) as usize,
        400,
        must_bench::DATASET_SEED,
    );
    must_bench::banner(&ds);
    let registry = must_bench::registry();
    let embedded = embed_dataset(&ds, &must_bench::efficiency::semisynthetic_config(), &registry);
    let anchors: Vec<(&MultiQuery, ObjectId)> =
        embedded.queries.iter().map(|q| (&q.query, q.anchor)).collect();

    let mut fig = Figure::new(
        "Fig. 9",
        "Weight learning with hard vs random negatives on ImageText1M",
        "epoch",
        "loss / recall",
    );
    for (hard, tag) in [(true, "hard"), (false, "random")] {
        let config = WeightLearnConfig {
            epochs: if hard { 200 } else { 500 },
            hard_negatives: hard,
            ..Default::default()
        };
        let learner = WeightLearner::new(&embedded.objects, &anchors, &config);
        let out = learner.train(&config);
        let loss: Vec<(f64, f64)> =
            out.curve.loss.iter().enumerate().map(|(e, l)| (e as f64, *l)).collect();
        let recall: Vec<(f64, f64)> =
            out.curve.recall.iter().enumerate().map(|(e, r)| (e as f64, *r)).collect();
        fig.push_series(&format!("{tag}:loss"), loss);
        fig.push_series(&format!("{tag}:recall"), recall);
        println!(
            "[{tag}] learned weights (squared): {:?}  final recall {:.3}  train {:.1}s",
            out.weights.squared(),
            out.curve.recall.last().unwrap_or(&0.0),
            out.train_secs
        );
    }
    fig.emit();
}
