//! Figs. 14–15 — the maximum-neighbour bound gamma: index size, build
//! time, recall and response time (Appendix H) on ImageText1M.

use must_bench::efficiency::{must_sweep, prepare};
use must_bench::report::Table;
use must_core::MustBuildOptions;

fn main() {
    let scale = must_bench::scale();
    let n = (30_000.0 * scale) as usize;
    let ds = must_data::catalog::image_text(n, 300, must_bench::DATASET_SEED);
    must_bench::banner(&ds);

    let mut table = Table::new(
        "Fig. 14 15",
        "Effect of gamma on index and search (l = 4000-equivalent pool)",
        &["gamma", "Index size (MB)", "Build time (s)", "Recall@10(10)", "Response (ms)"],
    );
    for gamma in [10usize, 20, 30, 40, 50] {
        let setup = prepare(&ds, 10, MustBuildOptions { gamma, ..Default::default() });
        let report = setup.must.report().clone();
        let pts = must_sweep(&setup, &[1000]);
        table.push_row(vec![
            gamma.to_string(),
            format!("{:.1}", report.index_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", report.build_secs),
            format!("{:.4}", pts[0].recall),
            format!("{:.2}", 1000.0 / pts[0].qps),
        ]);
    }
    table.emit();
}
