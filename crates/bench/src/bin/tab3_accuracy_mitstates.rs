//! Tab. III — search accuracy on MIT-States across frameworks and encoder
//! combinations.

use must_bench::accuracy::{accuracy_table, Framework, RowSpec};
use must_core::weights::WeightLearnConfig;
use must_encoders::{ComposerKind, EncoderConfig, TargetEncoding, UnimodalKind};

fn main() {
    let ds = must_data::catalog::mit_states(must_bench::scale(), must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let registry = must_bench::registry();

    use ComposerKind::*;
    use UnimodalKind::*;
    let aux = |k| vec![k];
    let ind = TargetEncoding::Independent;
    let comp = TargetEncoding::Composed;

    let mut rows = vec![
        RowSpec::new(Framework::Je, EncoderConfig::new(comp(Tirg), aux(Lstm))),
        RowSpec::new(Framework::Je, EncoderConfig::new(comp(Clip), aux(Lstm))),
    ];
    for fw in [Framework::Mr, Framework::Must] {
        rows.extend([
            RowSpec::new(fw, EncoderConfig::new(ind(ResNet17), aux(Lstm))),
            RowSpec::new(fw, EncoderConfig::new(ind(ResNet50), aux(Lstm))),
            RowSpec::new(fw, EncoderConfig::new(ind(ResNet17), aux(Transformer))),
            RowSpec::new(fw, EncoderConfig::new(ind(ResNet50), aux(Transformer))),
            RowSpec::new(fw, EncoderConfig::new(comp(Tirg), aux(Lstm))),
            RowSpec::new(fw, EncoderConfig::new(comp(Tirg), aux(Transformer))),
            RowSpec::new(fw, EncoderConfig::new(comp(Clip), aux(Lstm))),
            RowSpec::new(fw, EncoderConfig::new(comp(Clip), aux(Transformer))),
        ]);
    }

    let (table, _) = accuracy_table(
        "Tab. III",
        "Search accuracy on MIT-States",
        &ds,
        &rows,
        &[1, 5, 10],
        &registry,
        500,
        &WeightLearnConfig::default(),
    );
    table.emit();
}
