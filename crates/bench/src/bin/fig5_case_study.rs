//! Fig. 5 — case study on MIT-States: top-5 results of MUST, MR and JE for
//! one "change state" query, with ground-truth labels shown (the textual
//! analogue of the paper's image grid).

use must_bench::accuracy::{prepare, Framework};
use must_core::baselines::merge_candidates;
use must_core::search::brute_force_search;
use must_core::weights::WeightLearnConfig;
use must_data::ObjectLabels;
use must_encoders::{ComposerKind, EncoderConfig, TargetEncoding, UnimodalKind};
use must_vector::JointDistance;

fn describe(labels: &[ObjectLabels], id: u32, want: ObjectLabels) -> String {
    let l = labels[id as usize];
    let mark = if l.class == want.class && l.attr == want.attr { " <-- ground truth cell" } else { "" };
    format!("object {id:>6}  class {:>4}  attr {:>4}{mark}", l.class, l.attr)
}

fn main() {
    let ds = must_data::catalog::mit_states(must_bench::scale(), must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let registry = must_bench::registry();
    // Best encoders per Tab. III: CLIP for JE, CLIP+LSTM for MR and MUST.
    let config = EncoderConfig::new(
        TargetEncoding::Composed(ComposerKind::Clip),
        vec![UnimodalKind::Lstm],
    );
    let prepared = prepare(&ds, &config, &registry);
    let learned = prepared.learn(&WeightLearnConfig::default());
    let objects = &prepared.embedded.objects;

    let q = prepared
        .eval_queries()
        .next()
        .expect("workload is non-empty");
    println!(
        "Query: reference object class {} in attr {}, text asks for attr {} (anchor = object {})",
        q.want.class,
        ds.labels[q.anchor as usize].attr,
        q.want.attr,
        q.anchor
    );
    println!("(the real query shows e.g. fresh cheese + \"change state to moldy\")\n");

    // MUST: weighted joint top-5.
    let joint = JointDistance::new(objects, learned.weights.clone()).unwrap();
    let must_top = brute_force_search(&joint, &q.query, 5, true).unwrap();
    println!("(a) MUST  (weights^2 = {:?})", learned.weights.squared());
    for (id, _) in &must_top.results {
        println!("    {}", describe(&prepared.embedded.labels, *id, q.want));
    }

    // MR: per-modality candidates + merge.
    let mut per_modality = Vec::new();
    for mi in 0..objects.num_modalities() {
        if let Some(slot) = q.query.slot(mi) {
            per_modality.push(objects.modality(mi).brute_force_top_k(slot, 500));
        }
    }
    let (mr_top, _) = merge_candidates(&per_modality, 5);
    println!("\n(b) {}", Framework::Mr.label());
    for id in &mr_top {
        println!("    {}", describe(&prepared.embedded.labels, *id, q.want));
    }

    // JE: composition vector over the target modality.
    let je_top = objects
        .modality(0)
        .brute_force_top_k(q.query.slot(0).unwrap(), 5);
    println!("\n(c) {}", Framework::Je.label());
    for (id, _) in &je_top {
        println!("    {}", describe(&prepared.embedded.labels, *id, q.want));
    }

    // Artefact: per-framework hit counts over a query sample.
    let mut fig = must_bench::report::Figure::new(
        "Fig. 5",
        "Top-5 ground-truth-cell hits per framework (100-query sample)",
        "framework (0 = MUST, 1 = MR, 2 = JE)",
        "mean hits in top-5",
    );
    let mut sums = [0.0f64; 3];
    let mut n = 0;
    for q in prepared.eval_queries().take(100) {
        let hit = |ids: &[u32]| {
            ids.iter()
                .filter(|&&id| {
                    let l = prepared.embedded.labels[id as usize];
                    l.class == q.want.class && l.attr == q.want.attr
                })
                .count() as f64
        };
        let m_ids: Vec<u32> = brute_force_search(&joint, &q.query, 5, true)
            .unwrap()
            .results
            .iter()
            .map(|r| r.0)
            .collect();
        sums[0] += hit(&m_ids);
        let mut per = Vec::new();
        for mi in 0..objects.num_modalities() {
            if let Some(slot) = q.query.slot(mi) {
                per.push(objects.modality(mi).brute_force_top_k(slot, 500));
            }
        }
        sums[1] += hit(&merge_candidates(&per, 5).0);
        let je_ids: Vec<u32> = objects
            .modality(0)
            .brute_force_top_k(q.query.slot(0).unwrap(), 5)
            .iter()
            .map(|r| r.0)
            .collect();
        sums[2] += hit(&je_ids);
        n += 1;
    }
    fig.push_series(
        "hits",
        sums.iter().enumerate().map(|(i, s)| (i as f64, s / n as f64)).collect(),
    );
    fig.emit();
}
