//! Fig. 10 — ablations on ImageText1M:
//! (a) construction time across proximity-graph backends,
//! (b) QPS vs recall across backends,
//! (c) the multi-vector computation optimisation (Lemma 4) on/off.

use must_bench::efficiency::{must_sweep, prepare, to_series, MUST_LS};
use must_bench::report::{Figure, Table};
use must_core::{Must, MustBuildOptions};
use must_graph::GraphRecipe;

fn main() {
    let scale = must_bench::scale();
    let n = (30_000.0 * scale) as usize;
    let ds = must_data::catalog::image_text(n, 300, must_bench::DATASET_SEED);
    must_bench::banner(&ds);

    // One shared setup provides weights + ground truth; per-recipe builds
    // reuse the same corpus/workload through rebuilds.
    let base = prepare(&ds, 10, MustBuildOptions::default());

    let mut build_table = Table::new(
        "Fig. 10a",
        "Index construction time across proximity graphs",
        &["Graph", "Build time (s)", "Index size (MB)"],
    );
    let mut search_fig = Figure::new(
        "Fig. 10b",
        "QPS vs Recall@10(10) across graph backends",
        "Recall@10(10)",
        "QPS",
    );

    for recipe in GraphRecipe::all() {
        let must = Must::build(
            base.must.objects().clone(),
            base.weights.clone(),
            MustBuildOptions { recipe, ..Default::default() },
        )
        .expect("build");
        let report = must.report().clone();
        build_table.push_row(vec![
            recipe.label().into(),
            format!("{:.2}", report.build_secs),
            format!("{:.1}", report.index_bytes as f64 / (1024.0 * 1024.0)),
        ]);
        // Swap the built index into a setup clone for the sweep.
        let setup = must_bench::efficiency::EffSetup {
            must,
            queries: base.queries.clone(),
            ground_truth: base.ground_truth.clone(),
            k: base.k,
            weights: base.weights.clone(),
        };
        search_fig.push_series(
            &format!("MUST-{}", recipe.label()),
            to_series(&must_sweep(&setup, MUST_LS)),
        );
    }
    build_table.emit();
    search_fig.emit();

    // (c) Lemma-4 pruning on/off on the fused index.
    let mut prune_fig = Figure::new(
        "Fig. 10c",
        "Multi-vector computation optimisation (Lemma 4)",
        "Recall@10(10)",
        "QPS",
    );
    let mut setup = prepare(&ds, 10, MustBuildOptions::default());
    prune_fig.push_series("w. optimization", to_series(&must_sweep(&setup, MUST_LS)));
    setup.must.set_prune(false);
    prune_fig.push_series("w/o optimization", to_series(&must_sweep(&setup, MUST_LS)));
    prune_fig.emit();
}
