//! Online-serving throughput bench: sweeps worker-thread counts and
//! arrival-batch sizes over a MIT-States-style corpus served by
//! [`must_core::MustServer`], reporting QPS, p50/p99 per-query latency,
//! and Recall@10 against the exact joint-similarity oracle — plus a
//! **shard sweep** (S ∈ {1, 2, 4, 8}) through
//! [`must_core::shard::ShardedServer`]'s scatter-gather path.
//!
//! Writes `BENCH_serving.json` at the repository root (override with
//! `MUST_BENCH_PATH`) plus a copy under `EXPERIMENTS-out/`, so the bench
//! trajectory tracks serving performance across PRs.  Scale with
//! `MUST_SCALE` as usual (CI runs a tiny smoke configuration).

use std::time::Instant;

use must_bench::efficiency::prepare;
use must_bench::report::f4;
use must_core::metrics::recall_at;
use must_core::search::SearchOutcome;
use must_core::server::MustServer;
use must_core::shard::{ShardSpec, ShardedMust, ShardedServer};
use must_core::{MustBuildOptions, MustError};
use must_vector::{MultiQuery, ObjectId};
use serde::Serialize;

/// One `(threads, batch)` operating point of the single-shard server.
#[derive(Debug, Clone, Serialize)]
struct Entry {
    threads: usize,
    batch: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    recall_at_10: f64,
}

/// One point of the shard sweep (fixed threads × batch, varying S).
#[derive(Debug, Clone, Serialize)]
struct ShardEntry {
    shards: usize,
    threads: usize,
    batch: usize,
    build_secs: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    recall_at_10: f64,
}

/// The whole artefact.
#[derive(Debug, Clone, Serialize)]
struct ServingBench {
    bench: String,
    dataset: String,
    index: String,
    n_objects: usize,
    n_queries: usize,
    k: usize,
    l: usize,
    entries: Vec<Entry>,
    shard_entries: Vec<ShardEntry>,
}

fn percentile_ms(sorted_secs: &[f64], p: f64) -> f64 {
    if sorted_secs.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_secs.len() - 1) as f64).round() as usize;
    sorted_secs[idx] * 1e3
}

/// Drives one operating point through any batch-search entry point and
/// reduces it to throughput, latency percentiles, and recall.
fn measure(
    search_batch: impl Fn(&[MultiQuery]) -> Vec<Result<SearchOutcome, MustError>>,
    queries: &[MultiQuery],
    ground_truth: &[Vec<ObjectId>],
    k: usize,
    batch: usize,
) -> (f64, f64, f64, f64) {
    let mut latencies: Vec<f64> = Vec::with_capacity(queries.len());
    let mut recall_sum = 0.0;
    let t0 = Instant::now();
    for (qs, gts) in queries.chunks(batch).zip(ground_truth.chunks(batch)) {
        for (out, gt) in search_batch(qs).into_iter().zip(gts) {
            let out = out.expect("workload queries are well-formed");
            latencies.push(out.secs);
            let ids: Vec<ObjectId> = out.results.iter().map(|r| r.0).collect();
            recall_sum += recall_at(&ids, gt, k);
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_unstable_by(f64::total_cmp);
    (
        queries.len() as f64 / wall,
        percentile_ms(&latencies, 50.0),
        percentile_ms(&latencies, 99.0),
        recall_sum / queries.len() as f64,
    )
}

fn run_point(
    server: &MustServer,
    queries: &[MultiQuery],
    ground_truth: &[Vec<ObjectId>],
    k: usize,
    l: usize,
    threads: usize,
    batch: usize,
) -> Entry {
    let (qps, p50_ms, p99_ms, recall_at_10) = measure(
        |qs| server.search_batch(qs, k, l, threads),
        queries,
        ground_truth,
        k,
        batch,
    );
    Entry { threads, batch, qps, p50_ms, p99_ms, recall_at_10 }
}

fn main() {
    let scale = must_bench::scale();
    let ds = must_data::catalog::mit_states(scale, must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let (k, l) = (10, 100);

    // prepare() learns weights, computes the exact top-k oracle, and
    // builds the fused index — the offline phase.  freeze() is the
    // offline→online handover.
    let setup = prepare(&ds, k, MustBuildOptions::default());
    let queries = setup.queries;
    let ground_truth = setup.ground_truth;
    let weights = setup.weights;
    // Keep the corpus for the shard sweep before freezing the S=1 server.
    let corpus = setup.must.objects().clone();
    let server = MustServer::freeze(setup.must);
    eprintln!(
        "[serving] {} objects, {} queries, {} index",
        server.len(),
        queries.len(),
        server.index().label()
    );

    let avail = std::thread::available_parallelism().map_or(1, usize::from);
    let mut thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= avail.max(2))
        .collect();
    thread_counts.dedup();
    let batches = [16usize, 64];

    let mut entries = Vec::new();
    for &threads in &thread_counts {
        for &batch in &batches {
            let e = run_point(&server, &queries, &ground_truth, k, l, threads, batch);
            eprintln!(
                "[serving] threads={threads:<2} batch={batch:<3} qps={:<10} p50={}ms p99={}ms recall@10={}",
                f4(e.qps),
                f4(e.p50_ms),
                f4(e.p99_ms),
                f4(e.recall_at_10)
            );
            entries.push(e);
        }
    }

    // ---- Shard sweep: S ∈ {1, 2, 4, 8} at a fixed operating point. ----
    // The sweep measures what sharding buys (parallel build, bounded
    // per-shard memory) and what the scatter-gather costs at query time.
    let (shard_threads, shard_batch) = (thread_counts.last().copied().unwrap_or(1), 64);
    let mut shard_entries = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        if shards > corpus.len() {
            eprintln!("[serving] skipping S={shards}: corpus has only {} objects", corpus.len());
            continue;
        }
        let t0 = Instant::now();
        let sharded = ShardedMust::build(
            corpus.clone(),
            weights.clone(),
            MustBuildOptions::default(),
            ShardSpec::new(shards),
        )
        .expect("shard build");
        let build_secs = t0.elapsed().as_secs_f64();
        let sharded = ShardedServer::freeze(sharded);
        let (qps, p50_ms, p99_ms, recall_at_10) = measure(
            |qs| sharded.search_batch(qs, k, l, shard_threads),
            &queries,
            &ground_truth,
            k,
            shard_batch,
        );
        eprintln!(
            "[serving] shards={shards:<2} threads={shard_threads:<2} batch={shard_batch:<3} build={}s qps={:<10} p50={}ms p99={}ms recall@10={}",
            f4(build_secs),
            f4(qps),
            f4(p50_ms),
            f4(p99_ms),
            f4(recall_at_10)
        );
        shard_entries.push(ShardEntry {
            shards,
            threads: shard_threads,
            batch: shard_batch,
            build_secs,
            qps,
            p50_ms,
            p99_ms,
            recall_at_10,
        });
    }

    let artefact = ServingBench {
        bench: "serving".into(),
        dataset: ds.name.clone(),
        index: server.index().label().into(),
        n_objects: server.len(),
        n_queries: queries.len(),
        k,
        l,
        entries,
        shard_entries,
    };
    let json = serde_json::to_string_pretty(&artefact).expect("serialisable artefact");
    let path = std::env::var("MUST_BENCH_PATH").unwrap_or_else(|_| "BENCH_serving.json".into());
    std::fs::write(&path, &json).expect("can write bench artefact");
    let _ = std::fs::write(must_bench::out_dir().join("serving.json"), &json);
    println!("wrote {path}");
}
