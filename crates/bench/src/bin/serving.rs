//! Online-serving throughput bench: sweeps worker-thread counts and
//! arrival-batch sizes over a MIT-States-style corpus served by
//! [`must_core::MustServer`], reporting QPS, p50/p99 per-query latency,
//! and Recall@10 against the exact joint-similarity oracle.
//!
//! Writes `BENCH_serving.json` at the repository root (override with
//! `MUST_BENCH_PATH`) plus a copy under `EXPERIMENTS-out/`, so the bench
//! trajectory tracks serving performance across PRs.  Scale with
//! `MUST_SCALE` as usual (CI runs a tiny smoke configuration).

use std::time::Instant;

use must_bench::efficiency::prepare;
use must_bench::report::f4;
use must_core::metrics::recall_at;
use must_core::server::MustServer;
use must_core::MustBuildOptions;
use must_vector::{MultiQuery, ObjectId};
use serde::Serialize;

/// One `(threads, batch)` operating point.
#[derive(Debug, Clone, Serialize)]
struct Entry {
    threads: usize,
    batch: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    recall_at_10: f64,
}

/// The whole artefact.
#[derive(Debug, Clone, Serialize)]
struct ServingBench {
    bench: String,
    dataset: String,
    index: String,
    n_objects: usize,
    n_queries: usize,
    k: usize,
    l: usize,
    entries: Vec<Entry>,
}

fn percentile_ms(sorted_secs: &[f64], p: f64) -> f64 {
    if sorted_secs.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_secs.len() - 1) as f64).round() as usize;
    sorted_secs[idx] * 1e3
}

fn run_point(
    server: &MustServer,
    queries: &[MultiQuery],
    ground_truth: &[Vec<ObjectId>],
    k: usize,
    l: usize,
    threads: usize,
    batch: usize,
) -> Entry {
    let mut latencies: Vec<f64> = Vec::with_capacity(queries.len());
    let mut recall_sum = 0.0;
    let t0 = Instant::now();
    for (qs, gts) in queries.chunks(batch).zip(ground_truth.chunks(batch)) {
        for (out, gt) in server.search_batch(qs, k, l, threads).into_iter().zip(gts) {
            let out = out.expect("workload queries are well-formed");
            latencies.push(out.secs);
            let ids: Vec<ObjectId> = out.results.iter().map(|r| r.0).collect();
            recall_sum += recall_at(&ids, gt, k);
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_unstable_by(f64::total_cmp);
    Entry {
        threads,
        batch,
        qps: queries.len() as f64 / wall,
        p50_ms: percentile_ms(&latencies, 50.0),
        p99_ms: percentile_ms(&latencies, 99.0),
        recall_at_10: recall_sum / queries.len() as f64,
    }
}

fn main() {
    let scale = must_bench::scale();
    let ds = must_data::catalog::mit_states(scale, must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let (k, l) = (10, 100);

    // prepare() learns weights, computes the exact top-k oracle, and
    // builds the fused index — the offline phase.  freeze() is the
    // offline→online handover.
    let setup = prepare(&ds, k, MustBuildOptions::default());
    let queries = setup.queries;
    let ground_truth = setup.ground_truth;
    let server = MustServer::freeze(setup.must);
    eprintln!(
        "[serving] {} objects, {} queries, {} index",
        server.len(),
        queries.len(),
        server.index().label()
    );

    let avail = std::thread::available_parallelism().map_or(1, usize::from);
    let mut thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= avail.max(2))
        .collect();
    thread_counts.dedup();
    let batches = [16usize, 64];

    let mut entries = Vec::new();
    for &threads in &thread_counts {
        for &batch in &batches {
            let e = run_point(&server, &queries, &ground_truth, k, l, threads, batch);
            eprintln!(
                "[serving] threads={threads:<2} batch={batch:<3} qps={:<10} p50={}ms p99={}ms recall@10={}",
                f4(e.qps),
                f4(e.p50_ms),
                f4(e.p99_ms),
                f4(e.recall_at_10)
            );
            entries.push(e);
        }
    }

    let artefact = ServingBench {
        bench: "serving".into(),
        dataset: ds.name.clone(),
        index: server.index().label().into(),
        n_objects: server.len(),
        n_queries: queries.len(),
        k,
        l,
        entries,
    };
    let json = serde_json::to_string_pretty(&artefact).expect("serialisable artefact");
    let path = std::env::var("MUST_BENCH_PATH").unwrap_or_else(|_| "BENCH_serving.json".into());
    std::fs::write(&path, &json).expect("can write bench artefact");
    let _ = std::fs::write(must_bench::out_dir().join("serving.json"), &json);
    println!("wrote {path}");
}
